"""Figure 5: sensitivity of the TbI-driven synthesis to the choice of ε.

Paper claim (Section 5.3): across ε ∈ {0.01, 0.1, 1, 10} the attained triangle
count stays roughly flat, because the TbI signal of the real graph is large
enough to dominate the noise at every tested ε; variability grows as ε shrinks.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.experiments import figure5_epsilon_sensitivity, format_table


@pytest.mark.benchmark(group="figure5")
def test_figure5_epsilon_sweep(benchmark, config):
    rows = benchmark.pedantic(
        lambda: figure5_epsilon_sensitivity(config), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["epsilon", "mean final triangles", "std final triangles", "true triangles"],
            rows,
            title="Figure 5 — TbI synthesis across epsilon (CA-GrQc stand-in, 3 runs each)",
        )
    )
    means = [mean for _, mean, _, _ in rows]
    truth = rows[0][3]
    # Shape: every epsilon recovers a non-trivial number of triangles.
    assert all(mean > 0 for mean in means)
    # Shape: the attained count does not change dramatically across four
    # orders of magnitude of epsilon (within a factor of ~3 between the
    # smallest and largest mean).
    assert max(means) <= 3.5 * max(min(means), 1.0)
    # Shape: nothing overshoots the truth by a large factor.
    assert all(mean <= truth * 1.6 for mean in means)
