"""Ablation (Section 1.2, benefit #2): combining multiple measurements.

Paper claim: probabilistic inference integrates every released measurement
into one posterior, so fitting a synthetic graph to the TbI statistic *and*
the joint degree distribution simultaneously produces a graph that still
respects the triangle structure while additionally matching second-order
degree correlations — constraints reinforce rather than interfere.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import combined_measurements_ablation, format_table


@pytest.mark.benchmark(group="ablation-combined")
def test_combining_tbi_with_jdd(benchmark, config):
    rows = benchmark.pedantic(
        lambda: combined_measurements_ablation(config), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["configuration", "seed triangles", "final triangles", "true triangles"],
            rows,
            title="Section 1.2 ablation — fitting TbI alone vs TbI + JDD simultaneously",
        )
    )
    by_label = {label: (seed, final, truth) for label, seed, final, truth in rows}
    tbi_seed, tbi_final, truth = by_label["TbI only"]
    both_seed, both_final, _ = by_label["TbI + JDD"]
    # Shape: both configurations add triangles over their seeds.
    assert tbi_final > tbi_seed
    assert both_final > both_seed
    # Shape: adding the JDD constraint does not destroy the triangle fit —
    # the combined run recovers at least a third of what TbI-only recovered.
    assert (both_final - both_seed) >= (tbi_final - tbi_seed) / 3.0
    # Shape: neither overshoots the truth wildly.
    assert max(tbi_final, both_final) <= truth * 1.6
