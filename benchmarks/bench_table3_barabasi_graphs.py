"""Table 3: the Barabási–Albert graphs used for the scalability study.

Paper claim: increasing the dynamical exponent β (with nodes and edges fixed)
raises the maximum degree, the triangle count and Σ d² — the quantity that
drives the incremental engine's memory and per-step cost in Figure 6.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import format_table, table3_barabasi


@pytest.mark.benchmark(group="table3")
def test_table3_barabasi_sweep(benchmark, config):
    rows = benchmark.pedantic(lambda: table3_barabasi(config), rounds=1, iterations=1)
    emit(
        format_table(
            ["beta", "nodes", "edges", "dmax", "triangles", "sum d^2"],
            rows,
            title="Table 3 — Barabasi-Albert graphs with increasing dynamical exponent",
        )
    )
    # Shape: nodes and edges are fixed across the sweep.
    assert len({row[1] for row in rows}) == 1
    assert max(row[2] for row in rows) - min(row[2] for row in rows) <= rows[0][2] * 0.02
    # Shape: dmax and sum d^2 increase (weakly) with beta; compare endpoints.
    assert rows[-1][3] > rows[0][3]
    assert rows[-1][5] > rows[0][5]
    # Shape: triangles grow with the heavier tail as well.
    assert rows[-1][4] >= rows[0][4]
