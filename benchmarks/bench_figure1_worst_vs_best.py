"""Figure 1: worst-case versus weighted-record triangle counting.

Paper claim (Section 1.1): counting triangles with worst-case-sensitivity
noise adds error proportional to |V| regardless of the graph, while weighting
each triangle by 1/max degree measures the bounded-degree graph (Figure 1,
right) with constant noise.  Neither mechanism helps on the adversarial graph
(Figure 1, left) — and does not need to, since it has no triangles.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import figure1_comparison, format_table


@pytest.mark.benchmark(group="figure1")
def test_figure1_worst_vs_best_case(benchmark, config):
    rows = benchmark.pedantic(
        lambda: figure1_comparison(
            nodes=max(100, int(400 * config.graph_scale)),
            epsilon=config.epsilon,
            trials=25,
            seed=config.seed,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["graph", "mechanism", "true triangles", "mean estimate", "mean |error|"],
            rows,
            title="Figure 1 — triangle counting, worst-case noise vs weighted records",
        )
    )
    errors = {(graph, mechanism): error for graph, mechanism, _, _, error in rows}
    # Shape: on the bounded-degree graph the weighted mechanism is at least
    # 5x more accurate than worst-case noise.
    assert errors[("best-case (right)", "weighted records")] < (
        errors[("best-case (right)", "worst-case noise")] / 5.0
    )
    # Shape: worst-case noise is as bad on the benign graph as on the
    # adversarial one (same |V|-scaled noise).
    worst_case_left = errors[("worst-case (left)", "worst-case noise")]
    worst_case_right = errors[("best-case (right)", "worst-case noise")]
    assert worst_case_right > worst_case_left / 10.0
