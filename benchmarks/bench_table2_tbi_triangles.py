"""Table 2: triangles before MCMC, after TbI-driven MCMC, and in the truth.

Paper claim (Section 5.3): seeding from the DP degree sequence gives a graph
with roughly the random twin's triangle count; fitting the TbI measurement
moves the synthetic graph a substantial fraction of the way to the real
graph's triangle count, for all four evaluation graphs.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import format_table, table2_tbi_triangles


@pytest.mark.benchmark(group="table2")
def test_table2_seed_mcmc_truth(benchmark, config):
    rows = benchmark.pedantic(lambda: table2_tbi_triangles(config), rounds=1, iterations=1)
    emit(
        format_table(
            ["graph", "seed triangles", "after TbI MCMC", "true triangles"],
            rows,
            title="Table 2 — triangle counts: seed graph, after TbI-driven MCMC, truth",
        )
    )
    for name, seed_triangles, mcmc_triangles, true_triangles in rows:
        # Shape: MCMC adds triangles relative to the seed...
        assert mcmc_triangles > seed_triangles, name
        # ...moving toward (but typically not beyond) the real count.
        assert mcmc_triangles <= true_triangles * 1.6, name
        # ...and recovers a non-trivial fraction of the seed-to-truth gap.
        gap = true_triangles - seed_triangles
        assert gap > 0, name
        recovered = (mcmc_triangles - seed_triangles) / gap
        assert recovered > 0.05, (name, recovered)
