"""Figure 3: TbD-driven synthesis with and without degree bucketing.

Paper claim (Section 5.2): the un-bucketed TbD measurement is dominated by
noise, so MCMC barely distinguishes CA-GrQc from its randomised twin; grouping
degrees into buckets concentrates the signal and lets the chain fitting the
real graph pull ahead — though it still falls well short of the true triangle
count.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import figure3_tbd_bucketing, format_series, format_table


@pytest.mark.benchmark(group="figure3")
def test_figure3_tbd_with_and_without_bucketing(benchmark, config):
    results = benchmark.pedantic(
        lambda: figure3_tbd_bucketing(config), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["configuration", "true triangles", "true r", "seed triangles", "final triangles", "final r", "privacy cost (eps)"],
            [
                (
                    r.label,
                    r.true_triangles,
                    r.true_assortativity,
                    r.seed_triangles,
                    r.final_triangles,
                    r.final_assortativity,
                    r.privacy_cost,
                )
                for r in results
            ],
            title="Figure 3 — TbD-driven MCMC on CA-GrQc vs Random(GrQc), with/without bucketing",
        )
    )
    for result in results:
        emit(format_series(f"{result.label}: triangles vs MCMC step", zip(result.steps, result.triangles)))

    by_label = {result.label: result for result in results}
    real_bucketed = by_label["CA-GrQc + buckets"]
    random_bucketed = by_label["Random(GrQc) + buckets"]
    real_plain = by_label["CA-GrQc"]

    # Shape: privacy cost is 12 epsilon (3 seed + 9 TbD) for every run.
    for result in results:
        assert result.privacy_cost == pytest.approx(12 * config.epsilon)
    # Shape: with bucketing, the chain fitting the real graph ends roughly at
    # or above the chain fitting the random twin.  The paper's own conclusion
    # (Section 5.2) is that even bucketed TbD is noise-dominated away from the
    # lowest-degree bucket, so at this scale the separation is weak; the
    # assertion allows the stochastic near-ties that weakness produces while
    # still failing if the random twin clearly pulls ahead.
    assert real_bucketed.final_triangles >= 0.7 * random_bucketed.final_triangles
    # Shape: even with bucketing the TbD fit undershoots the true count by a
    # wide margin (the paper's motivation for moving to TbI).
    assert real_bucketed.final_triangles < real_bucketed.true_triangles
    # Shape: the un-bucketed chain provides no better fit than the bucketed one.
    assert real_plain.final_triangles <= real_bucketed.final_triangles * 1.5 + 50
