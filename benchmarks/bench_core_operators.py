"""Micro-benchmarks of the platform itself (not tied to a paper table).

These time the pieces whose cost the paper discusses qualitatively: evaluating
the triangle queries eagerly, building the incremental dataflow state, and the
per-step cost of an MCMC edge swap through the TbI plan.  They use the
pytest-benchmark timing machinery properly (multiple rounds) since each
operation is cheap and deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyses import protect_graph, triangles_by_degree_query, triangles_by_intersect_query
from repro.core import PrivacySession, WeightedDataset
from repro.dataflow import DataflowEngine
from repro.graph import load_paper_graph
from repro.inference import EdgeSwapWalk


@pytest.fixture(scope="module")
def small_graph():
    return load_paper_graph("CA-GrQc", scale=0.05)


@pytest.fixture(scope="module")
def protected(small_graph):
    session = PrivacySession(seed=0)
    return session, protect_graph(session, small_graph)


@pytest.mark.benchmark(group="micro-eager")
def test_eager_tbi_evaluation(benchmark, protected):
    _, edges = protected
    query = triangles_by_intersect_query(edges)
    result = benchmark(query.evaluate_unprotected)
    assert result["triangle"] > 0


@pytest.mark.benchmark(group="micro-eager")
def test_eager_tbd_evaluation(benchmark, protected):
    _, edges = protected
    query = triangles_by_degree_query(edges)
    result = benchmark(query.evaluate_unprotected)
    assert len(result) > 0


@pytest.mark.benchmark(group="micro-incremental")
def test_dataflow_initialization(benchmark, protected):
    session, edges = protected
    query = triangles_by_intersect_query(edges)

    def build():
        engine = DataflowEngine.from_plans([query.plan])
        engine.initialize(session.environment())
        return engine

    engine = benchmark.pedantic(build, rounds=3, iterations=1)
    assert engine.state_entry_count() > 0


@pytest.mark.benchmark(group="micro-incremental")
def test_incremental_edge_swap_step(benchmark, protected, small_graph):
    session, edges = protected
    query = triangles_by_intersect_query(edges)
    engine = DataflowEngine.from_plans([query.plan])
    engine.initialize(session.environment())
    walk = EdgeSwapWalk(small_graph.copy(), rng=1)

    def swap_and_rollback():
        proposal = walk.propose()
        if proposal is None:
            return
        delta, *_ = proposal
        engine.push("edges", delta)
        engine.push("edges", {record: -change for record, change in delta.items()})

    benchmark(swap_and_rollback)
    # The engine's source must still equal the original graph after all the
    # apply/rollback pairs.
    expected = WeightedDataset.from_records(small_graph.to_edge_records())
    assert engine.source_dataset("edges").distance(expected) < 1e-6
