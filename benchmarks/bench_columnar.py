"""Benchmark: the columnar vectorized backend on a join-heavy workload.

The vectorized backend exists for exactly one reason: chains of stable
transformations dominated by the ``length_two_paths`` self-join (Sections 2.7
and 3.3) spend their time in per-record Python on the eager evaluator.  This
benchmark generates an Erdős–Rényi graph of at least 10k edges, takes the
wedge-centre and Triangles-by-Intersect measurements on the eager and
vectorized backends, and asserts the vectorized backend is at least 3× faster
— the acceptance bar for the columnar subsystem.  A structural agreement
check (identical released records under the shared seed, weights within
tolerance) guards against "fast because wrong".

``REPRO_BENCH_COLUMNAR_EDGES`` scales the graph and
``REPRO_BENCH_MIN_COLUMNAR_SPEEDUP`` relaxes the bar for noisy shared CI
runners (the CI smoke step runs one small iteration with a 1.2× bar).
"""

from __future__ import annotations

import os

from conftest import emit
from repro.columnar.bench import backend_comparison, format_comparison

EDGES = int(os.environ.get("REPRO_BENCH_COLUMNAR_EDGES", "10000"))
ROUNDS = int(os.environ.get("REPRO_BENCH_COLUMNAR_ROUNDS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_COLUMNAR_SPEEDUP", "3.0"))


def test_vectorized_backend_speedup_on_join_heavy_workload():
    report = backend_comparison(
        edges=EDGES, seed=0, rounds=ROUNDS, backends=("eager", "vectorized")
    )
    emit(format_comparison(report))

    speedup = report["speedups"]["vectorized"]
    assert speedup >= MIN_SPEEDUP, (
        f"expected the vectorized backend to be >= {MIN_SPEEDUP:g}x faster than "
        f"eager on the {EDGES}-edge join workload, got {speedup:.2f}x"
    )


def test_backends_release_identical_measurements():
    """Same seed, same plans: the two backends must agree record-for-record."""
    from repro.analyses import protect_graph, triangles_by_intersect_query
    from repro.core import PrivacySession
    from repro.graph.generators import erdos_renyi

    graph = erdos_renyi(200, 500, rng=0)
    released = {}
    for backend in ("eager", "vectorized"):
        session = PrivacySession(seed=17, executor=backend)
        edges = protect_graph(session, graph, total_epsilon=float("inf"))
        released[backend] = triangles_by_intersect_query(edges).noisy_count(0.1)
    eager, vectorized = released["eager"].to_dict(), released["vectorized"].to_dict()
    assert eager.keys() == vectorized.keys()
    for record, value in eager.items():
        assert abs(value - vectorized[record]) < 1e-6
