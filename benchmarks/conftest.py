"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
scaled-down synthetic stand-ins, prints the rows/series (so the captured
``bench_output.txt`` doubles as the reproduction record), and asserts the
qualitative *shape* the paper reports.  Scale and MCMC length can be raised
via the ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_STEPS`` environment variables.

Because pytest captures stdout of passing tests, the tables produced by each
benchmark are (a) accumulated and echoed in the terminal summary at the end of
the run, and (b) appended to ``benchmarks/results/latest_report.txt``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

_RESULTS_DIR = Path(__file__).resolve().parent / "results"
_REPORT_BLOCKS: list[str] = []


@pytest.fixture(scope="session")
def config():
    """The experiment configuration selected by the environment."""
    from repro.experiments import default_config

    return default_config()


def emit(text: str) -> None:
    """Record a report block: printed now, echoed in the terminal summary."""
    print()
    print(text)
    print()
    _REPORT_BLOCKS.append(text)


def pytest_sessionstart(session):
    _REPORT_BLOCKS.clear()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_BLOCKS:
        return
    terminalreporter.write_sep("=", "paper tables and figures (reproduced)")
    for block in _REPORT_BLOCKS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
    _RESULTS_DIR.mkdir(exist_ok=True)
    report_path = _RESULTS_DIR / "latest_report.txt"
    report_path.write_text("\n\n".join(_REPORT_BLOCKS) + "\n", encoding="utf-8")
    terminalreporter.write_line("")
    terminalreporter.write_line(f"report also written to {report_path}")
