"""Figure 4: TbI-driven MCMC trajectories, real graphs versus random twins.

Paper claim (Section 5.3): the chains fitting real graphs climb to many more
triangles than the chains fitting degree-preserving random twins — MCMC only
introduces triangles when the released measurement calls for them.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import figure4_tbi_fitting, format_series, format_table


@pytest.mark.benchmark(group="figure4")
def test_figure4_real_vs_random_trajectories(benchmark, config):
    results = benchmark.pedantic(lambda: figure4_tbi_fitting(config), rounds=1, iterations=1)
    emit(
        format_table(
            ["configuration", "true triangles", "seed triangles", "final triangles", "steps/sec"],
            [
                (r.label, r.true_triangles, r.seed_triangles, r.final_triangles, r.steps_per_second)
                for r in results
            ],
            title="Figure 4 — TbI-driven MCMC, real stand-ins vs Random(.) twins",
        )
    )
    for result in results:
        emit(format_series(f"{result.label}: triangles vs MCMC step", zip(result.steps, result.triangles)))

    by_label = {result.label: result for result in results}
    for name in ("CA-GrQc", "CA-HepPh", "CA-HepTh", "Caltech"):
        real = by_label[name]
        random = by_label[f"Random({name})"]
        # Shape: every run costs 7 epsilon (3 seed + 4 TbI).
        assert real.privacy_cost == pytest.approx(7 * config.epsilon)
        # Shape: the chain fitting the real graph gains clearly more triangles
        # over its seed than the chain fitting the random twin.
        real_gain = real.final_triangles - real.seed_triangles
        random_gain = random.final_triangles - random.seed_triangles
        assert real_gain > max(2.0 * random_gain, 10), name
        # Shape: the trajectory for the real graph is (weakly) increasing
        # overall — it ends above where it starts.
        assert real.triangles[-1] >= real.triangles[0], name
