"""Table 1: statistics of the evaluation graphs and their random twins.

Paper claim: the real graphs have many more triangles (and, for the
collaboration networks, strongly positive assortativity) than their
degree-preserving randomisations, which is exactly the structure the MCMC
experiments later try to recover.  Absolute numbers differ because the graphs
here are scaled-down synthetic stand-ins (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import format_table, table1_graph_statistics
from repro.graph import PAPER_REPORTED_STATISTICS


@pytest.mark.benchmark(group="table1")
def test_table1_graph_statistics(benchmark, config):
    rows = benchmark.pedantic(
        lambda: table1_graph_statistics(config), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["graph", "nodes", "edges", "dmax", "triangles", "assortativity r"],
            rows,
            title="Table 1 — stand-in graph statistics (scaled-down synthetic substitutes)",
        )
    )
    paper_rows = [
        (name, stats["nodes"], stats["edges"], stats["dmax"], stats["triangles"], stats["assortativity"])
        for name, stats in PAPER_REPORTED_STATISTICS.items()
    ]
    emit(
        format_table(
            ["graph", "nodes", "edges", "dmax", "triangles", "assortativity r"],
            paper_rows,
            title="Table 1 — values reported in the paper (full-size real datasets)",
        )
    )

    stats = {row[0]: row for row in rows}
    for name in ("CA-GrQc", "CA-HepPh", "CA-HepTh", "Caltech", "Epinions"):
        real = stats[name]
        random = stats[f"Random({name})"]
        # Degree-preserving twins: identical node/edge/dmax columns.
        assert real[1:4] == random[1:4]
        # Shape: the real graph has more triangles than its randomisation.
        assert real[4] > random[4]
    # Shape: collaboration networks are assortative, their twins are not.
    for name in ("CA-GrQc", "CA-HepPh", "CA-HepTh"):
        assert stats[name][5] > 0.1
        assert abs(stats[f"Random({name})"][5]) < 0.15
    # Shape: the social graphs sit near zero assortativity.
    assert abs(stats["Caltech"][5]) < 0.2
    assert abs(stats["Epinions"][5]) < 0.2
