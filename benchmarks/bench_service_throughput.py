"""Benchmark: measurement-service throughput, 1 vs N concurrent clients.

The batching scheduler exists so that N concurrent clients measuring the same
session cost roughly one plan walk instead of N: while one fused batch
executes, newly arriving requests pile up and form the next batch
(group-commit).  This benchmark drives the real HTTP service (``repro
serve``'s server, in-process on an ephemeral port) with a batchable
same-session workload — every client measures the triangles-by-degree query
at a distinct ε, so nothing is served from the answer cache and every request
is a genuine measurement — and compares requests/second for one sequential
client against ``REPRO_BENCH_SERVICE_CLIENTS`` concurrent ones.

Three further phases benchmark the durability subsystem
(:mod:`repro.persistence`): the durable-vs-in-memory overhead of the HTTP
service at ``REPRO_BENCH_SERVICE_CLIENTS`` concurrent clients (asserted within
``REPRO_BENCH_DURABLE_MAX_OVERHEAD``, default 2x), a many-tenant mixed-traffic
simulation (``REPRO_BENCH_SERVICE_TENANTS`` tenants, default 200, mixing fresh
measurements with cache replays), and — where ``os.fork`` exists — the
multi-process scaling of ``repro serve --workers N`` over one shared ledger.

All phases merge their results into ``BENCH_service.json`` at the repository
root.  ``REPRO_BENCH_SERVICE_MIN_SPEEDUP`` relaxes the 3x bar for noisy shared
CI runners; the structural fused-batch assertion keeps its full strength.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from conftest import emit
from repro.experiments import format_table
from repro.graph.generators import erdos_renyi
from repro.service import MeasurementService, ServiceClient, serve

REPO_ROOT = Path(__file__).resolve().parent.parent

EDGES = int(os.environ.get("REPRO_BENCH_SERVICE_EDGES", "2000"))
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "12"))
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVICE_CLIENTS", "8"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVICE_ROUNDS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVICE_MIN_SPEEDUP", "3.0"))
TENANTS = int(os.environ.get("REPRO_BENCH_SERVICE_TENANTS", "200"))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_DURABLE_MAX_OVERHEAD", "2.0"))
QUERY = "tbd"


def _merge_report(update: dict) -> None:
    """Merge one phase's results into ``BENCH_service.json`` (keyed merge, so
    the phases can run in any order or individually)."""
    path = REPO_ROOT / "BENCH_service.json"
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def _run_phase(url: str, session: str, clients: int, requests: int, offset: int) -> float:
    """``clients`` threads issue ``requests`` measurements each; returns the
    wall-clock elapsed seconds.  Epsilons are distinct across every request of
    the whole benchmark so nothing ever comes from the answer cache."""
    barrier = threading.Barrier(clients)
    errors: list[BaseException] = []

    def work(index: int) -> None:
        client = ServiceClient(url, timeout=300.0)
        barrier.wait()
        try:
            for step in range(requests):
                epsilon = 1e-4 * (1 + offset + index * requests + step)
                client.measure(session, QUERY, epsilon)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=work, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"client raised: {errors[0]!r}"
    return elapsed


def test_concurrent_clients_throughput():
    graph = erdos_renyi(max(4, EDGES // 2), EDGES, rng=0)
    server = serve(port=0, workers=CLIENTS)
    server.serve_in_background()
    try:
        setup = ServiceClient(server.url, timeout=300.0)
        setup.create_session("bench", list(graph.edges()), seed=0)
        # Warm the hosted plan objects once so neither phase pays first-touch
        # costs; a distinct ε keeps it out of both phases' measurements.
        setup.measure("bench", QUERY, 0.5)

        # Best-of-ROUNDS for both phases, like the other wall-clock
        # benchmarks: shared machines have noisy clocks and schedulers.
        # Epsilon offsets keep every measurement of every round distinct.
        sequential_elapsed = min(
            _run_phase(
                server.url,
                "bench",
                clients=1,
                requests=REQUESTS,
                offset=round_index * REQUESTS,
            )
            for round_index in range(ROUNDS)
        )
        concurrent_elapsed = min(
            _run_phase(
                server.url,
                "bench",
                clients=CLIENTS,
                requests=REQUESTS,
                offset=(ROUNDS + round_index * CLIENTS) * REQUESTS,
            )
            for round_index in range(ROUNDS)
        )
        stats = setup.stats()
    finally:
        server.stop()

    sequential_rps = REQUESTS / sequential_elapsed
    concurrent_rps = (CLIENTS * REQUESTS) / concurrent_elapsed
    speedup = concurrent_rps / sequential_rps

    report = {
        "edges": EDGES,
        "query": QUERY,
        "requests_per_client": REQUESTS,
        "clients": CLIENTS,
        "sequential": {
            "clients": 1,
            "requests": REQUESTS,
            "elapsed_seconds": sequential_elapsed,
            "requests_per_second": sequential_rps,
        },
        "concurrent": {
            "clients": CLIENTS,
            "requests": CLIENTS * REQUESTS,
            "elapsed_seconds": concurrent_elapsed,
            "requests_per_second": concurrent_rps,
        },
        "speedup": speedup,
        "largest_fused_batch": stats["largest_batch"],
        "scheduler": {key: stats[key] for key in ("requests", "batches")},
    }
    _merge_report(report)

    emit(
        format_table(
            ["clients", "requests", "seconds", "req/s", "speedup"],
            [
                (1, REQUESTS, f"{sequential_elapsed:.3f}", f"{sequential_rps:.1f}", "1.0x"),
                (
                    CLIENTS,
                    CLIENTS * REQUESTS,
                    f"{concurrent_elapsed:.3f}",
                    f"{concurrent_rps:.1f}",
                    f"{speedup:.2f}x",
                ),
            ],
            title=(
                f"Service throughput — {QUERY} on {EDGES} edges, fused batches "
                f"up to {stats['largest_batch']}"
            ),
        )
    )

    # Concurrent same-session requests must actually have fused: without the
    # group-commit scheduler every request would be its own executor pass.
    assert stats["largest_batch"] >= 2
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP:g}x throughput from {CLIENTS} concurrent "
        f"clients, got {speedup:.2f}x"
    )


# ----------------------------------------------------------------------
# Durable-ledger overhead at CLIENTS concurrent HTTP clients
# ----------------------------------------------------------------------
def test_durable_ledger_overhead():
    """The write-ahead-logged ledger stays within MAX_OVERHEAD of in-memory.

    Identical concurrent workloads (CLIENTS clients, distinct epsilons, so
    every request durably charges) against two HTTP servers: one ephemeral,
    one backed by a ledger file.  Every durable charge is two fsynced sqlite
    transactions; group-commit batching amortises them across the fused
    requests, which is what keeps the overhead bounded.
    """
    graph = erdos_renyi(max(4, EDGES // 2), EDGES, rng=0)
    edges = list(graph.edges())
    elapsed: dict[str, float] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for mode, ledger in (("memory", None), ("durable", os.path.join(tmp, "ledger.db"))):
            server = serve(port=0, workers=CLIENTS, ledger=ledger, snapshot_every=256)
            server.serve_in_background()
            try:
                setup = ServiceClient(server.url, timeout=300.0)
                setup.create_session("bench", edges, seed=0)
                setup.measure("bench", QUERY, 0.5)  # warm the plan objects
                elapsed[mode] = min(
                    _run_phase(
                        server.url,
                        "bench",
                        clients=CLIENTS,
                        requests=REQUESTS,
                        offset=round_index * CLIENTS * REQUESTS,
                    )
                    for round_index in range(ROUNDS)
                )
            finally:
                server.stop()

    total_requests = CLIENTS * REQUESTS
    overhead = elapsed["durable"] / elapsed["memory"]
    report = {
        "clients": CLIENTS,
        "requests": total_requests,
        "memory_requests_per_second": total_requests / elapsed["memory"],
        "durable_requests_per_second": total_requests / elapsed["durable"],
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
    }
    _merge_report({"durable_overhead": report})

    emit(
        format_table(
            ["ledger", "requests", "seconds", "req/s"],
            [
                (mode, total_requests, f"{elapsed[mode]:.3f}",
                 f"{total_requests / elapsed[mode]:.1f}")
                for mode in ("memory", "durable")
            ],
            title=(
                f"Durable-ledger overhead — {CLIENTS} clients, "
                f"{overhead:.2f}x (bar {MAX_OVERHEAD:g}x)"
            ),
        )
    )
    assert overhead <= MAX_OVERHEAD, (
        f"durable ledger cost {overhead:.2f}x the in-memory service at "
        f"{CLIENTS} clients; bar is {MAX_OVERHEAD:g}x "
        f"(relax with REPRO_BENCH_DURABLE_MAX_OVERHEAD)"
    )


# ----------------------------------------------------------------------
# Many-tenant mixed traffic: TENANTS sessions, fresh + replayed measurements
# ----------------------------------------------------------------------
def _mixed_traffic(service: MeasurementService, tenants: list[str], threads: int) -> tuple[float, int]:
    """Drive three ops per tenant (fresh measure, cache replay, second fresh)
    from a worker pool; returns (elapsed seconds, completed operations)."""
    queue = list(tenants)
    queue_lock = threading.Lock()
    completed = [0]
    errors: list[BaseException] = []

    def work() -> None:
        while True:
            with queue_lock:
                if not queue:
                    return
                tenant = queue.pop()
            try:
                service.measure(tenant, "node-count", 0.1)
                service.measure(tenant, "node-count", 0.1)  # cache replay
                service.measure(tenant, "node-count", 0.2)
                with queue_lock:
                    completed[0] += 3
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
                return

    pool = [threading.Thread(target=work) for _ in range(threads)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"tenant traffic raised: {errors[0]!r}"
    return elapsed, completed[0]


def test_many_tenant_mixed_traffic():
    """TENANTS tenants of mixed traffic, in-memory vs durable, one process.

    Per-tenant work is deliberately tiny (a 12-edge dataset, the node-count
    query) so the measured quantity is the service's bookkeeping — session
    registry, ledger charges, answer cache — not plan execution.
    """
    edges = [(i, i + 1) for i in range(12)]
    results: dict[str, dict[str, float]] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for mode, ledger in (("memory", None), ("durable", os.path.join(tmp, "ledger.db"))):
            service = MeasurementService(
                workers=CLIENTS, ledger_path=ledger, snapshot_every=1024
            )
            try:
                tenants = [f"tenant-{index:04d}" for index in range(TENANTS)]
                create_start = time.perf_counter()
                for tenant in tenants:
                    service.create_session(tenant, edges, total_epsilon=1.0, seed=1)
                create_elapsed = time.perf_counter() - create_start
                traffic_elapsed, completed = _mixed_traffic(
                    service, tenants, threads=CLIENTS
                )
                assert completed == 3 * TENANTS
                results[mode] = {
                    "create_sessions_per_second": TENANTS / create_elapsed,
                    "operations_per_second": completed / traffic_elapsed,
                }
            finally:
                service.shutdown()
            if ledger is not None:
                # The whole fleet's state must be recoverable from the file.
                from repro.persistence import LedgerStore

                with LedgerStore(ledger) as store:
                    assert len(store.session_names()) == TENANTS
                    spent = store.spent("tenant-0000")
                    assert abs(spent["edges"] - 0.3) < 1e-9

    overhead = (
        results["memory"]["operations_per_second"]
        / results["durable"]["operations_per_second"]
    )
    _merge_report(
        {
            "multi_tenant": {
                "tenants": TENANTS,
                "operations_per_tenant": 3,
                "memory": results["memory"],
                "durable": results["durable"],
                "durable_overhead": overhead,
            }
        }
    )
    emit(
        format_table(
            ["ledger", "creates/s", "ops/s"],
            [
                (
                    mode,
                    f"{results[mode]['create_sessions_per_second']:.1f}",
                    f"{results[mode]['operations_per_second']:.1f}",
                )
                for mode in ("memory", "durable")
            ],
            title=(
                f"Mixed traffic — {TENANTS} tenants, durable overhead "
                f"{overhead:.2f}x"
            ),
        )
    )


# ----------------------------------------------------------------------
# Multi-process scaling: repro serve --workers N over one shared ledger
# ----------------------------------------------------------------------
def test_multi_worker_scaling():
    """Requests/second of 1 vs 2 forked worker processes on one ledger.

    Each client hammers its own session so the kernel's accept-level load
    balancing can actually spread work across the worker processes (a single
    session's requests fuse into one worker's batches instead).  Recorded,
    not asserted beyond sanity: fork scheduling on shared CI runners is too
    noisy for a hard scaling bar (and meaningless on a single-core
    runner, where the best a second process can do is break even — the
    recorded cpu_count says which regime a number came from).
    """
    import signal
    import subprocess
    import sys

    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        import pytest

        pytest.skip("multi-process serving requires os.fork")

    graph = erdos_renyi(max(4, EDGES // 2), EDGES, rng=0)
    edges = list(graph.edges())
    sessions = [f"bench-{index}" for index in range(CLIENTS)]
    src = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def run_fleet(workers: int, ledger: str) -> float:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--ledger", ledger, "--workers", str(workers),
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            banner = proc.stdout.readline()
            port = int(banner.rsplit(":", 1)[1].split()[0].rstrip("/)"))
            url = f"http://127.0.0.1:{port}"
            client = ServiceClient(url, timeout=300.0)
            deadline = time.monotonic() + 30
            while True:
                try:
                    client.sessions()
                    break
                except OSError:
                    assert time.monotonic() < deadline, "fleet never came up"
                    time.sleep(0.1)
            for session in sessions:
                client.create_session(session, edges, seed=0)

            barrier = threading.Barrier(len(sessions))
            errors: list[BaseException] = []

            def work(session: str) -> None:
                mine = ServiceClient(url, timeout=300.0)
                barrier.wait()
                try:
                    for step in range(REQUESTS):
                        mine.measure(session, QUERY, 1e-4 * (1 + step))
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            pool = [threading.Thread(target=work, args=(s,)) for s in sessions]
            start = time.perf_counter()
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            elapsed = time.perf_counter() - start
            assert not errors, f"fleet client raised: {errors[0]!r}"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            return elapsed
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=60)

    total_requests = len(sessions) * REQUESTS
    with tempfile.TemporaryDirectory() as tmp:
        rps = {
            workers: total_requests
            / min(
                run_fleet(workers, os.path.join(tmp, f"fleet-{workers}-{r}.db"))
                for r in range(max(1, ROUNDS - 1))
            )
            for workers in (1, 2)
        }

    scaling = rps[2] / rps[1]
    _merge_report(
        {
            "multi_worker": {
                "cpu_count": os.cpu_count(),
                "sessions": len(sessions),
                "requests": total_requests,
                "requests_per_second": {str(w): rps[w] for w in rps},
                "scaling_2_workers": scaling,
            }
        }
    )
    emit(
        format_table(
            ["workers", "req/s"],
            [(w, f"{rps[w]:.1f}") for w in sorted(rps)],
            title=f"Multi-process scaling — 2 workers = {scaling:.2f}x of 1",
        )
    )
    assert scaling > 0.3, f"2-worker fleet collapsed to {scaling:.2f}x of 1 worker"
