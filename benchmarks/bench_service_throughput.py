"""Benchmark: measurement-service throughput, 1 vs N concurrent clients.

The batching scheduler exists so that N concurrent clients measuring the same
session cost roughly one plan walk instead of N: while one fused batch
executes, newly arriving requests pile up and form the next batch
(group-commit).  This benchmark drives the real HTTP service (``repro
serve``'s server, in-process on an ephemeral port) with a batchable
same-session workload — every client measures the triangles-by-degree query
at a distinct ε, so nothing is served from the answer cache and every request
is a genuine measurement — and compares requests/second for one sequential
client against ``REPRO_BENCH_SERVICE_CLIENTS`` concurrent ones.

Results are written to ``BENCH_service.json`` at the repository root.
``REPRO_BENCH_SERVICE_MIN_SPEEDUP`` relaxes the 3x bar for noisy shared CI
runners; the structural fused-batch assertion keeps its full strength.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from conftest import emit
from repro.experiments import format_table
from repro.graph.generators import erdos_renyi
from repro.service import ServiceClient, serve

REPO_ROOT = Path(__file__).resolve().parent.parent

EDGES = int(os.environ.get("REPRO_BENCH_SERVICE_EDGES", "2000"))
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "12"))
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVICE_CLIENTS", "8"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVICE_ROUNDS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVICE_MIN_SPEEDUP", "3.0"))
QUERY = "tbd"


def _run_phase(url: str, session: str, clients: int, requests: int, offset: int) -> float:
    """``clients`` threads issue ``requests`` measurements each; returns the
    wall-clock elapsed seconds.  Epsilons are distinct across every request of
    the whole benchmark so nothing ever comes from the answer cache."""
    barrier = threading.Barrier(clients)
    errors: list[BaseException] = []

    def work(index: int) -> None:
        client = ServiceClient(url, timeout=300.0)
        barrier.wait()
        try:
            for step in range(requests):
                epsilon = 1e-4 * (1 + offset + index * requests + step)
                client.measure(session, QUERY, epsilon)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=work, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"client raised: {errors[0]!r}"
    return elapsed


def test_concurrent_clients_throughput():
    graph = erdos_renyi(max(4, EDGES // 2), EDGES, rng=0)
    server = serve(port=0, workers=CLIENTS)
    server.serve_in_background()
    try:
        setup = ServiceClient(server.url, timeout=300.0)
        setup.create_session("bench", list(graph.edges()), seed=0)
        # Warm the hosted plan objects once so neither phase pays first-touch
        # costs; a distinct ε keeps it out of both phases' measurements.
        setup.measure("bench", QUERY, 0.5)

        # Best-of-ROUNDS for both phases, like the other wall-clock
        # benchmarks: shared machines have noisy clocks and schedulers.
        # Epsilon offsets keep every measurement of every round distinct.
        sequential_elapsed = min(
            _run_phase(
                server.url,
                "bench",
                clients=1,
                requests=REQUESTS,
                offset=round_index * REQUESTS,
            )
            for round_index in range(ROUNDS)
        )
        concurrent_elapsed = min(
            _run_phase(
                server.url,
                "bench",
                clients=CLIENTS,
                requests=REQUESTS,
                offset=(ROUNDS + round_index * CLIENTS) * REQUESTS,
            )
            for round_index in range(ROUNDS)
        )
        stats = setup.stats()
    finally:
        server.stop()

    sequential_rps = REQUESTS / sequential_elapsed
    concurrent_rps = (CLIENTS * REQUESTS) / concurrent_elapsed
    speedup = concurrent_rps / sequential_rps

    report = {
        "edges": EDGES,
        "query": QUERY,
        "requests_per_client": REQUESTS,
        "clients": CLIENTS,
        "sequential": {
            "clients": 1,
            "requests": REQUESTS,
            "elapsed_seconds": sequential_elapsed,
            "requests_per_second": sequential_rps,
        },
        "concurrent": {
            "clients": CLIENTS,
            "requests": CLIENTS * REQUESTS,
            "elapsed_seconds": concurrent_elapsed,
            "requests_per_second": concurrent_rps,
        },
        "speedup": speedup,
        "largest_fused_batch": stats["largest_batch"],
        "scheduler": {key: stats[key] for key in ("requests", "batches")},
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    emit(
        format_table(
            ["clients", "requests", "seconds", "req/s", "speedup"],
            [
                (1, REQUESTS, f"{sequential_elapsed:.3f}", f"{sequential_rps:.1f}", "1.0x"),
                (
                    CLIENTS,
                    CLIENTS * REQUESTS,
                    f"{concurrent_elapsed:.3f}",
                    f"{concurrent_rps:.1f}",
                    f"{speedup:.2f}x",
                ),
            ],
            title=(
                f"Service throughput — {QUERY} on {EDGES} edges, fused batches "
                f"up to {stats['largest_batch']}"
            ),
        )
    )

    # Concurrent same-session requests must actually have fused: without the
    # group-commit scheduler every request would be its own executor pass.
    assert stats["largest_batch"] >= 2
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP:g}x throughput from {CLIENTS} concurrent "
        f"clients, got {speedup:.2f}x"
    )
