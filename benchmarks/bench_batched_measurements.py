"""Benchmark: N independent ``noisy_count`` calls vs one ``session.measure``.

The batched measurement API exists so that queries sharing sub-plans are
evaluated against the shared work exactly once per batch.  The canonical
shared sub-plan of the paper's analyses is ``length_two_paths`` — the
self-join of the symmetric edge set — which the wedge count, the per-centre
wedge histogram, the two-hop endpoint-pair query and TbI all consume.  This
benchmark takes those four measurements over one protected graph both ways
(independent ``noisy_count`` calls, which evaluate the path join four times,
vs one ``session.measure`` batch, which evaluates it once) and reports the
speedup, asserting the batch is at least 1.5x faster.
"""

from __future__ import annotations

import os
import time

from conftest import emit
from repro.analyses import (
    length_two_paths,
    protect_graph,
    triangles_by_intersect_query,
    wedges_query,
)
from repro.core import PrivacySession
from repro.experiments import format_table
from repro.graph import load_paper_graph

EPSILON = 0.1
ROUNDS = 3


def _protected_queries():
    """A fresh session plus four measurements sharing ``length_two_paths``."""
    graph = load_paper_graph("CA-GrQc", scale=0.08)
    session = PrivacySession(seed=0)
    edges = protect_graph(session, graph, total_epsilon=float("inf"))
    paths = length_two_paths(edges)
    queries = [
        ("wedges", wedges_query(edges)),
        ("path_centers", paths.select(lambda path: path[1])),
        ("endpoint_pairs", paths.select(lambda path: (path[0], path[2]))),
        ("tbi", triangles_by_intersect_query(edges)),
    ]
    return session, queries


def _time_separate() -> float:
    session, queries = _protected_queries()
    start = time.perf_counter()
    for name, query in queries:
        query.noisy_count(EPSILON, query_name=name)
    return time.perf_counter() - start


def _time_batched() -> float:
    session, queries = _protected_queries()
    requests = [(query, EPSILON, name) for name, query in queries]
    start = time.perf_counter()
    session.measure(*requests)
    return time.perf_counter() - start


def test_batched_shared_subplan_evaluates_once():
    """The structural property behind the speedup, independent of timing."""
    session, queries = _protected_queries()
    session.measure(*[(query, EPSILON, name) for name, query in queries])
    # path_centers is Select(length_two_paths), so its child is the shared join.
    paths_plan = queries[1][1].plan.child
    assert session.executor.evaluation_count(paths_plan) == 1


def test_batched_measurements_speedup():
    separate = min(_time_separate() for _ in range(ROUNDS))
    batched = min(_time_batched() for _ in range(ROUNDS))
    speedup = separate / batched

    emit(
        format_table(
            ["strategy", "queries", "seconds", "speedup"],
            [
                ("independent noisy_count", 4, f"{separate:.3f}", "1.0x"),
                ("session.measure batch", 4, f"{batched:.3f}", f"{speedup:.2f}x"),
            ],
            title="Batched measurements - shared sub-plans evaluate once per batch",
        )
    )

    # The batch evaluates the length-two-path join once instead of four
    # times; anything below 1.5x means the shared-sub-plan reuse is broken.
    # REPRO_BENCH_MIN_SPEEDUP relaxes the bar for noisy shared CI runners
    # (the structural once-per-batch property is asserted separately above).
    minimum = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))
    assert speedup >= minimum, (
        f"expected >= {minimum:g}x speedup from batching, got {speedup:.2f}x"
    )
