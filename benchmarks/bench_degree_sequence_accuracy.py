"""Ablation (Section 3.1): degree-sequence accuracy of the post-processing.

Paper claim: measuring both the degree sequence and its CCDF through wPINQ and
jointly fitting a monotone staircase to the two noisy views is competitive
with (typically better than) isotonic regression on a single noisy sequence —
and, unlike Hay et al., does not require the number of nodes to be public.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import degree_sequence_ablation, format_table


@pytest.mark.benchmark(group="ablation-degrees")
def test_degree_sequence_postprocessing(benchmark, config):
    rows = benchmark.pedantic(
        lambda: degree_sequence_ablation(config, epsilon=max(config.epsilon, 0.2)),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["approach", "mean |error| per rank"],
            rows,
            title="Section 3.1 ablation — degree sequence accuracy at equal total privacy cost",
        )
    )
    errors = dict(rows)
    joint = errors["wPINQ CCDF + sequence path fit"]
    iso_only = errors["wPINQ sequence only + isotonic"]
    hay = errors["Hay et al. (public n, isotonic)"]
    # Shape: the joint path fit is at least as accurate as isotonic regression
    # on the wPINQ sequence alone, and competitive with the public-n baseline.
    assert joint <= iso_only * 1.1
    assert joint <= hay * 1.5
