"""Ablation: worst-case noise vs smooth sensitivity vs weighted records.

Paper claim (Section 1.1): smooth sensitivity adapts the noise to the
instance, so it beats worst-case noise on the benign bounded-degree graph —
but if the worst-case structure appears anywhere (the union of Figure 1's two
graphs) it must still add Θ(|V|)-scale noise, whereas weighted records
suppress only the troublesome half and keep constant noise on the rest.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import format_table, smooth_sensitivity_ablation


@pytest.mark.benchmark(group="ablation-smooth")
def test_smooth_sensitivity_vs_weighted_records(benchmark, config):
    rows = benchmark.pedantic(
        lambda: smooth_sensitivity_ablation(
            nodes=max(200, int(400 * config.graph_scale)),
            epsilon=0.5,
            delta=0.01,
            trials=25,
            seed=config.seed,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["graph", "mechanism", "target value", "noise scale", "mean relative error"],
            rows,
            title="Ablation — worst-case vs smooth sensitivity vs weighted records (Section 1.1)",
        )
    )
    scales = {(graph, mechanism): scale for graph, mechanism, _, scale, _ in rows}
    rel_errors = {(graph, mechanism): err for graph, mechanism, _, _, err in rows}

    # Shape: smooth sensitivity adapts on the benign graph — its noise scale is
    # well below the worst-case mechanism's there.
    assert scales[("best-case (right)", "smooth sensitivity")] < (
        scales[("best-case (right)", "worst-case noise")] / 3.0
    )
    # Shape: on the union graph smooth sensitivity is back to worst-case scale
    # (within a constant factor) ...
    assert scales[("union (left + right)", "smooth sensitivity")] > (
        scales[("union (left + right)", "worst-case noise")] / 3.0
    )
    # ... while the weighted mechanism's relative error stays far smaller.
    assert rel_errors[("union (left + right)", "weighted records")] < (
        rel_errors[("union (left + right)", "smooth sensitivity")] / 5.0
    )
    # Shape: weighted records remain accurate on the benign graph too.
    assert rel_errors[("best-case (right)", "weighted records")] < 0.5
