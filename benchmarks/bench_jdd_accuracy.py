"""Ablation (Section 3.2): wPINQ's automatic JDD query vs Sala et al.'s noise.

Paper claim: the automatic wPINQ joint-degree-distribution query pays a
constant factor (between two and four) in accuracy compared to Sala et al.'s
bespoke mechanism, in exchange for an automatic privacy proof.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import format_table, jdd_accuracy_ablation


@pytest.mark.benchmark(group="ablation-jdd")
def test_jdd_accuracy_vs_sala(benchmark, config):
    rows = benchmark.pedantic(
        lambda: jdd_accuracy_ablation(config, epsilon=max(config.epsilon, 0.5)),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["approach", "mean |error| per occupied degree pair"],
            rows,
            title="Section 3.2 ablation — JDD accuracy at equal total privacy cost",
        )
    )
    errors = dict(rows)
    sala = errors["Sala et al. (corrected, bespoke noise)"]
    wpinq = errors["wPINQ JDD query (automatic)"]
    # Shape: the bespoke mechanism is more accurate, but wPINQ stays within
    # roughly an order of magnitude (the paper argues a factor of 2-4).
    assert sala < wpinq
    assert wpinq < 12 * sala
