"""Figure 6: memory and throughput of the incremental engine versus Σ d².

Paper claim (Section 5.3): the memory needed by TbI-driven MCMC grows with
Σ d² (the number of candidate length-two paths the engine must index), and the
achievable MCMC steps/second falls correspondingly; Epinions, with the largest
Σ d² relative to its edge count, is the most demanding workload.

Absolute numbers are not comparable (C# on a 64 GB server vs pure Python on a
laptop-scale stand-in); the monotone relationships are what this benchmark
checks.  ``state_entries`` counts weighted records held by operator state and
is the platform-independent memory proxy; tracemalloc peak is also reported.

A second test compares the three MCMC scoring backends — dataflow, full-pass
columnar ("vectorized") and incremental columnar — on steps/second across
graph sizes, asserts the incremental backend's speedup over the full-pass
columnar one (the acceptance bar: ≥2× at 10k edges, single chain, tunable via
``REPRO_BENCH_MCMC_MIN_SPEEDUP`` for CI smoke runs), asserts that dataflow
and incremental take identical accept/reject decisions with per-measurement
distances agreeing to 1e-9, and writes the repo-root ``BENCH_mcmc.json``
report that tracks the perf trajectory.  Scale knobs:
``REPRO_BENCH_MCMC_EDGES`` (comma list), ``REPRO_BENCH_MCMC_STEPS``,
``REPRO_BENCH_MCMC_VEC_STEPS``, ``REPRO_BENCH_MCMC_MIN_ACCEPTED``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from conftest import emit
from repro.experiments import figure6_scalability, format_table

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.benchmark(group="figure6")
def test_figure6_memory_and_throughput(benchmark, config):
    results = benchmark.pedantic(lambda: figure6_scalability(config), rounds=1, iterations=1)
    emit(
        format_table(
            ["workload", "nodes", "edges", "sum d^2", "state entries", "peak MB", "build s", "MCMC steps/s"],
            [
                (
                    r["label"],
                    int(r["nodes"]),
                    int(r["edges"]),
                    int(r["degree_sum_of_squares"]),
                    int(r["state_entries"]),
                    r["peak_memory_mb"],
                    r["build_seconds"],
                    r["steps_per_second"],
                )
                for r in results
            ],
            title="Figure 6 — incremental TbI engine: memory and throughput vs sum of squared degrees",
        )
    )
    barabasi = [r for r in results if r["label"].startswith("barabasi")]
    assert len(barabasi) >= 2
    ordered = sorted(barabasi, key=lambda r: r["degree_sum_of_squares"])
    # Shape: operator state (the memory proxy) grows with sum d^2.
    assert ordered[-1]["state_entries"] > ordered[0]["state_entries"]
    # Shape: throughput falls as sum d^2 grows (allow a small tolerance for
    # timing jitter on the middle points; compare the endpoints).
    assert ordered[-1]["steps_per_second"] < ordered[0]["steps_per_second"] * 1.05
    # Shape: state also tracks sum d^2 in ratio terms: doubling sum d^2 should
    # not leave the state size unchanged.
    ratio_state = ordered[-1]["state_entries"] / ordered[0]["state_entries"]
    ratio_d2 = ordered[-1]["degree_sum_of_squares"] / ordered[0]["degree_sum_of_squares"]
    assert ratio_state > 1.0 + 0.25 * (ratio_d2 - 1.0)


# No `benchmark` fixture: the comparison times itself (steps/s is the
# reported metric), which keeps the CI smoke run free of extra dependencies.
def test_figure6_mcmc_backend_throughput():
    """Steps/second of the three MCMC scoring backends across graph sizes.

    Checks (at the largest size): the incremental columnar backend beats the
    full-pass columnar backend by ``REPRO_BENCH_MCMC_MIN_SPEEDUP`` (default
    2×, the ISSUE acceptance bar at 10k edges); the dataflow and incremental
    chains — same seed, same walk — accept identically and end with
    per-measurement distances agreeing to 1e-9; and enough steps were
    accepted for the agreement claim to be about genuinely updated state.
    """
    from repro.inference.bench import format_mcmc_comparison, mcmc_backend_comparison

    edge_counts = tuple(
        int(value)
        for value in os.environ.get("REPRO_BENCH_MCMC_EDGES", "2000,10000").split(",")
        if value.strip()
    )
    steps = int(os.environ.get("REPRO_BENCH_MCMC_STEPS", "2000"))
    vectorized_steps = int(os.environ.get("REPRO_BENCH_MCMC_VEC_STEPS", "120"))
    min_speedup = float(os.environ.get("REPRO_BENCH_MCMC_MIN_SPEEDUP", "2.0"))
    min_accepted = int(os.environ.get("REPRO_BENCH_MCMC_MIN_ACCEPTED", "1000"))

    report = mcmc_backend_comparison(
        edge_counts=edge_counts,
        steps=steps,
        vectorized_steps=vectorized_steps,
    )
    emit(format_mcmc_comparison(report))
    (REPO_ROOT / "BENCH_mcmc.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    largest = max(report["sizes"], key=lambda entry: entry["edges"])
    incremental = largest["backends"]["incremental"]
    vectorized = largest["backends"]["vectorized"]
    speedup = incremental["steps_per_second"] / vectorized["steps_per_second"]
    assert speedup >= min_speedup, (
        f"incremental columnar scoring managed only {speedup:.2f}x over the "
        f"full-pass vectorized backend at {largest['edges']} edges "
        f"(required {min_speedup}x)"
    )
    # Same seed, same walk: the two incremental-asymptotics backends must
    # walk the same chain and agree on where it ends.
    assert incremental["accepted"] >= min_accepted
    assert largest["agreement"]["accepted_equal"]
    assert largest["agreement"]["max_distance_diff"] <= 1e-9
