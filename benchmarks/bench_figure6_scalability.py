"""Figure 6: memory and throughput of the incremental engine versus Σ d².

Paper claim (Section 5.3): the memory needed by TbI-driven MCMC grows with
Σ d² (the number of candidate length-two paths the engine must index), and the
achievable MCMC steps/second falls correspondingly; Epinions, with the largest
Σ d² relative to its edge count, is the most demanding workload.

Absolute numbers are not comparable (C# on a 64 GB server vs pure Python on a
laptop-scale stand-in); the monotone relationships are what this benchmark
checks.  ``state_entries`` counts weighted records held by operator state and
is the platform-independent memory proxy; tracemalloc peak is also reported.

A second test compares the three MCMC scoring backends — dataflow, full-pass
columnar ("vectorized") and incremental columnar — on steps/second across
graph sizes, asserts the incremental backend's speedup over the full-pass
columnar one (the acceptance bar: ≥2× at 10k edges, single chain, tunable via
``REPRO_BENCH_MCMC_MIN_SPEEDUP`` for CI smoke runs), asserts that dataflow
and incremental take identical accept/reject decisions with per-measurement
distances agreeing to 1e-9, and writes the repo-root ``BENCH_mcmc.json``
report that tracks the perf trajectory.  Scale knobs:
``REPRO_BENCH_MCMC_EDGES`` (comma list), ``REPRO_BENCH_MCMC_STEPS``,
``REPRO_BENCH_MCMC_VEC_STEPS``, ``REPRO_BENCH_MCMC_MIN_ACCEPTED``.

A third test exercises the process-parallel sharded subsystem at ≥100k
edges — sharded one-shot evaluation (bit-identical to the vectorized
backend) plus aggregate steps/second of whole chains over 1/2/4 worker
processes — and writes ``BENCH_shard.json``.  Knobs:
``REPRO_BENCH_SHARD_EDGES``, ``REPRO_BENCH_SHARD_STEPS``,
``REPRO_BENCH_SHARD_PROCESSES`` (comma list) and
``REPRO_BENCH_SHARD_MIN_SPEEDUP`` (default 2.5×, enforced only on hosts
with at least as many cores as workers).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from conftest import emit
from repro.experiments import figure6_scalability, format_table

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.benchmark(group="figure6")
def test_figure6_memory_and_throughput(benchmark, config):
    results = benchmark.pedantic(lambda: figure6_scalability(config), rounds=1, iterations=1)
    emit(
        format_table(
            ["workload", "nodes", "edges", "sum d^2", "state entries", "peak MB", "build s", "MCMC steps/s"],
            [
                (
                    r["label"],
                    int(r["nodes"]),
                    int(r["edges"]),
                    int(r["degree_sum_of_squares"]),
                    int(r["state_entries"]),
                    r["peak_memory_mb"],
                    r["build_seconds"],
                    r["steps_per_second"],
                )
                for r in results
            ],
            title="Figure 6 — incremental TbI engine: memory and throughput vs sum of squared degrees",
        )
    )
    barabasi = [r for r in results if r["label"].startswith("barabasi")]
    assert len(barabasi) >= 2
    ordered = sorted(barabasi, key=lambda r: r["degree_sum_of_squares"])
    # Shape: operator state (the memory proxy) grows with sum d^2.
    assert ordered[-1]["state_entries"] > ordered[0]["state_entries"]
    # Shape: throughput falls as sum d^2 grows (allow a small tolerance for
    # timing jitter on the middle points; compare the endpoints).
    assert ordered[-1]["steps_per_second"] < ordered[0]["steps_per_second"] * 1.05
    # Shape: state also tracks sum d^2 in ratio terms: doubling sum d^2 should
    # not leave the state size unchanged.
    ratio_state = ordered[-1]["state_entries"] / ordered[0]["state_entries"]
    ratio_d2 = ordered[-1]["degree_sum_of_squares"] / ordered[0]["degree_sum_of_squares"]
    assert ratio_state > 1.0 + 0.25 * (ratio_d2 - 1.0)


# No `benchmark` fixture: the comparison times itself (steps/s is the
# reported metric), which keeps the CI smoke run free of extra dependencies.
def test_figure6_mcmc_backend_throughput():
    """Steps/second of the three MCMC scoring backends across graph sizes.

    Checks (at the largest size): the incremental columnar backend beats the
    full-pass columnar backend by ``REPRO_BENCH_MCMC_MIN_SPEEDUP`` (default
    2×, the ISSUE acceptance bar at 10k edges); the dataflow and incremental
    chains — same seed, same walk — accept identically and end with
    per-measurement distances agreeing to 1e-9; and enough steps were
    accepted for the agreement claim to be about genuinely updated state.
    """
    from repro.inference.bench import format_mcmc_comparison, mcmc_backend_comparison

    edge_counts = tuple(
        int(value)
        for value in os.environ.get("REPRO_BENCH_MCMC_EDGES", "2000,10000").split(",")
        if value.strip()
    )
    steps = int(os.environ.get("REPRO_BENCH_MCMC_STEPS", "2000"))
    vectorized_steps = int(os.environ.get("REPRO_BENCH_MCMC_VEC_STEPS", "120"))
    min_speedup = float(os.environ.get("REPRO_BENCH_MCMC_MIN_SPEEDUP", "2.0"))
    min_accepted = int(os.environ.get("REPRO_BENCH_MCMC_MIN_ACCEPTED", "1000"))

    report = mcmc_backend_comparison(
        edge_counts=edge_counts,
        steps=steps,
        vectorized_steps=vectorized_steps,
    )
    emit(format_mcmc_comparison(report))
    (REPO_ROOT / "BENCH_mcmc.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    largest = max(report["sizes"], key=lambda entry: entry["edges"])
    incremental = largest["backends"]["incremental"]
    vectorized = largest["backends"]["vectorized"]
    speedup = incremental["steps_per_second"] / vectorized["steps_per_second"]
    assert speedup >= min_speedup, (
        f"incremental columnar scoring managed only {speedup:.2f}x over the "
        f"full-pass vectorized backend at {largest['edges']} edges "
        f"(required {min_speedup}x)"
    )
    # Same seed, same walk: the two incremental-asymptotics backends must
    # walk the same chain and agree on where it ends.
    assert incremental["accepted"] >= min_accepted
    assert largest["agreement"]["accepted_equal"]
    assert largest["agreement"]["max_distance_diff"] <= 1e-9


def test_figure6_sharded_scaling():
    """Process-parallel sharding at scale — writes ``BENCH_shard.json``.

    Two phases over a ≥100k-edge graph (``REPRO_BENCH_SHARD_EDGES``):

    1. *Sharded one-shot evaluation*: the same shardable plans through
       :class:`~repro.columnar.executor.VectorizedExecutor` and a pooled
       :class:`~repro.shard.executor.ShardedExecutor`; results must be
       bit-identical (the merge-kernel contract), timings are recorded.
    2. *Chain scaling*: aggregate MCMC steps/second of whole chains fanned
       out over 1/2/4 worker processes vs a single in-process chain
       (``chain_scaling_comparison``), including the thread/process
       bit-identity check.

    The speedup bar (``REPRO_BENCH_SHARD_MIN_SPEEDUP``, default 2.5× at the
    largest worker count) is only *enforced* when the host actually has that
    many cores — process parallelism cannot beat the core count, and this
    repo's CI containers are often single-core.  ``cpu_count`` and whether
    the bar was enforced are recorded in the report either way, so a reader
    of the committed numbers knows exactly what hardware produced them.
    """
    import time

    from repro.columnar.executor import VectorizedExecutor
    from repro.core.dataset import WeightedDataset
    from repro.core.plan import DownScalePlan, SelectPlan, ShavePlan, SourcePlan
    from repro.columnar.specs import Field, Permute
    from repro.graph.generators import erdos_renyi
    from repro.inference.bench import chain_scaling_comparison, format_chain_scaling
    from repro.shard.executor import ShardedExecutor

    edges = int(os.environ.get("REPRO_BENCH_SHARD_EDGES", "100000"))
    steps = int(os.environ.get("REPRO_BENCH_SHARD_STEPS", "300"))
    process_counts = tuple(
        int(value)
        for value in os.environ.get("REPRO_BENCH_SHARD_PROCESSES", "1,2,4").split(",")
        if value.strip()
    )
    min_speedup = float(os.environ.get("REPRO_BENCH_SHARD_MIN_SPEEDUP", "2.5"))
    cpu_count = os.cpu_count() or 1
    workers = max(process_counts)

    # Phase 1 — sharded one-shot evaluation over the symmetric edge records.
    graph = erdos_renyi(max(4, edges // 2), edges, rng=0)
    dataset = WeightedDataset.from_records(graph.to_edge_records(symmetric=True))
    source = SourcePlan("edges")
    plans = [
        source,
        SelectPlan(source, Permute(1, 0)),
        SelectPlan(source, Field(0)),
        DownScalePlan(source, 0.5),
        SelectPlan(ShavePlan(source, 1.0), Field(1)),
    ]
    environment = {"edges": dataset}
    vectorized = VectorizedExecutor(environment)
    started = time.perf_counter()
    expected = vectorized.evaluate_many(plans)
    vectorized_seconds = time.perf_counter() - started
    sharded = ShardedExecutor(environment, shards=workers)
    try:
        started = time.perf_counter()
        first = sharded.evaluate_many(plans)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        second = sharded.evaluate_many(plans)
        warm_seconds = time.perf_counter() - started
        routed = [sharded.backend_for(plan) for plan in plans]
    finally:
        sharded.close()
    for want, cold, warm in zip(expected, first, second):
        assert want.to_dict() == cold.to_dict() == warm.to_dict()
    assert all(backend == "sharded" for backend in routed), routed

    # Phase 2 — aggregate throughput of process-parallel chains.
    scaling = chain_scaling_comparison(
        edges=edges, steps=steps, process_counts=process_counts, seed=0
    )
    emit(format_chain_scaling(scaling))

    enforced = cpu_count >= workers
    report = {
        "edges": edges,
        "records": len(dataset),
        "cpu_count": cpu_count,
        "min_speedup": min_speedup,
        "min_speedup_enforced": enforced,
        "sharded_evaluation": {
            "shards": workers,
            "plans": len(plans),
            "vectorized_seconds": vectorized_seconds,
            "sharded_cold_seconds": cold_seconds,
            "sharded_warm_seconds": warm_seconds,
            "bit_identical": True,
        },
        "chain_scaling": scaling,
    }
    (REPO_ROOT / "BENCH_shard.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    agreement = scaling["agreement"]
    assert agreement["accepted_equal"], agreement
    assert agreement["graphs_equal"], agreement
    assert agreement["max_distance_diff"] <= 1e-9, agreement
    if enforced:
        largest = max(scaling["scaling"], key=lambda row: row["processes"])
        assert largest["speedup_vs_single"] >= min_speedup, (
            f"{largest['processes']} worker processes managed only "
            f"{largest['speedup_vs_single']:.2f}x aggregate steps/s over a "
            f"single chain on a {cpu_count}-core host (required {min_speedup}x)"
        )
