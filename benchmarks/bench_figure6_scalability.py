"""Figure 6: memory and throughput of the incremental engine versus Σ d².

Paper claim (Section 5.3): the memory needed by TbI-driven MCMC grows with
Σ d² (the number of candidate length-two paths the engine must index), and the
achievable MCMC steps/second falls correspondingly; Epinions, with the largest
Σ d² relative to its edge count, is the most demanding workload.

Absolute numbers are not comparable (C# on a 64 GB server vs pure Python on a
laptop-scale stand-in); the monotone relationships are what this benchmark
checks.  ``state_entries`` counts weighted records held by operator state and
is the platform-independent memory proxy; tracemalloc peak is also reported.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments import figure6_scalability, format_table


@pytest.mark.benchmark(group="figure6")
def test_figure6_memory_and_throughput(benchmark, config):
    results = benchmark.pedantic(lambda: figure6_scalability(config), rounds=1, iterations=1)
    emit(
        format_table(
            ["workload", "nodes", "edges", "sum d^2", "state entries", "peak MB", "build s", "MCMC steps/s"],
            [
                (
                    r["label"],
                    int(r["nodes"]),
                    int(r["edges"]),
                    int(r["degree_sum_of_squares"]),
                    int(r["state_entries"]),
                    r["peak_memory_mb"],
                    r["build_seconds"],
                    r["steps_per_second"],
                )
                for r in results
            ],
            title="Figure 6 — incremental TbI engine: memory and throughput vs sum of squared degrees",
        )
    )
    barabasi = [r for r in results if r["label"].startswith("barabasi")]
    assert len(barabasi) >= 2
    ordered = sorted(barabasi, key=lambda r: r["degree_sum_of_squares"])
    # Shape: operator state (the memory proxy) grows with sum d^2.
    assert ordered[-1]["state_entries"] > ordered[0]["state_entries"]
    # Shape: throughput falls as sum d^2 grows (allow a small tolerance for
    # timing jitter on the middle points; compare the endpoints).
    assert ordered[-1]["steps_per_second"] < ordered[0]["steps_per_second"] * 1.05
    # Shape: state also tracks sum d^2 in ratio terms: doubling sum d^2 should
    # not leave the state size unchanged.
    ratio_state = ordered[-1]["state_entries"] / ordered[0]["state_entries"]
    ratio_d2 = ordered[-1]["degree_sum_of_squares"] / ordered[0]["degree_sum_of_squares"]
    assert ratio_state > 1.0 + 0.25 * (ratio_d2 - 1.0)
