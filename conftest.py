"""Repository-level pytest configuration.

Adds ``src/`` to ``sys.path`` so the test and benchmark suites work even when
the package has not been installed (the offline environment this reproduction
targets cannot run PEP 660 editable installs; see README "Installation").
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
