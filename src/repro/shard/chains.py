"""Process-parallel MCMC chains: the worker-side task and its wire format.

Thread chains (:mod:`repro.inference.parallel`) overlap only as far as
NumPy releases the GIL; the proposal loop's Python portion serialises.
Process chains move the *entire* chain — synthesizer construction, scoring
engine, proposal loop — into a pool worker, so N chains use N cores.

Bit-identical to thread chains by construction:

* each chain receives the same :class:`numpy.random.Generator` object the
  thread path would have used (``spawn_generators`` output pickles with its
  full state), so every proposal and acceptance draw matches;
* measurements travel as *released values* via
  :func:`~repro.shard.plan.encode_measurement` — the fixed targets every
  scoring backend reads — so worker-side scores equal coordinator-side
  scores exactly;
* the seed graph is a plain picklable adjacency structure.

What does not travel: live ``metrics`` callables (closures over
coordinator state cannot cross the boundary — ``run_chains`` rejects them
with ``processes=``) and the worker's synthesizer object (the coordinator
rebuilds one from the winning chain's graph when it needs to adopt it).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.graph import Graph
from .plan import PortableMeasurement, decode_measurement

__all__ = ["run_chain"]

#: fingerprint -> decoded plan, per worker process, shared across requests
#: so repeated benchmarking against one measurement set decodes plans once.
_CHAIN_PLANS: dict[str, Any] = {}


def run_chain(
    *,
    index: int,
    measurements: list[PortableMeasurement],
    seed_graph: Graph,
    steps: int,
    pow_: float,
    backend: str,
    source_name: str,
    record_every: int | None,
    proposal_batch: int | None,
    rng: np.random.Generator,
) -> dict:
    """Run one full synthesis chain inside a pool worker.

    Returns a picklable outcome row (no synthesizer object): the trajectory
    result, final score, final graph and per-measurement distances —
    everything :class:`~repro.inference.parallel.ChainOutcome` carries
    except the live synthesizer.
    """
    from ..inference.synthesizer import GraphSynthesizer

    rebuilt = [decode_measurement(m, _CHAIN_PLANS) for m in measurements]
    synthesizer = GraphSynthesizer(
        rebuilt,
        seed_graph,
        pow_=pow_,
        rng=rng,
        source_name=source_name,
        backend=backend,
    )
    result = synthesizer.run(
        steps,
        record_every=record_every,
        proposal_batch=proposal_batch,
    )
    return {
        "index": index,
        "result": result,
        "log_score": synthesizer.log_score,
        "graph": synthesizer.graph,
        "distances": synthesizer.distances(),
    }
