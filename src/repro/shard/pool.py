"""A persistent, spawn-safe worker-process pool with crash recovery.

``multiprocessing.Pool`` hides exactly the failure modes a long-lived
execution service must surface (a killed worker hangs ``map``), and
``concurrent.futures.ProcessPoolExecutor`` broke the whole pool on a
worker death until 3.11 and still cannot restart one.  This pool is small
and explicit instead:

* **Framing** — one duplex :class:`multiprocessing.Pipe` per worker; every
  request is ``(request_id, function, args, kwargs)`` and every response
  ``(request_id, "ok" | "error", payload)``.  Functions are module-level
  callables pickled by reference — spawn-safe by construction.
* **Liveness** — :meth:`ping` performs an explicit request/response
  heartbeat (used at boot to confirm initialisation); during a batch the
  dispatcher multiplexes responses with :func:`multiprocessing.connection
  .wait`, checks ``Process.is_alive()`` whenever a connection goes quiet,
  and enforces a per-task deadline (``task_timeout``) — a worker that
  blows the deadline is killed and treated as crashed.
* **Crash recovery** — a dead worker's in-flight task is retried on a
  freshly spawned replacement (up to ``retries`` times across the batch)
  or failed cleanly with :class:`WorkerCrashError`; either way the batch
  always terminates and the pool stays usable.  Each incarnation gets a
  new ``generation`` and an empty ``meta`` dict, which is how the sharded
  executor knows to re-broadcast its interner snapshot.
* **Shutdown** — :meth:`shutdown` sends a stop frame, joins with a grace
  period, then terminates and finally kills stragglers.  Workers are
  daemonic, so an abandoned pool cannot outlive the coordinator.

Start method: ``spawn`` by default (fork is unsound under threads — and
the service runs them); ``fork`` opt-in via the constructor or
``REPRO_SHARD_START_METHOD`` for fork-safe workloads that want the cheap
startup.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
import multiprocessing as mp
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Sequence

from ..exceptions import FaultInjectedError
from ..resilience.faults import inject
from ..sanitize import ordered_lock

__all__ = ["PoolError", "WorkerCrashError", "PoolTask", "ProcessPool"]

_STOP = "__stop__"
_PING = "__ping__"

#: Default per-task deadline (seconds); generous because shard tasks are
#: compute-bound.  Override per pool or via REPRO_SHARD_TIMEOUT.
DEFAULT_TASK_TIMEOUT = 600.0


class PoolError(RuntimeError):
    """A pool request failed."""


class WorkerCrashError(PoolError):
    """A worker died (or hung past its deadline) while running a task."""


class TaskFailedError(PoolError):
    """The task function raised inside the worker; remote traceback attached."""

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


def _worker_main(conn, index: int, initializer, init_args) -> None:
    """Worker loop: initialise once, then serve request frames until stop."""
    import traceback

    try:
        if initializer is not None:
            initializer(index, *init_args)
    except BaseException:
        # Initialisation failure: report it to the first request (or ping)
        # and exit; the parent sees the EOF as a crash and restarts.
        try:
            conn.send((None, "error", "worker initializer failed", traceback.format_exc()))
        finally:
            return
    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return
        if frame[0] == _STOP:
            return
        if frame[0] == _PING:
            conn.send((_PING, "ok", frame[1]))
            continue
        request_id, function, args, kwargs = frame
        try:
            inject("pool.worker")
            result = function(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - forwarded, not hidden
            conn.send((request_id, "error", repr(exc), traceback.format_exc()))
        else:
            try:
                conn.send((request_id, "ok", result))
            except (TypeError, AttributeError, pickle.PicklingError) as exc:
                # Pickling happens before any bytes hit the pipe, so the
                # channel is still clean: report instead of dying.
                conn.send(
                    (request_id, "error", f"unpicklable result: {exc!r}", traceback.format_exc())
                )


class _Worker:
    """Parent-side record of one worker incarnation."""

    __slots__ = ("index", "generation", "process", "conn", "meta", "task")

    def __init__(self, index: int, generation: int, process, conn) -> None:
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        #: Scratch space for pool clients (cleared on restart); the sharded
        #: executor tracks its interner broadcast position here.
        self.meta: dict[str, Any] = {}
        #: The batch slot this worker is currently running, if any.
        self.task: "_Slot | None" = None


class _Slot:
    """One task of a batch: its spec, attempts and eventual outcome."""

    __slots__ = (
        "position", "task", "attempts", "result", "error", "done", "deadline",
        "limit",
    )

    def __init__(self, position: int, task: "PoolTask") -> None:
        self.position = position
        self.task = task
        self.attempts = 0
        self.result = None
        self.error: Exception | None = None
        self.done = False
        self.deadline = 0.0
        self.limit = 0.0


class PoolTask:
    """A unit of pool work: a module-level function plus its arguments.

    ``prepare(worker)`` — optional — is called when the task is assigned to
    a concrete worker and returns extra keyword arguments merged into the
    call.  This is the hook for per-worker payloads (the sharded executor
    computes each worker's interner delta here, because only at dispatch
    time is the receiving incarnation known).

    ``timeout`` — optional — tightens the pool's ``task_timeout`` for this
    one task (never loosens it); the sharded executor derives it from the
    request's propagated deadline so a task cannot outlive its caller.
    """

    __slots__ = ("function", "args", "kwargs", "prepare", "timeout")

    def __init__(
        self,
        function: Callable,
        args: tuple = (),
        kwargs: dict | None = None,
        prepare: Callable[[_Worker], dict] | None = None,
        timeout: float | None = None,
    ) -> None:
        self.function = function
        self.args = args
        self.kwargs = kwargs or {}
        self.prepare = prepare
        self.timeout = timeout


class ProcessPool:
    """The persistent worker pool.  See the module docstring for semantics."""

    def __init__(
        self,
        workers: int = 2,
        start_method: str | None = None,
        initializer: Callable | None = None,
        init_args: tuple = (),
        task_timeout: float | None = None,
        retries: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        if start_method is None:
            start_method = os.environ.get("REPRO_SHARD_START_METHOD", "spawn")
        if start_method not in ("spawn", "fork", "forkserver"):
            raise ValueError(f"unsupported start method {start_method!r}")
        if task_timeout is None:
            task_timeout = float(os.environ.get("REPRO_SHARD_TIMEOUT", DEFAULT_TASK_TIMEOUT))
        self.start_method = start_method
        self.task_timeout = task_timeout
        self.retries = retries
        self._context = mp.get_context(start_method)
        self._initializer = initializer
        self._init_args = init_args
        self._request_ids = itertools.count()
        self._generations = itertools.count()
        self._closed = False
        # Serialises concurrent shutdown() callers: the teardown runs once,
        # later callers block until it finishes, then return.
        self._shutdown_lock = ordered_lock("shard.pool.shutdown", 30, io_ok=True)  # lock-order: 30 io-ok
        # Start the parent's resource tracker *before* any worker exists.
        # A fork child created while the tracker is still unlaunched lazily
        # starts its own private tracker on first shared-memory attach; that
        # tracker never sees the coordinator's unlink and tries to unlink
        # already-gone segments at worker exit (one warning per attach).
        # Spawn children are immune only because the spawn machinery itself
        # calls getfd() -> ensure_running(); forcing it here makes every
        # start method inherit the one shared tracker.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - e.g. platforms without it
            pass
        self.workers: list[_Worker] = [self._spawn(index) for index in range(workers)]
        #: Cumulative crash/restart count (observability + tests).
        self.restarts = 0

    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, index, self._initializer, self._init_args),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        process.start()
        child_conn.close()
        return _Worker(index, next(self._generations), process, parent_conn)

    def _restart(self, worker: _Worker) -> None:
        """Replace a dead/hung worker with a fresh incarnation in place."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5)
        replacement = self._spawn(worker.index)
        worker.generation = replacement.generation
        worker.process = replacement.process
        worker.conn = replacement.conn
        worker.meta = {}
        worker.task = None
        self.restarts += 1

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.workers)

    def ping(self, timeout: float = 30.0) -> list[float]:
        """Round-trip a heartbeat through every worker; returns latencies.

        Also the boot barrier: a worker answers its first ping only after
        its initializer ran, so ``ping()`` after construction guarantees
        the pool is ready (or raises :class:`WorkerCrashError`).
        """
        self._ensure_open()
        latencies = []
        for worker in self.workers:
            token = next(self._request_ids)
            started = time.perf_counter()
            try:
                inject("pool.heartbeat")
                worker.conn.send((_PING, token))
                while True:
                    if not worker.conn.poll(timeout):
                        raise WorkerCrashError(
                            f"worker {worker.index} did not answer a ping within {timeout}s"
                        )
                    frame = worker.conn.recv()
                    if frame[0] == _PING and frame[2] == token:
                        break
                    if frame[1] == "error":
                        raise TaskFailedError(str(frame[2]), frame[3] if len(frame) > 3 else "")
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._restart(worker)
                raise WorkerCrashError(f"worker {worker.index} died during ping") from exc
            latencies.append(time.perf_counter() - started)
        return latencies

    # ------------------------------------------------------------------
    def run_batch(self, tasks: Sequence[PoolTask]) -> list[Any]:
        """Run ``tasks`` across the workers; results in task order.

        Tasks are dispatched to idle workers as responses drain.  A worker
        crash (or deadline overrun) fails its task's current attempt: the
        task is requeued while attempts remain, otherwise the whole batch
        raises :class:`WorkerCrashError` after every other task has been
        driven to completion — the pool itself is always left usable.
        """
        self._ensure_open()
        slots = [_Slot(position, task) for position, task in enumerate(tasks)]
        if not slots:
            return []
        pending: list[_Slot] = list(slots)
        failures: list[Exception] = []

        def dispatch(worker: _Worker) -> None:
            slot = pending.pop(0)
            slot.attempts += 1
            slot.limit = self.task_timeout
            if slot.task.timeout is not None:
                slot.limit = min(slot.limit, slot.task.timeout)
            slot.deadline = time.monotonic() + slot.limit
            kwargs = dict(slot.task.kwargs)
            if slot.task.prepare is not None:
                kwargs.update(slot.task.prepare(worker))
            worker.task = slot
            try:
                inject("pool.dispatch")
                worker.conn.send(
                    (next(self._request_ids), slot.task.function, slot.task.args, kwargs)
                )
            except FaultInjectedError as exc:
                # Injected dispatch failure: charge the attempt without
                # killing the (healthy) worker.
                worker.task = None
                self._requeue_or_fail(slot, pending, failures, exc)
            except (OSError, BrokenPipeError):
                worker.task = None
                self._on_crash(worker, slot, pending, failures)

        def idle_workers() -> list[_Worker]:
            return [worker for worker in self.workers if worker.task is None]

        while pending or any(worker.task is not None for worker in self.workers):
            for worker in idle_workers():
                if not pending:
                    break
                dispatch(worker)
            busy = [worker for worker in self.workers if worker.task is not None]
            if not busy:
                continue
            nearest = min(worker.task.deadline for worker in busy)
            timeout = max(0.0, min(nearest - time.monotonic(), 1.0))
            ready = connection_wait([worker.conn for worker in busy], timeout)
            ready_set = set(ready)
            now = time.monotonic()
            for worker in busy:
                slot = worker.task
                if worker.conn in ready_set:
                    try:
                        frame = worker.conn.recv()
                    except (EOFError, OSError):
                        worker.task = None
                        self._on_crash(worker, slot, pending, failures)
                        continue
                    worker.task = None
                    if frame[1] == "ok":
                        slot.result = frame[2]
                        slot.done = True
                    else:
                        slot.error = TaskFailedError(
                            f"task {slot.position} raised in worker {worker.index}: {frame[2]}",
                            frame[3] if len(frame) > 3 else "",
                        )
                        slot.done = True
                        failures.append(slot.error)
                elif not worker.process.is_alive():
                    worker.task = None
                    self._on_crash(worker, slot, pending, failures)
                elif now > slot.deadline:
                    worker.task = None
                    self._restart(worker)
                    self._requeue_or_fail(
                        slot,
                        pending,
                        failures,
                        WorkerCrashError(
                            f"task {slot.position} exceeded the {slot.limit}s "
                            f"deadline in worker {worker.index}; worker killed"
                        ),
                    )
        if failures:
            raise failures[0]
        return [slot.result for slot in slots]

    def _on_crash(self, worker: _Worker, slot: _Slot, pending, failures) -> None:
        self._restart(worker)
        self._requeue_or_fail(
            slot,
            pending,
            failures,
            WorkerCrashError(
                f"worker {worker.index} died while running task {slot.position}"
            ),
        )

    def _requeue_or_fail(self, slot: _Slot, pending, failures, error: Exception) -> None:
        if slot.attempts <= self.retries:
            pending.append(slot)
        else:
            slot.error = error
            slot.done = True
            failures.append(error)

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise PoolError("pool is shut down")

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker: graceful frame, join, then terminate/kill.

        Idempotent under concurrent callers: the teardown runs exactly once;
        a racing caller blocks until the workers are actually gone, so no
        caller can observe a half-shut pool.
        """
        with self._shutdown_lock:
            self._shutdown_locked(timeout)

    def _shutdown_locked(self, timeout: float) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            try:
                worker.conn.send((_STOP,))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            if worker.process.is_alive():  # pragma: no cover - stubborn worker
                worker.process.kill()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown(timeout=0.5)
        except Exception:
            pass
