"""Picklable plan and measurement protocol for worker processes.

Plans are compared by identity throughout the platform and may close over
arbitrary callables, so a live :class:`~repro.core.plan.Plan` object cannot
simply be pickled: lambdas fail outright, and shipping the object graph
twice would silently *split* shared sub-plans (identity is lost across two
pickles).  This module defines the wire form the workers rebuild from:

* :func:`encode_plan` flattens a plan DAG into a :class:`PortablePlan` —
  a list of ``(kind, params, child indices)`` node rows in first-visit
  order, with sharing captured as indices, so :func:`decode_plan` restores
  an identity-shared DAG on the other side.
* Callable parameters must be *portable*: a structural
  :class:`~repro.columnar.specs.ColumnarSpec` (pickled by value) or a
  module-level function (pickled by reference).  Anything else —
  lambdas, closures, bound methods — raises :class:`UnportablePlanError`
  at encode time, with the offending node named, rather than a cryptic
  pickling failure inside a worker.

  Record callables that consult ``hash(str)`` are a silent cross-process
  hazard (the salt differs per process, ``PYTHONHASHSEED``); specs never
  hash, which is one more reason the analyses express their plans with
  them.
* :func:`encode_measurement` / :func:`decode_measurement` carry a
  *released* :class:`~repro.core.aggregation.NoisyCountResult` across the
  boundary: the released values, ε and the portable plan.  The worker
  rehydrates with :meth:`NoisyCountResult.from_released`, so the protected
  data is never consulted in a worker and the fixed released targets —
  what every MCMC scoring backend reads — are bit-identical to the
  coordinator's.

The portable form doubles as the structural identity the ROADMAP's
cost-based optimizer needs: :meth:`PortablePlan.fingerprint` hashes the
pickled node rows, so equivalent plans built independently (even in
different processes) get equal fingerprints — used here to key worker-side
decoded-plan caches.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

from ..core.aggregation import NoisyCountResult
from ..core.plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
)

# The portability judgement (what may cross a process boundary, and the
# per-node parameter lists) lives in repro.lint.portability so the static
# plan checker and this runtime codec can never disagree.
# UnportablePlanError is re-exported here for compatibility.
from ..lint.portability import (
    PLAN_PARAMS,
    UnportablePlanError,
    check_portable as _check_portable,
)

__all__ = [
    "UnportablePlanError",
    "PortablePlan",
    "PortableMeasurement",
    "encode_plan",
    "decode_plan",
    "encode_measurement",
    "decode_measurement",
]


class PortablePlan:
    """A flattened, picklable plan DAG (sharing captured as node indices)."""

    __slots__ = ("nodes", "_fingerprint")

    def __init__(self, nodes: tuple[tuple, ...]) -> None:
        #: ``(kind, params tuple, child index tuple)`` rows; children always
        #: precede their parents, the root is the last row.
        self.nodes = nodes
        self._fingerprint: str | None = None

    def __getstate__(self):
        return self.nodes

    def __setstate__(self, state):
        self.nodes = state
        self._fingerprint = None

    def fingerprint(self) -> str:
        """Structural digest: equal for structurally equal plans.

        Specs pickle deterministically (value objects with fixed slots), so
        two plans built from the same specs — by different sessions or
        processes — hash equal.  Plans containing by-reference callables
        hash by the function's module path, which is as structural as a
        black-box function can get.
        """
        if self._fingerprint is None:
            self._fingerprint = hashlib.sha256(
                pickle.dumps(self.nodes, protocol=4)
            ).hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:
        return f"PortablePlan(nodes={len(self.nodes)}, root={self.nodes[-1][0]})"


#: kind -> plan type; parameter attribute names come from the shared
#: PLAN_PARAMS table, the same one the static checker validates against.
_NODE_KINDS: dict[str, type] = {
    "source": SourcePlan,
    "select": SelectPlan,
    "where": WherePlan,
    "select_many": SelectManyPlan,
    "group_by": GroupByPlan,
    "shave": ShavePlan,
    "distinct": DistinctPlan,
    "down_scale": DownScalePlan,
    "join": JoinPlan,
    "union": UnionPlan,
    "intersect": IntersectPlan,
    "concat": ConcatPlan,
    "except": ExceptPlan,
}
_KIND_BY_TYPE = {plan_type: kind for kind, plan_type in _NODE_KINDS.items()}


def encode_plan(plan: Plan) -> PortablePlan:
    """Flatten a plan DAG into its portable form, validating every parameter."""
    rows: list[tuple] = []
    index_of: dict[int, int] = {}

    def visit(node: Plan) -> int:
        key = id(node)
        if key in index_of:
            return index_of[key]
        kind = _KIND_BY_TYPE.get(type(node))
        if kind is None:
            raise UnportablePlanError(
                f"plan node {type(node).__name__} has no portable encoding"
            )
        children = tuple(visit(child) for child in node.children)
        attributes = PLAN_PARAMS[type(node)]
        params = tuple(
            _check_portable(getattr(node, attribute), node._label(), attribute)
            for attribute in attributes
        )
        rows.append((kind, params, children))
        index_of[key] = len(rows) - 1
        return index_of[key]

    visit(plan)
    return PortablePlan(tuple(rows))


def decode_plan(portable: PortablePlan) -> Plan:
    """Rebuild an identity-shared plan DAG from its portable form."""
    built: list[Plan] = []
    for kind, params, children in portable.nodes:
        plan_type = _NODE_KINDS[kind]
        built.append(plan_type(*(built[child] for child in children), *params))
    return built[-1]


class PortableMeasurement:
    """A released measurement in wire form: values + ε + portable plan."""

    __slots__ = ("values", "epsilon", "query_name", "plan")

    def __init__(
        self,
        values: list[tuple[Any, float]],
        epsilon: float,
        query_name: str,
        plan: PortablePlan | None,
    ) -> None:
        self.values = values
        self.epsilon = epsilon
        self.query_name = query_name
        self.plan = plan

    def __getstate__(self):
        return (self.values, self.epsilon, self.query_name, self.plan)

    def __setstate__(self, state):
        self.values, self.epsilon, self.query_name, self.plan = state


def encode_measurement(measurement: NoisyCountResult) -> PortableMeasurement:
    """Encode a released measurement for a worker.

    Only the values released *so far* travel — which is exactly what the
    MCMC scoring backends read (their targets are fixed at construction).
    A worker-side rehydrated result drawing fresh noise for never-released
    records would diverge from the coordinator, so the scorers' fixed-target
    contract is what makes process chains bit-identical to thread chains.
    """
    plan = measurement.plan
    return PortableMeasurement(
        list(measurement.items()),
        measurement.epsilon,
        measurement.query_name,
        encode_plan(plan) if plan is not None else None,
    )


def decode_measurement(
    portable: PortableMeasurement,
    plan_cache: dict[str, Plan] | None = None,
) -> NoisyCountResult:
    """Rehydrate a measurement without touching protected data.

    ``plan_cache`` (fingerprint → decoded plan) lets a persistent worker
    reuse one plan object across requests, preserving identity-keyed
    sharing between measurements that reference the same sub-plans — two
    measurements in one payload share decoded nodes only if their roots
    are distinct, so cross-measurement sharing is restored per-payload by
    the caller, not here.
    """
    plan = None
    if portable.plan is not None:
        if plan_cache is not None:
            fingerprint = portable.plan.fingerprint()
            plan = plan_cache.get(fingerprint)
            if plan is None:
                plan = decode_plan(portable.plan)
                plan_cache[fingerprint] = plan
        else:
            plan = decode_plan(portable.plan)
    return NoisyCountResult.from_released(
        portable.values,
        portable.epsilon,
        plan=plan,
        query_name=portable.query_name,
    )
