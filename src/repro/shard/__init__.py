"""Process-parallel sharded columnar execution.

This package is the ROADMAP's "escape the GIL" layer: everything needed to
run columnar work in *worker processes* instead of threads —

* :mod:`~repro.shard.memory` — column buffers in
  :mod:`multiprocessing.shared_memory` with zero-copy NumPy views and a
  refcounted segment lifecycle, so a shard's arrays cross the process
  boundary without serialising the data;
* :mod:`~repro.shard.plan` — a picklable plan/spec protocol: plan DAGs
  (sharing preserved) and released measurements encoded into portable value
  objects, so workers rebuild executors without shipping closures;
* :mod:`~repro.shard.interner` — :class:`ShardInterner`: a frozen snapshot
  of the coordinator's interner broadcast to workers, worker-local
  extensions in disjoint code namespaces, and a deterministic
  reconciliation merge back into the coordinator's table;
* :mod:`~repro.shard.dataset` — :class:`ShardedColumnarDataset`:
  key-range partitioning of a columnar dataset plus the merge kernels
  (order-preserving concat for record-disjoint shards, bincount sum for
  overlapping ones) with the exactness rules documented per operator;
* :mod:`~repro.shard.pool` — :class:`ProcessPool`, a persistent spawn-safe
  worker-process pool with request/response framing, liveness checks,
  crash detection with worker restart, and graceful shutdown;
* :mod:`~repro.shard.executor` — :class:`ShardedExecutor`, the
  :class:`~repro.core.executor.Executor`-protocol backend
  (``create_executor("sharded")``): partition → per-shard vectorized
  kernels in workers → merge, with a single-process vectorized fallback
  for non-shardable plans;
* :mod:`~repro.shard.chains` — whole-chain MCMC tasks for
  ``run_chains(..., processes=N)``: each worker rebuilds measurements and
  synthesizer from portable payloads and runs an entire chain, which is
  the path that actually escapes the GIL for synthesis throughput.
"""

from .dataset import ShardedColumnarDataset, concat_merge, sum_merge
from .executor import ShardedExecutor
from .interner import ShardInterner
from .memory import SharedSegment, attach_segment, pack_arrays
from .plan import PortableMeasurement, PortablePlan, decode_plan, encode_plan
from .pool import PoolError, ProcessPool, WorkerCrashError

__all__ = [
    "ShardedColumnarDataset",
    "concat_merge",
    "sum_merge",
    "ShardedExecutor",
    "ShardInterner",
    "SharedSegment",
    "attach_segment",
    "pack_arrays",
    "PortablePlan",
    "PortableMeasurement",
    "encode_plan",
    "decode_plan",
    "ProcessPool",
    "PoolError",
    "WorkerCrashError",
]
