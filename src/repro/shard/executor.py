"""`ShardedExecutor`: partition → per-shard kernels in workers → merge.

The sixth execution backend behind the :class:`~repro.core.executor
.Executor` protocol (``create_executor("sharded")``).  For each plan it
decides, by a bottom-up *shardability analysis*, whether the whole chain
can run independently on contiguous key-range shards of its sources:

======================  =============================================
operator                sharding contract
======================  =============================================
Where, DownScale        record-wise and linear: always shardable,
                        preserve record-disjointness
Select                  linear: always shardable; preserves
                        disjointness only for a bijective
                        :class:`~repro.columnar.specs.Permute` of the
                        full record (tracked via source arity)
SelectMany, Concat,     linear: shardable, output records overlap
Except                  across shards (merged by summation)
Shave, Distinct         *nonlinear* per-record functions of a
                        record's total weight: shardable only while
                        shards are still record-disjoint
GroupBy, Join, Union,   not shardable (cross-record/non-linear):
Intersect               single-process vectorized fallback
======================  =============================================

Disjoint chains merge by order-preserving concatenation — bit-identical
to the unsharded kernels, always.  Chains that lose disjointness merge by
per-record summation — bit-identical on exactly-representable weights
(the wPINQ integer/dyadic data model), within float rounding otherwise;
see :mod:`repro.shard.dataset` for the full argument.  Everything else
falls back to this executor's inner :class:`~repro.columnar.executor
.VectorizedExecutor`, which shares the environment and source encodings,
so the fallback is merely "one shard".

Two execution modes share the analysis and the merge path:

* **pool mode** — shards ship to a :class:`~repro.shard.pool.ProcessPool`
  through shared-memory segments; workers hold a
  :class:`~repro.shard.interner.ShardInterner` fed by incremental frozen
  deltas and return extension atoms for deterministic reconciliation.
  Plans must be portable (:mod:`repro.shard.plan`); a plan that is not —
  or any pool-level failure — degrades to the vectorized fallback rather
  than failing the measurement.
* **inline mode** (``pool=None``) — shards run sequentially in-process,
  each under a borrowed-snapshot :class:`ShardInterner` installed via
  :func:`~repro.columnar.interning.use_interner`.  Same partition, same
  namespaces, same reconciliation, no processes: the mode the property
  tests drive hard, and the correctness twin of pool mode.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..columnar.dataset import ColumnarDataset
from ..columnar.executor import VectorizedExecutor
from ..columnar.interning import global_interner, use_interner
from ..columnar.specs import Permute
from ..core.dataset import WeightedDataset
from ..core.plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    WherePlan,
)
from ..resilience.deadline import current_deadline
from ..resilience.policy import CircuitBreaker
from .dataset import ShardedColumnarDataset, concat_merge, sum_merge
from .interner import ShardInterner, merge_extensions, remap_codes
from .memory import SegmentDescriptor, attach_segment, pack_arrays
from .plan import PortablePlan, UnportablePlanError, decode_plan, encode_plan
from .pool import PoolError, PoolTask, ProcessPool

__all__ = ["ShardedExecutor", "DEFAULT_MIN_SHARD_ROWS", "default_shard_count"]

#: Below this many source rows a plan is not worth sharding (IPC and
#: partition overhead dominate); overridable per executor and via env.
DEFAULT_MIN_SHARD_ROWS = 4096


def default_shard_count() -> int:
    """Shard/worker count: ``REPRO_SHARD_PROCESSES`` or a bounded CPU fit."""
    env = os.environ.get("REPRO_SHARD_PROCESSES")
    if env:
        return max(1, int(env))
    return max(2, min(4, os.cpu_count() or 1))


class _ChainInfo:
    """Result of the shardability analysis for one plan node."""

    __slots__ = ("shardable", "disjoint", "arity")

    def __init__(self, shardable: bool, disjoint: bool, arity: int | None) -> None:
        self.shardable = shardable
        self.disjoint = disjoint
        self.arity = arity


_NOT_SHARDABLE = _ChainInfo(False, False, None)


class ShardedExecutor:
    """Process-parallel sharded execution with a vectorized fallback.

    Parameters
    ----------
    environment:
        Source name → dataset mapping, as for every executor.
    shards:
        Number of partitions (and pool workers); defaults to
        :func:`default_shard_count`.
    pool:
        ``"auto"`` (default) lazily spins up a :class:`ProcessPool` of
        ``shards`` workers on first sharded evaluation; ``None`` selects
        inline mode; a pre-built :class:`ProcessPool` is used as-is (and
        not shut down by :meth:`close`).
    min_rows:
        Source-row threshold below which plans fall back to the inner
        vectorized executor (``REPRO_SHARD_MIN_ROWS`` overrides the
        default).
    breaker:
        The :class:`CircuitBreaker` guarding pool mode.  While open, pool
        dispatch is skipped entirely and shardable plans run on the inner
        vectorized executor — bit-identical, just slower.  Defaults to a
        3-failure / 30-second breaker.
    """

    def __init__(
        self,
        environment: Mapping[str, Any],
        shards: int | None = None,
        pool: ProcessPool | str | None = "auto",
        min_rows: int | None = None,
        start_method: str | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self._environment = environment
        self.shards = shards if shards is not None else default_shard_count()
        if self.shards < 1:
            raise ValueError("shards must be a positive integer")
        if min_rows is None:
            min_rows = int(os.environ.get("REPRO_SHARD_MIN_ROWS", DEFAULT_MIN_SHARD_ROWS))
        self.min_rows = min_rows
        self._vectorized = VectorizedExecutor(environment)
        self._pool_mode = pool
        self._pool: ProcessPool | None = pool if isinstance(pool, ProcessPool) else None
        self._owns_pool = False
        self._start_method = start_method
        self._portable: dict[int, tuple[Plan, PortablePlan]] = {}
        self.pool_breaker = breaker if breaker is not None else CircuitBreaker(
            threshold=3, reset_after=30.0, name="shard-pool"
        )
        #: Called with a reason string whenever pool mode degrades to the
        #: inline vectorized path (the registry wires this to the audit log).
        self.on_degrade: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def inline(self) -> bool:
        """True when shards execute in-process (no worker pool)."""
        return self._pool_mode is None

    def _ensure_pool(self) -> ProcessPool | None:
        if self._pool_mode is None:
            return None
        if self._pool is None:
            self._pool = ProcessPool(
                workers=self.shards,
                start_method=self._start_method,
                initializer=_shard_worker_init,
            )
            self._owns_pool = True
        return self._pool

    def close(self) -> None:
        """Shut down an owned pool (idempotent; a borrowed pool is left up)."""
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shardability analysis
    # ------------------------------------------------------------------
    def _source_arity(self, name: str) -> int | None:
        dataset = self._environment.get(name)
        if isinstance(dataset, ColumnarDataset):
            return dataset.arity
        if isinstance(dataset, WeightedDataset):
            return self._vectorized.dataset(name).arity
        return None

    def _analyze(self, plan: Plan, memo: dict[int, _ChainInfo] | None = None) -> _ChainInfo:
        if memo is None:
            memo = {}
        cached = memo.get(id(plan))
        if cached is not None:
            return cached
        info = self._analyze_node(plan, memo)
        memo[id(plan)] = info
        return info

    def _analyze_node(self, plan: Plan, memo: dict[int, _ChainInfo]) -> _ChainInfo:
        if isinstance(plan, SourcePlan):
            return _ChainInfo(True, True, self._source_arity(plan.name))
        if isinstance(plan, (WherePlan, DownScalePlan)):
            child = self._analyze(plan.child, memo)
            return _ChainInfo(child.shardable, child.disjoint, child.arity)
        if isinstance(plan, SelectPlan):
            child = self._analyze(plan.child, memo)
            if not child.shardable:
                return _NOT_SHARDABLE
            mapper = plan.mapper
            if (
                isinstance(mapper, Permute)
                and child.arity is not None
                and mapper.is_permutation_of(child.arity)
            ):
                # A bijection on records: disjointness survives.
                return _ChainInfo(True, child.disjoint, child.arity)
            return _ChainInfo(True, False, None)
        if isinstance(plan, SelectManyPlan):
            child = self._analyze(plan.child, memo)
            return _ChainInfo(child.shardable, False, None)
        if isinstance(plan, ShavePlan):
            child = self._analyze(plan.child, memo)
            # Shave slices a record's *total* weight: sound only while the
            # record's weight is wholly within one shard.
            if child.shardable and child.disjoint:
                return _ChainInfo(True, True, 2)
            return _NOT_SHARDABLE
        if isinstance(plan, DistinctPlan):
            child = self._analyze(plan.child, memo)
            # min(w, cap) of the total weight: same disjointness requirement.
            if child.shardable and child.disjoint:
                return _ChainInfo(True, True, child.arity)
            return _NOT_SHARDABLE
        if isinstance(plan, (ConcatPlan, ExceptPlan)):
            left = self._analyze(plan.left, memo)
            right = self._analyze(plan.right, memo)
            if left.shardable and right.shardable:
                arity = left.arity if left.arity == right.arity else None
                return _ChainInfo(True, False, arity)
            return _NOT_SHARDABLE
        # GroupBy, Join, Union, Intersect, PartitionPlan and any future node
        # type: no sharding contract — vectorized fallback.
        return _NOT_SHARDABLE

    def _should_shard(self, plan: Plan) -> _ChainInfo | None:
        if self.shards < 2:
            return None
        names = plan.source_names()
        if not names:
            return None
        info = self._analyze(plan)
        if not info.shardable:
            return None
        total_rows = 0
        for name in names:
            dataset = self._environment.get(name)
            if dataset is None:
                return None  # let the fallback raise the canonical error
            total_rows += len(dataset)
        if total_rows < self.min_rows:
            return None
        return info

    def backend_for(self, plan: Plan) -> str:
        """``"sharded"`` when the chain shards, else the fallback's answer."""
        if self._should_shard(plan) is not None:
            return "sharded"
        return self._vectorized.backend_for(plan)

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------
    def evaluate(self, plan: Plan) -> WeightedDataset:
        return self.evaluate_many([plan])[0]

    def evaluate_many(self, plans: Sequence[Plan]) -> list[WeightedDataset]:
        """Shardable plans run sharded; the rest go through the fallback
        as *one* batch so cross-plan sub-plan sharing is preserved."""
        routed: list[tuple[int, Plan, _ChainInfo | None]] = [
            (position, plan, self._should_shard(plan))
            for position, plan in enumerate(plans)
        ]
        results: list[WeightedDataset | None] = [None] * len(plans)
        fallback = [(position, plan) for position, plan, info in routed if info is None]
        if fallback:
            evaluated = self._vectorized.evaluate_many([plan for _, plan in fallback])
            for (position, _), value in zip(fallback, evaluated):
                results[position] = value
        for position, plan, info in routed:
            if info is not None:
                results[position] = self._evaluate_sharded(plan, info)
        return results  # type: ignore[return-value]

    def reset(self) -> None:
        """Drop fallback caches and plan encodings (the pool stays warm)."""
        self._vectorized.reset()
        self._portable = {}

    # ------------------------------------------------------------------
    # Sharded evaluation
    # ------------------------------------------------------------------
    def _partitions(self, plan: Plan) -> dict[str, ShardedColumnarDataset]:
        return {
            name: ShardedColumnarDataset.partition(
                self._vectorized.dataset(name), self.shards
            )
            for name in sorted(plan.source_names())
        }

    def _evaluate_sharded(self, plan: Plan, info: _ChainInfo) -> WeightedDataset:
        partitions = self._partitions(plan)
        if self.inline:
            shard_outputs = self._run_inline(plan, partitions)
        else:
            task_timeout = None
            deadline = current_deadline()
            if deadline is not None:
                task_timeout = deadline.remaining()
                if task_timeout <= 0.0:
                    # The request's deadline is already gone: skip dispatch
                    # and produce the (bit-identical) answer inline — by this
                    # point the budget is charged, so the answer must exist.
                    self._degraded("deadline expired before pool dispatch")
                    return self._vectorized.evaluate(plan)
            if not self.pool_breaker.allow():
                self._degraded("pool circuit open")
                return self._vectorized.evaluate(plan)
            try:
                shard_outputs = self._run_pooled(plan, partitions, task_timeout)
            except UnportablePlanError:
                # Not a pool failure: the plan simply has no sharding
                # contract.  Does not count against the breaker.
                return self._vectorized.evaluate(plan)
            except PoolError as exc:
                # Pool-level failure: degrade to the single-process backend —
                # slower, never wrong — and charge the breaker.
                self.pool_breaker.record_failure()
                self._degraded(f"pool failure: {exc}")
                return self._vectorized.evaluate(plan)
            else:
                self.pool_breaker.record_success()
        merged = concat_merge(shard_outputs) if info.disjoint else sum_merge(shard_outputs)
        return merged.to_weighted()

    def _degraded(self, reason: str) -> None:
        callback = self.on_degrade
        if callback is not None:
            try:
                callback(reason)
            except Exception:  # pragma: no cover - observability must not fail
                pass

    # -- inline mode ----------------------------------------------------
    def _run_inline(
        self, plan: Plan, partitions: dict[str, ShardedColumnarDataset]
    ) -> list[ColumnarDataset]:
        outputs: list[ColumnarDataset] = []
        interner = global_interner()
        for shard_index in range(self.shards):
            shard_interner = ShardInterner(shard_index, borrow=interner)
            environment = {
                name: sharded.shards[shard_index] for name, sharded in partitions.items()
            }
            with use_interner(shard_interner):
                result = VectorizedExecutor(environment).evaluate_columnar([plan])[0]
                columns = [np.array(column) for column in result.columns]
                weights = np.array(result.weights)
                arity = result.arity
                tolerance = result.tolerance
            outputs.append(
                self._reconcile(columns, weights, arity, tolerance,
                                shard_index, shard_interner.take_extensions())
            )
        return outputs

    # -- pool mode ------------------------------------------------------
    def _portable_plan(self, plan: Plan) -> PortablePlan:
        cached = self._portable.get(id(plan))
        if cached is None or cached[0] is not plan:
            cached = (plan, encode_plan(plan))
            self._portable[id(plan)] = cached
        return cached[1]

    def _run_pooled(
        self,
        plan: Plan,
        partitions: dict[str, ShardedColumnarDataset],
        task_timeout: float | None = None,
    ) -> list[ColumnarDataset]:
        pool = self._ensure_pool()
        assert pool is not None
        portable = self._portable_plan(plan)
        interner = global_interner()
        # Snapshot the broadcast horizon before packing: every code inside
        # the shipped columns is below this version by construction.
        version = len(interner)
        atoms = interner._atoms  # noqa: SLF001 - same-package protocol

        segments = []
        tasks = []
        sources = sorted(partitions)
        layouts = [
            (
                name,
                partitions[name].shards[0].arity,
                partitions[name].shards[0].tolerance,
            )
            for name in sources
        ]
        # The packing loop runs *inside* the try: a failure packing shard k
        # must still release shards 0..k-1, or they orphan in /dev/shm.
        try:
            for shard_index in range(self.shards):
                arrays: dict[str, np.ndarray] = {}
                for name in sources:
                    shard = partitions[name].shards[shard_index]
                    for position, column in enumerate(shard.columns):
                        arrays[f"{name}/{position}"] = column
                    arrays[f"{name}/w"] = shard.weights
                segment = pack_arrays(arrays)
                segments.append(segment)

                def prepare(worker, _version=version) -> dict:
                    sent = worker.meta.get("interner_sent", 0)
                    if sent > _version:
                        sent = 0  # stale meta (should not happen) — resend all
                    worker.meta["interner_sent"] = _version
                    return {"delta": list(atoms[sent:_version])}

                tasks.append(
                    PoolTask(
                        run_shard,
                        kwargs={
                            "plan": portable,
                            "layouts": layouts,
                            "descriptor": segment.descriptor,
                            "shard_index": shard_index,
                        },
                        prepare=prepare,
                        timeout=task_timeout,
                    )
                )
            try:
                responses = pool.run_batch(tasks)
            except Exception:
                # The broadcast position is now unknown per worker (a crashed
                # or half-fed incarnation); force a full resend next time.
                # Deltas are deduplicated on the worker, so over-sending is
                # safe.
                for worker in pool.workers:
                    worker.meta.pop("interner_sent", None)
                raise
        finally:
            for segment in segments:
                segment.release()
        outputs = []
        for response in responses:  # shard order == deterministic reconcile
            outputs.append(
                self._reconcile(
                    response["columns"],
                    response["weights"],
                    response["arity"],
                    response["tolerance"],
                    response["worker"],
                    response["extensions"],
                )
            )
        return outputs

    # -- shared reconcile ----------------------------------------------
    def _reconcile(
        self,
        columns: list[np.ndarray],
        weights: np.ndarray,
        arity: int | None,
        tolerance: float,
        worker_index: int,
        extensions: list[Any],
    ) -> ColumnarDataset:
        """Merge a shard's extension atoms and rebuild its output dataset."""
        mapping = merge_extensions(global_interner(), extensions)
        columns = [remap_codes(column, worker_index, mapping) for column in columns]
        return ColumnarDataset(columns, weights, arity, tolerance, assume_unique=True)


# ----------------------------------------------------------------------
# Worker-side entry points (module-level: spawn-picklable by reference)
# ----------------------------------------------------------------------

#: fingerprint -> decoded plan, per worker process; lets a persistent
#: worker rebuild each distinct plan once across requests.
_WORKER_PLANS: dict[str, Plan] = {}


def _shard_worker_init(worker_index: int) -> None:
    """Pool initializer: install this worker's ShardInterner as global."""
    from ..columnar.interning import set_global_interner

    set_global_interner(ShardInterner(worker_index))


def run_shard(
    *,
    plan: PortablePlan,
    layouts: list[tuple[str, int | None, float]],
    descriptor: SegmentDescriptor,
    shard_index: int,
    delta: list[Any] | None = None,
) -> dict:
    """Execute one shard: attach, rebuild, run the chain, return + drain.

    Runs inside a pool worker whose global interner is a
    :class:`ShardInterner` (see :func:`_shard_worker_init`).  The returned
    arrays are copies — never views into the shared segment — so the
    segment unmaps cleanly and the coordinator may unlink it on receipt.
    """
    interner = global_interner()
    if not isinstance(interner, ShardInterner):  # pragma: no cover - misuse guard
        raise RuntimeError("run_shard requires a ShardInterner-initialised worker")
    if delta:
        interner.extend_frozen(delta)

    fingerprint = plan.fingerprint()
    decoded = _WORKER_PLANS.get(fingerprint)
    if decoded is None:
        decoded = decode_plan(plan)
        _WORKER_PLANS[fingerprint] = decoded

    attached = attach_segment(descriptor)
    try:
        environment: dict[str, ColumnarDataset] = {}
        for name, arity, tolerance in layouts:
            width = 1 if arity is None else arity
            columns = tuple(attached.arrays[f"{name}/{position}"] for position in range(width))
            environment[name] = ColumnarDataset(
                columns, attached.arrays[f"{name}/w"], arity, tolerance, assume_unique=True
            )
        result = VectorizedExecutor(environment).evaluate_columnar([decoded])[0]
        response = {
            "worker": interner.worker_index,
            "shard": shard_index,
            "columns": [np.array(column, copy=True) for column in result.columns],
            "weights": np.array(result.weights, copy=True),
            "arity": result.arity,
            "tolerance": result.tolerance,
            "extensions": interner.take_extensions(),
        }
        del result, environment
        return response
    finally:
        attached.close()
