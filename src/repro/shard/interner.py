"""A shardable interner: frozen snapshot + disjoint worker extensions.

The columnar backend's correctness rests on one process-wide
:class:`~repro.columnar.interning.Interner` so codes compose across
datasets.  Worker processes cannot share that table, so sharded execution
splits it in three:

* **Frozen snapshot** — the coordinator's table up to a version (a plain
  length).  It is broadcast to workers incrementally: each request carries
  the delta of atoms interned since the worker last heard, so steady-state
  requests ship only what is new.  Frozen codes are identical in every
  process — any code the coordinator encoded into a shard's columns
  decodes to the same atom in the worker.
* **Worker-local extensions** — atoms a worker's kernels produce that are
  not in its frozen table (group-by results, shave slice tuples…).  They
  are assigned codes in a namespace disjoint from every other worker *and*
  from any future frozen growth: worker ``w``'s ``k``-th extension gets
  ``EXTENSION_OFFSET + w·EXTENSION_STRIDE + k``.  Extension codes never
  collide, so even un-remapped arrays from different workers cannot alias.
* **Deterministic reconciliation** — a response carries the worker's
  extension atoms (in assignment order); the coordinator interns them into
  its own table and rewrites extension codes in the returned arrays via
  :func:`merge_extensions` / :func:`remap_codes`.  Responses are reconciled
  in shard order, not completion order, so the coordinator's table evolves
  identically run to run.  Code *values* never influence weights or noise
  (weights merge positionally, noise draws in canonical record order), so
  reconciliation order is about reproducible internal state, not about
  released values.

Extensions are ephemeral — :meth:`ShardInterner.take_extensions` drains
them after each request — so a worker's persistent state is exactly its
frozen table, and the coordinator tracks one integer (atoms sent) per
worker incarnation.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from ..columnar.interning import Interner

__all__ = [
    "EXTENSION_OFFSET",
    "EXTENSION_STRIDE",
    "ShardInterner",
    "merge_extensions",
    "remap_codes",
]

#: First extension code.  Far above any realistic frozen-table size (2^40
#: atoms would already exhaust memory), so frozen and extension ranges can
#: never meet.
EXTENSION_OFFSET = 1 << 40
#: Namespace width per worker: worker ``w`` owns
#: ``[OFFSET + w·STRIDE, OFFSET + (w+1)·STRIDE)``.
EXTENSION_STRIDE = 1 << 32


class ShardInterner(Interner):
    """An :class:`Interner` over a frozen snapshot plus a private namespace.

    Two construction modes share one lookup path:

    * **worker mode** (``borrow=None``) — owns an initially empty frozen
      table fed by :meth:`extend_frozen` deltas;
    * **inline mode** (``borrow=interner``) — borrows the coordinator's
      live table *read-only* up to ``len(borrow)`` at construction time
      (the version), so single-process sharded execution exercises the
      same namespace/reconciliation machinery without copying the table.
      Codes the borrowed table assigns after construction are ignored
      (version-gated), exactly as a worker would not know them.
    """

    __slots__ = ("worker_index", "_version", "_local_codes", "_local_atoms", "_borrowed")

    def __init__(self, worker_index: int, borrow: Interner | None = None) -> None:
        super().__init__()
        if not 0 <= worker_index < EXTENSION_OFFSET // EXTENSION_STRIDE:
            raise ValueError(f"worker_index {worker_index} out of namespace range")
        self.worker_index = int(worker_index)
        self._borrowed = borrow is not None
        if borrow is not None:
            # Share the dict/list (append-only, so shared reads are safe);
            # the version gate makes the view a stable snapshot.
            self._codes = borrow._codes
            self._atoms = borrow._atoms
            self._version = len(borrow._atoms)
        else:
            self._version = 0
        self._local_codes: dict[Any, int] = {}
        self._local_atoms: list[Any] = []

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Length of the frozen prefix this interner recognises."""
        return self._version

    def _base(self) -> int:
        return EXTENSION_OFFSET + self.worker_index * EXTENSION_STRIDE

    def __len__(self) -> int:
        return self._version + len(self._local_atoms)

    def stats(self) -> dict[str, int]:
        stats = super().stats()
        stats["atoms"] = len(self)
        stats["frozen_atoms"] = self._version
        stats["extension_atoms"] = len(self._local_atoms)
        return stats

    # ------------------------------------------------------------------
    def code(self, atom: Any) -> int:
        code = self._codes.get(atom)
        if code is not None and code < self._version:
            return code
        code = self._local_codes.get(atom)
        if code is None:
            code = self._base() + len(self._local_atoms)
            self._local_atoms.append(atom)
            self._local_codes[atom] = code
        return code

    def codes(self, atoms: Iterable[Any]) -> np.ndarray:
        atoms = list(atoms)
        out = np.empty(len(atoms), dtype=np.int64)
        for index, atom in enumerate(atoms):
            out[index] = self.code(atom)
        return out

    def atom(self, code: int) -> Any:
        if code >= EXTENSION_OFFSET:
            return self._local_atoms[code - self._base()]
        if code >= self._version:
            raise KeyError(f"code {code} is beyond this shard's frozen snapshot")
        return self._atoms[code]

    def atoms(self, codes: Sequence[int] | np.ndarray) -> list[Any]:
        if isinstance(codes, np.ndarray):
            codes = codes.tolist()
        return [self.atom(code) for code in codes]

    # ------------------------------------------------------------------
    def extend_frozen(self, atoms: Sequence[Any]) -> None:
        """Apply a coordinator delta (worker mode only)."""
        if self._borrowed:
            raise ValueError("inline ShardInterner borrows a live table; no deltas")
        for atom in atoms:
            if atom not in self._codes:
                self._codes[atom] = len(self._atoms)
                self._atoms.append(atom)
        self._version = len(self._atoms)

    def take_extensions(self) -> list[Any]:
        """Drain and return this request's extension atoms, in code order."""
        atoms = self._local_atoms
        self._local_atoms = []
        self._local_codes = {}
        return atoms


def merge_extensions(interner: Interner, extension_atoms: Sequence[Any]) -> np.ndarray:
    """Intern a worker's extension atoms; return local-index → global code.

    Deterministic: atoms are interned in the worker's assignment order, so
    for a fixed sequence of reconciliations the coordinator's table is a
    pure function of the workloads, not of scheduling.
    """
    return interner.codes(extension_atoms)


def remap_codes(
    array: np.ndarray, worker_index: int, mapping: np.ndarray
) -> np.ndarray:
    """Rewrite worker ``worker_index``'s extension codes to coordinator codes.

    Frozen codes pass through untouched (they are already global).  Returns
    the input array unchanged (no copy) when it contains no extension codes.
    """
    extension = array >= EXTENSION_OFFSET
    if not extension.any():
        return array
    base = EXTENSION_OFFSET + worker_index * EXTENSION_STRIDE
    out = array.copy()
    out[extension] = mapping[array[extension] - base]
    return out
