"""Shared-memory column buffers with zero-copy NumPy views.

A shard request ships its source arrays (code columns + the weight vector)
to a worker process through one :class:`multiprocessing.shared_memory
.SharedMemory` segment instead of pickling the data: the coordinator packs
the arrays back to back into a segment, sends only a small picklable
*descriptor* (segment name + per-array dtype/shape/offset manifest), and the
worker maps zero-copy ``ndarray`` views over the same physical pages.

Lifecycle is refcounted on the owner side.  The coordinator acquires the
segment once per outstanding request and releases it when the response (or
the worker's crash) arrives; the last release closes *and unlinks* the
segment, so a completed batch leaves nothing behind in ``/dev/shm`` — which
the crash-robustness test asserts.  Workers never unlink: they attach,
read, drop their views and close.

CPython 3.11/3.12 caveat: attaching registers the segment with the
``resource_tracker`` as if the attacher owned it (3.13 adds
``SharedMemory(track=False)`` to opt out).  For *pool workers* this is
benign by construction: spawn/fork children inherit the coordinator's
tracker process, whose cache is a name set — the worker's attach-time
registration deduplicates against the owner's create-time one, and the
owner's ``unlink()`` removes the single entry.  Explicitly unregistering
on attach would instead *double-remove* the shared entry (one noisy
tracker KeyError per attach), so :func:`attach_segment` deliberately
leaves the registration alone.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from ..resilience.faults import inject

__all__ = ["SegmentDescriptor", "SharedSegment", "AttachedSegment", "pack_arrays", "attach_segment"]

#: Alignment of each array inside a segment; keeps float64/int64 views on
#: natural boundaries regardless of the preceding array's byte length.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SegmentDescriptor:
    """The picklable half of a shared segment: its name and array manifest."""

    __slots__ = ("name", "manifest")

    def __init__(self, name: str, manifest: tuple[tuple[str, str, tuple[int, ...], int], ...]) -> None:
        self.name = name
        #: ``(key, dtype.str, shape, byte offset)`` per packed array.
        self.manifest = manifest

    def __getstate__(self):
        return (self.name, self.manifest)

    def __setstate__(self, state):
        self.name, self.manifest = state

    def __repr__(self) -> str:
        return f"SegmentDescriptor({self.name!r}, arrays={len(self.manifest)})"


class SharedSegment:
    """Owner-side handle: refcounted, unlinked when the last reference drops."""

    __slots__ = ("descriptor", "_shm", "_refs")

    def __init__(self, shm: shared_memory.SharedMemory, descriptor: SegmentDescriptor) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._refs = 1

    def acquire(self) -> "SharedSegment":
        if self._shm is None:
            raise ValueError("segment already released")
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last one closes and unlinks the segment.

        Releasing an already-released segment is a no-op (``_shm`` is cleared
        before the unlink), so the crash path — which releases once for the
        dead worker's outstanding reference — cannot double-release even if
        the same failure is observed twice.
        """
        if self._shm is None:
            return
        self._refs -= 1
        if self._refs <= 0:
            shm, self._shm = self._shm, None
            # The unlink is the fault window: a coordinator dying here leaves
            # an orphan in /dev/shm, which the chaos harness checks for.
            inject("shm.unlink")
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    @property
    def live(self) -> bool:
        return self._shm is not None

    def __del__(self):  # pragma: no cover - GC safety net only
        try:
            if self._shm is not None:
                self._refs = 1
                self.release()
        except Exception:
            pass


def pack_arrays(arrays: Mapping[str, np.ndarray]) -> SharedSegment:
    """Copy ``arrays`` into one fresh shared-memory segment.

    Returns an owner handle whose :attr:`~SharedSegment.descriptor` is what
    crosses the process boundary.  Arrays are laid out back to back,
    64-byte aligned, in mapping order.
    """
    manifest: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    prepared: list[tuple[str, np.ndarray, int]] = []
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        manifest.append((key, array.dtype.str, tuple(array.shape), offset))
        prepared.append((key, array, offset))
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for _, array, start in prepared:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=start)
        view[...] = array
        del view
    return SharedSegment(shm, SegmentDescriptor(shm.name, tuple(manifest)))


class AttachedSegment:
    """Worker-side attachment: zero-copy views plus an explicit close.

    ``close()`` drops the views and closes the local mapping; it never
    unlinks.  If NumPy views created from :attr:`arrays` are still alive
    elsewhere, the underlying ``mmap`` cannot close — ``close()`` then
    leaves the mapping open (it is reclaimed when the process exits) rather
    than raising into the worker loop.
    """

    __slots__ = ("_shm", "arrays")

    def __init__(self, shm: shared_memory.SharedMemory, arrays: dict[str, np.ndarray]) -> None:
        self._shm = shm
        self.arrays = arrays

    def close(self) -> bool:
        """Release the local mapping; True if it actually closed."""
        if self._shm is None:
            return True
        self.arrays = {}
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:
            # A view escaped (e.g. an output column aliasing the input);
            # the mapping stays open for the life of the process.
            self._shm = shm
            return False
        return True


def attach_segment(descriptor: SegmentDescriptor) -> AttachedSegment:
    """Map an existing segment and return zero-copy views per the manifest."""
    inject("shm.attach")
    shm = shared_memory.SharedMemory(name=descriptor.name)
    # The attach-time resource_tracker registration is left in place on
    # purpose — see the module docstring for the shared-tracker argument.
    arrays = {
        key: np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        for key, dtype, shape, offset in descriptor.manifest
    }
    return AttachedSegment(shm, arrays)
