"""Key-range partitioning of columnar data and cross-shard merge kernels.

**Partitioning.**  :meth:`ShardedColumnarDataset.partition` splits a
:class:`~repro.columnar.dataset.ColumnarDataset` into contiguous row
ranges.  Rows of a consolidated dataset are in lexicographic code order, so
contiguous ranges *are* key ranges over the leading column — the classic
hash/range partition of a sorted table — and the shards are disjoint by
construction (each record's entire weight lives in exactly one shard).

**Merging.**  Two merge kernels with different exactness contracts:

* :func:`concat_merge` — plain shard-order concatenation for
  *record-disjoint* shard outputs.  Each output record came wholly from
  one shard, so no weight arithmetic happens at the merge and the result
  is bit-identical to the unsharded kernel — including row order, because
  shard-order concatenation of range-partitioned inputs reproduces the
  flat kernel's input traversal order exactly.
* :func:`sum_merge` — group-by/bincount accumulation for *overlapping*
  shard outputs (a non-injective Select can map rows of different shards
  onto one record).  Per-record weights are the sum of per-shard partial
  sums; the flat kernel sums the same contributions in one sequence.
  Regrouping a float sum can change the result by an ulp, so this merge
  is bit-exact precisely when every partial sum is exactly representable
  — integers and dyadic rationals, which covers wPINQ's protected data
  model (unit-weight records, halving SelectMany rescalings, power-of-two
  DownScale factors) — and within rounding error (≤ a few ulp) otherwise.
  A second caveat inherited from consolidation: per-shard results drop
  sub-tolerance dust *before* the cross-shard sum, so weights within
  ``tolerance`` of zero may differ from the flat kernel's
  drop-after-summing.  Exact-weight workloads are unaffected (their dust
  is exactly zero on both paths).

Which operators may run under which merge is the shardability analysis in
:mod:`repro.shard.executor`; these kernels only implement the merges.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..columnar.dataset import ColumnarDataset, consolidate

__all__ = ["ShardedColumnarDataset", "partition_ranges", "concat_merge", "sum_merge"]


def partition_ranges(rows: int, shards: int) -> list[tuple[int, int]]:
    """Split ``rows`` into ``shards`` contiguous, near-equal ranges.

    Deterministic and independent of the data: range ``i`` gets
    ``rows // shards`` rows plus one of the remainder, in order.  Empty
    ranges are allowed (more shards than rows) so shard count stays stable.
    """
    if shards < 1:
        raise ValueError("shards must be a positive integer")
    base, remainder = divmod(rows, shards)
    ranges = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


class ShardedColumnarDataset:
    """A columnar dataset split into contiguous key-range shards."""

    __slots__ = ("shards", "source")

    def __init__(
        self, shards: Sequence[ColumnarDataset], source: ColumnarDataset | None = None
    ) -> None:
        self.shards = tuple(shards)
        if not self.shards:
            raise ValueError("at least one shard is required")
        #: The unsharded original, kept for fallback paths (optional).
        self.source = source

    @classmethod
    def partition(
        cls, dataset: ColumnarDataset, shards: int
    ) -> "ShardedColumnarDataset":
        """Range-partition ``dataset`` into ``shards`` slices (zero-copy)."""
        ranges = partition_ranges(len(dataset), shards)
        parts = []
        for start, stop in ranges:
            parts.append(
                ColumnarDataset(
                    tuple(column[start:stop] for column in dataset.columns),
                    dataset.weights[start:stop],
                    dataset.arity,
                    dataset.tolerance,
                    assume_unique=True,
                )
            )
        return cls(parts, source=dataset)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def total_weight(self) -> float:
        return sum(shard.total_weight() for shard in self.shards)

    def merge(self, disjoint: bool) -> ColumnarDataset:
        """Reassemble: :func:`concat_merge` or :func:`sum_merge` by contract."""
        return concat_merge(self.shards) if disjoint else sum_merge(self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedColumnarDataset(shards={self.shard_count}, rows={len(self)})"
        )


def _live_shards(shards: Sequence[ColumnarDataset]) -> list[ColumnarDataset]:
    """Drop empty shard outputs (they carry no rows but may carry a
    degenerate layout — an empty ``from_pairs`` result is opaque even when
    the flat kernel's non-empty output is decomposed).  Order is preserved,
    so concat merges stay order-identical."""
    live = [shard for shard in shards if not shard.is_empty()]
    return live if live else [shards[0]]


def _common_layout(shards: Sequence[ColumnarDataset]) -> tuple[int | None, float]:
    arities = {shard.arity for shard in shards}
    if len(arities) != 1:
        # Mixed layouts (one shard produced tuples, another scalars, or an
        # empty shard defaulted differently): unify on whole-record codes.
        return None, shards[0].tolerance
    return arities.pop(), shards[0].tolerance


def _stacked(
    shards: Sequence[ColumnarDataset], arity: int | None
) -> tuple[list[np.ndarray], np.ndarray]:
    if arity is None:
        columns = [np.concatenate([shard.record_codes() for shard in shards])]
    else:
        columns = [
            np.concatenate([shard.columns[index] for shard in shards])
            for index in range(arity)
        ]
    weights = np.concatenate([shard.weights for shard in shards])
    return columns, weights


def concat_merge(shards: Iterable[ColumnarDataset]) -> ColumnarDataset:
    """Merge record-disjoint shard outputs by shard-order concatenation.

    No weight arithmetic, no re-sort: bit-identical to the flat kernel in
    both values and row order (see the module docstring for why the caller
    must guarantee disjointness).
    """
    shards = _live_shards(list(shards))
    arity, tolerance = _common_layout(shards)
    columns, weights = _stacked(shards, arity)
    return ColumnarDataset(columns, weights, arity, tolerance, assume_unique=True)


def sum_merge(shards: Iterable[ColumnarDataset]) -> ColumnarDataset:
    """Merge overlapping shard outputs by summing per-record partial weights.

    Shard-order concatenation followed by one consolidation pass: equal rows
    group via lexsort and their weights accumulate via ``np.bincount`` —
    the same primitive the flat kernels consolidate with, so row order
    (lexicographic) and grouping semantics match the unsharded result.
    """
    shards = _live_shards(list(shards))
    arity, tolerance = _common_layout(shards)
    columns, weights = _stacked(shards, arity)
    columns, weights = consolidate(columns, weights, tolerance)
    return ColumnarDataset(columns, weights, arity, tolerance, assume_unique=True)
