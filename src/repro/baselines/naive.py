"""Worst-case-sensitivity triangle counting and the Figure 1 example.

The paper's introduction motivates weighted datasets with triangle counting:
under edge differential privacy a single new edge can create ``|V| − 2``
triangles, so the classic Laplace mechanism must add noise of that scale to
the total count *regardless of the actual graph*.  Weighting each triangle by
``1/max(d_a, d_b, d_c)`` caps the influence of any one edge at a constant, so
unit-scale noise suffices — a big win on bounded-degree graphs (Figure 1,
right) and no loss on the worst case (Figure 1, left).

This module implements both mechanisms plus generators for the two Figure 1
graphs so the benchmark can reproduce the comparison.
"""

from __future__ import annotations

from ..core.laplace import LaplaceNoise, validate_epsilon
from ..exceptions import GraphError
from ..graph.graph import Graph
from ..graph.statistics import iter_triangles, triangle_count

__all__ = [
    "worst_case_triangle_count",
    "weighted_triangle_count",
    "weighted_triangle_signal",
    "figure1_worst_case_graph",
    "figure1_best_case_graph",
]


def worst_case_triangle_count(
    graph: Graph,
    epsilon: float,
    noise: LaplaceNoise | None = None,
) -> float:
    """Triangle count with worst-case-sensitivity Laplace noise.

    The global sensitivity of the triangle count under edge DP is ``|V| − 2``
    (one edge can close a triangle with every remaining vertex), so the
    released value is ``Δ + Laplace((|V| − 2)/ε)``.
    """
    epsilon = validate_epsilon(epsilon)
    noise = noise if noise is not None else LaplaceNoise()
    sensitivity = max(graph.number_of_nodes() - 2, 1)
    return triangle_count(graph) + sensitivity * float(
        noise.rng.laplace(loc=0.0, scale=1.0 / epsilon)
    )


def weighted_triangle_signal(graph: Graph) -> float:
    """``Σ_Δ 1/max(d_a, d_b, d_c)`` — the weighted triangle total of Section 1.1."""
    degrees = graph.degrees()
    total = 0.0
    for a, b, c in iter_triangles(graph):
        total += 1.0 / max(degrees[a], degrees[b], degrees[c])
    return total


def weighted_triangle_count(
    graph: Graph,
    epsilon: float,
    noise: LaplaceNoise | None = None,
) -> tuple[float, float]:
    """The weighted-dataset alternative: unit noise on the weighted total.

    Returns ``(released_weighted_total, implied_triangle_estimate)``.  The
    estimate rescales the released total by the graph's maximum degree, which
    is exact on regular graphs (like Figure 1's right-hand graph) and an
    under-estimate otherwise; the point of the comparison is the *noise*
    magnitude, which is constant here versus ``Θ(|V|)`` for the worst-case
    mechanism.
    """
    epsilon = validate_epsilon(epsilon)
    noise = noise if noise is not None else LaplaceNoise()
    released = weighted_triangle_signal(graph) + float(
        noise.rng.laplace(loc=0.0, scale=1.0 / epsilon)
    )
    max_degree = max(graph.max_degree(), 1)
    return released, released * max_degree


def figure1_worst_case_graph(nodes: int) -> Graph:
    """Figure 1 (left): vertices 1 and 2 joined to everyone but not each other.

    The graph has no triangles, yet adding the single edge (1, 2) creates
    ``|V| − 2`` of them — the worst case for triangle-count sensitivity.
    """
    if nodes < 4:
        raise GraphError("the worst-case graph needs at least four nodes")
    graph = Graph()
    for other in range(3, nodes + 1):
        graph.add_edge(1, other)
        graph.add_edge(2, other)
    return graph


def figure1_best_case_graph(nodes: int) -> Graph:
    """Figure 1 (right): a ring of triangles with constant degree.

    Every vertex has degree at most 4 and the graph contains one triangle per
    three consecutive ring vertices, so the weighted mechanism measures it
    with constant noise while the worst-case mechanism still pays Θ(|V|).
    """
    if nodes < 3:
        raise GraphError("the best-case graph needs at least three nodes")
    graph = Graph()
    ring = list(range(1, nodes + 1))
    count = len(ring)
    for index, node in enumerate(ring):
        graph.add_edge(node, ring[(index + 1) % count])
    # Close every other pair-of-steps into a triangle without raising degrees
    # beyond four.
    for index in range(0, count - 2, 2):
        graph.add_edge(ring[index], ring[index + 2])
    return graph
