"""Smooth-sensitivity triangle counting (Nissim, Raskhodnikova, Smith 2007).

The paper's introduction (Section 1.1) contrasts weighted datasets with the
smooth sensitivity framework: smooth sensitivity calibrates noise to the
*instance* rather than the worst case, which helps on benign graphs, but it is
still a single global scale — if the worst-case structure appears anywhere in
the graph (the paper's example is the union of Figure 1's left and right
graphs) the whole measurement pays for it, whereas weighted datasets suppress
only the offending records.

This module implements the smooth-sensitivity mechanism for the total triangle
count so the ablation benchmark can reproduce that comparison:

* the local sensitivity of the triangle count is the maximum number of common
  neighbours over all vertex pairs (adding or removing the edge ``(i, j)``
  changes the count by exactly ``|N(i) ∩ N(j)|``);
* the local sensitivity at distance ``s`` is upper-bounded by
  ``min(LS(G) + s, n − 2)`` because one edge modification raises any pair's
  common-neighbour count by at most one;
* the β-smooth sensitivity is ``max_s e^{−βs} · A(s)``, computed here from the
  upper bound above (an upper bound on smooth sensitivity is itself a valid —
  merely conservative — noise scale);
* noise is drawn from the Laplace distribution with scale ``2·S/ε`` where
  ``β = ε / (2·ln(2/δ))``, the standard ``(ε, δ)``-DP instantiation (Laplace
  noise is ``(ε/2, β)``-admissible).  Pure-ε variants exist with heavier-tailed
  (Cauchy-like) noise; the comparison of noise *scales* is what the ablation
  needs, and the Laplace variant keeps it apples-to-apples with the other
  mechanisms.
"""

from __future__ import annotations

import math

from ..core.laplace import LaplaceNoise, validate_epsilon
from ..exceptions import GraphError
from ..graph.graph import Graph
from ..graph.statistics import triangle_count

__all__ = [
    "max_common_neighbors",
    "local_sensitivity_triangles",
    "smooth_sensitivity_triangles",
    "smooth_sensitivity_triangle_count",
    "figure1_union_graph",
]


def max_common_neighbors(graph: Graph) -> int:
    """The largest number of common neighbours over all vertex pairs.

    Computed by charging each wedge ``i – v – j`` to the pair ``(i, j)``, which
    costs ``Σ_v d_v²`` work — the same quantity that governs the paper's own
    scalability analysis, and comfortably fast at benchmark scale.
    """
    best = 0
    counts: dict[tuple, int] = {}
    for v in graph.nodes():
        neighbors = sorted(graph.neighbors(v), key=repr)
        for index, i in enumerate(neighbors):
            for j in neighbors[index + 1 :]:
                pair = (i, j)
                counts[pair] = counts.get(pair, 0) + 1
                if counts[pair] > best:
                    best = counts[pair]
    return best


def local_sensitivity_triangles(graph: Graph) -> int:
    """Local sensitivity of the triangle count at ``graph``.

    Adding or removing edge ``(i, j)`` changes the triangle count by the
    number of common neighbours of ``i`` and ``j``, so the local sensitivity
    is the maximum of that quantity over all pairs.
    """
    return max_common_neighbors(graph)


def smooth_sensitivity_triangles(graph: Graph, beta: float) -> float:
    """β-smooth upper bound on the sensitivity of the triangle count.

    Uses ``A(s) ≤ min(LS(G) + s, n − 2)`` and maximises ``e^{−βs}·A(s)`` over
    ``s``.  Because the bound grows by at most one per step while the
    exponential decays geometrically, the maximum is attained at or before the
    point where the bound saturates at ``n − 2``; we simply scan that range.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    nodes = graph.number_of_nodes()
    ceiling = max(nodes - 2, 1)
    local = local_sensitivity_triangles(graph)
    best = float(min(local, ceiling))
    for distance in range(1, ceiling - min(local, ceiling) + 2):
        bound = min(local + distance, ceiling)
        value = math.exp(-beta * distance) * bound
        if value > best:
            best = value
    return best


def smooth_sensitivity_triangle_count(
    graph: Graph,
    epsilon: float,
    delta: float = 1e-6,
    noise: LaplaceNoise | None = None,
) -> tuple[float, float]:
    """Release the triangle count with smooth-sensitivity-calibrated noise.

    Returns ``(released_count, noise_scale)`` where the released value is the
    true count plus Laplace noise of the returned scale; the pair lets the
    ablation report the scale alongside the realised error.  Satisfies
    ``(ε, δ)``-differential privacy under edge-level neighbouring.
    """
    epsilon = validate_epsilon(epsilon)
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie strictly between 0 and 1")
    noise = noise if noise is not None else LaplaceNoise()
    beta = epsilon / (2.0 * math.log(2.0 / delta))
    smooth = smooth_sensitivity_triangles(graph, beta)
    scale = 2.0 * smooth / epsilon
    released = triangle_count(graph) + scale * float(
        noise.rng.laplace(loc=0.0, scale=1.0)
    )
    return released, scale


def figure1_union_graph(nodes: int) -> Graph:
    """The paper's Section 1.1 example: left and right Figure 1 graphs side by side.

    The two halves share no vertices, so the union has the right half's
    triangles but the left half's (worst-case) sensitivity structure — smooth
    sensitivity must still add Θ(|V|) noise, while the weighted mechanism
    suppresses only the left half's (triangle-free) contribution.
    """
    from .naive import figure1_best_case_graph, figure1_worst_case_graph

    if nodes < 8:
        raise GraphError("the union graph needs at least eight nodes")
    half = nodes // 2
    union = Graph()
    left = figure1_worst_case_graph(half)
    right = figure1_best_case_graph(nodes - half)
    for a, b in left.edges():
        union.add_edge(("L", a), ("L", b))
    for a, b in right.edges():
        union.add_edge(("R", a), ("R", b))
    return union
