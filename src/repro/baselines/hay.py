"""Hay et al. (ICDM'09): differentially private degree distributions.

The baseline the paper's Section 3.1 reproduces (and improves on): add Laplace
noise to the sorted degree sequence and post-process with isotonic regression.
Under edge-level differential privacy, adding or removing one edge changes two
entries of the sorted degree sequence by one each, so the L1 sensitivity is 2
and per-entry noise of scale ``2/ε`` suffices.

The approach requires the number of nodes to be public — the limitation wPINQ
removes — so the graph (rather than a measurement of it) supplies the sequence
length here.
"""

from __future__ import annotations

from ..core.laplace import LaplaceNoise, validate_epsilon
from ..graph.graph import Graph
from ..graph.statistics import degree_sequence
from ..postprocess.isotonic import isotonic_regression

__all__ = [
    "noisy_degree_sequence",
    "hay_degree_sequence",
    "degree_sequence_error",
]

#: L1 sensitivity of the sorted degree sequence under edge differential privacy.
DEGREE_SEQUENCE_SENSITIVITY = 2.0


def noisy_degree_sequence(
    graph: Graph,
    epsilon: float,
    noise: LaplaceNoise | None = None,
) -> list[float]:
    """The raw Hay et al. release: degree sequence + ``Laplace(2/ε)`` noise."""
    epsilon = validate_epsilon(epsilon)
    noise = noise if noise is not None else LaplaceNoise()
    exact = degree_sequence(graph)
    perturbation = noise.sample_many(epsilon / DEGREE_SEQUENCE_SENSITIVITY, len(exact))
    return [value + float(noisy) for value, noisy in zip(exact, perturbation)]


def hay_degree_sequence(
    graph: Graph,
    epsilon: float,
    noise: LaplaceNoise | None = None,
) -> list[float]:
    """The full baseline: noisy release followed by isotonic regression.

    The returned sequence is non-increasing (the ordering constraint removes
    most of the noise at the low-degree tail) but is *not* clipped or rounded,
    matching the original presentation.
    """
    released = noisy_degree_sequence(graph, epsilon, noise=noise)
    return isotonic_regression(released, increasing=False)


def degree_sequence_error(estimate: list[float], graph: Graph) -> float:
    """Mean absolute error of an estimated degree sequence against the truth.

    Sequences of different lengths are compared entry-by-entry with missing
    entries treated as zero, so truncating too early (or hallucinating extra
    nodes) is penalised.
    """
    truth = degree_sequence(graph)
    length = max(len(truth), len(estimate))
    if length == 0:
        return 0.0
    total = 0.0
    for index in range(length):
        true_value = truth[index] if index < len(truth) else 0.0
        estimated = estimate[index] if index < len(estimate) else 0.0
        total += abs(true_value - float(estimated))
    return total / length
