"""Sala et al. (IMC'11): bespoke noise for the joint degree distribution.

For every degree pair ``(d_i, d_j)`` the number of edges with those endpoint
degrees is released with ``Laplace(4·max(d_i, d_j)/ε)`` noise (the claim the
paper re-proves in its Appendix C).  The original work only released pairs
that actually occur in the graph, which leaks which pairs are empty; the
corrected variant releases noisy values for *every* pair in the degree domain
``D × D``, at a cost in accuracy.  Both variants are implemented so the
benchmark can compare them against the automatic wPINQ JDD query of
Section 3.2.
"""

from __future__ import annotations

from ..core.laplace import LaplaceNoise, validate_epsilon
from ..graph.graph import Graph
from ..graph.statistics import joint_degree_distribution

__all__ = [
    "sala_jdd_noise_scale",
    "sala_joint_degree_distribution",
    "jdd_error",
]


def sala_jdd_noise_scale(degree_a: int, degree_b: int, epsilon: float) -> float:
    """The per-pair Laplace scale ``4·max(d_a, d_b)/ε`` of Sala et al."""
    epsilon = validate_epsilon(epsilon)
    return 4.0 * max(degree_a, degree_b) / epsilon


def sala_joint_degree_distribution(
    graph: Graph,
    epsilon: float,
    release_empty_pairs: bool = True,
    noise: LaplaceNoise | None = None,
) -> dict[tuple[int, int], float]:
    """Release the JDD with Sala et al.'s non-uniform noise.

    Parameters
    ----------
    release_empty_pairs:
        True (default) applies the privacy fix discussed in Section 3.2:
        every pair of degrees in the observed degree domain receives a noisy
        value, even pairs with no edges.  False reproduces the original
        behaviour of releasing only occupied pairs (more accurate, but not
        actually ε-differentially private).
    """
    epsilon = validate_epsilon(epsilon)
    noise = noise if noise is not None else LaplaceNoise()
    exact = joint_degree_distribution(graph)
    released: dict[tuple[int, int], float] = {}
    if release_empty_pairs:
        degrees = sorted(set(graph.degrees().values()))
        pairs = [
            (small, large)
            for index, small in enumerate(degrees)
            for large in degrees[index:]
        ]
    else:
        pairs = list(exact)
    for pair in pairs:
        scale = sala_jdd_noise_scale(pair[0], pair[1], epsilon)
        value = exact.get(pair, 0) + scale * float(noise.rng.laplace(loc=0.0, scale=1.0))
        released[pair] = value
    return released


def jdd_error(estimate: dict[tuple[int, int], float], graph: Graph) -> float:
    """Mean absolute error over the occupied cells of the true JDD."""
    exact = joint_degree_distribution(graph)
    if not exact:
        return 0.0
    total = 0.0
    for pair, count in exact.items():
        total += abs(count - float(estimate.get(pair, 0.0)))
    return total / len(exact)
