"""Bespoke prior approaches the paper compares against."""

from .hay import (
    DEGREE_SEQUENCE_SENSITIVITY,
    degree_sequence_error,
    hay_degree_sequence,
    noisy_degree_sequence,
)
from .naive import (
    figure1_best_case_graph,
    figure1_worst_case_graph,
    weighted_triangle_count,
    weighted_triangle_signal,
    worst_case_triangle_count,
)
from .sala import jdd_error, sala_jdd_noise_scale, sala_joint_degree_distribution
from .smooth import (
    figure1_union_graph,
    local_sensitivity_triangles,
    max_common_neighbors,
    smooth_sensitivity_triangle_count,
    smooth_sensitivity_triangles,
)

__all__ = [
    "DEGREE_SEQUENCE_SENSITIVITY",
    "noisy_degree_sequence",
    "hay_degree_sequence",
    "degree_sequence_error",
    "sala_jdd_noise_scale",
    "sala_joint_degree_distribution",
    "jdd_error",
    "worst_case_triangle_count",
    "weighted_triangle_count",
    "weighted_triangle_signal",
    "figure1_worst_case_graph",
    "figure1_best_case_graph",
    "figure1_union_graph",
    "max_common_neighbors",
    "local_sensitivity_triangles",
    "smooth_sensitivity_triangles",
    "smooth_sensitivity_triangle_count",
]
