"""Weight deltas: the currency of the incremental dataflow engine.

A *delta* is simply a mapping ``record -> change in weight``.  Pushing the
delta ``{x: +1.0}`` into a source corresponds to adding a unit-weight record
``x``; ``{x: -1.0}`` removes it.  The incremental operators in
:mod:`repro.dataflow.operators` consume input deltas and emit output deltas so
that, after any sequence of pushes, every operator's accumulated output equals
what the eager evaluator would produce on the accumulated input — the
correspondence the engine's tests verify exhaustively.

Deltas are plain ``dict`` objects; this module only provides the small set of
helpers the operators share (accumulation, negation, pruning of floating-point
dust and conversion from datasets).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..core.dataset import DEFAULT_TOLERANCE, WeightedDataset

__all__ = [
    "Delta",
    "delta_from_dataset",
    "accumulate",
    "negate",
    "prune",
    "apply_delta",
]

#: Type alias used throughout the dataflow package.
Delta = dict


def delta_from_dataset(dataset: WeightedDataset) -> Delta:
    """View a dataset as a delta from the empty dataset."""
    return dataset.to_dict()


def accumulate(target: Delta, updates: Mapping[Any, float] | Iterable[tuple[Any, float]]) -> Delta:
    """Add ``updates`` into ``target`` in place and return it."""
    items = updates.items() if isinstance(updates, Mapping) else updates
    for record, weight in items:
        target[record] = target.get(record, 0.0) + weight
    return target


def negate(delta: Mapping[Any, float]) -> Delta:
    """Return the delta with every weight change negated."""
    return {record: -weight for record, weight in delta.items()}


def prune(delta: Delta, tolerance: float = DEFAULT_TOLERANCE) -> Delta:
    """Drop entries whose magnitude is below ``tolerance`` (in place)."""
    stale = [record for record, weight in delta.items() if abs(weight) <= tolerance]
    for record in stale:
        del delta[record]
    return delta


def apply_delta(
    weights: dict, delta: Mapping[Any, float], tolerance: float = DEFAULT_TOLERANCE
) -> dict:
    """Apply a delta to a ``record -> weight`` dict in place and return it.

    Records whose resulting weight is within ``tolerance`` of zero are removed
    so state does not accumulate dead entries over long MCMC runs.
    """
    for record, change in delta.items():
        updated = weights.get(record, 0.0) + change
        if abs(updated) <= tolerance:
            weights.pop(record, None)
        else:
            weights[record] = updated
    return weights
