"""Incremental (view-maintenance style) evaluation of wPINQ queries.

This package implements the engine described in Section 4.3 of the paper: a
data-parallel dataflow graph whose operators respond to small input deltas by
recomputing only the affected parts of their output.  It is what makes the
Metropolis–Hastings loop in :mod:`repro.inference` fast enough to take many
thousands of steps: each proposed edge swap is a four-to-eight record delta,
not a full re-execution of the query.
"""

from .delta import Delta, accumulate, apply_delta, delta_from_dataset, negate, prune
from .engine import DataflowEngine
from .nodes import Node, OutputCollector, SourceNode
from .operators import (
    ConcatNode,
    ExceptNode,
    GroupByNode,
    IntersectNode,
    JoinNode,
    SelectManyNode,
    SelectNode,
    ShaveNode,
    UnionNode,
    WhereNode,
)

__all__ = [
    "DataflowEngine",
    "Delta",
    "accumulate",
    "apply_delta",
    "delta_from_dataset",
    "negate",
    "prune",
    "Node",
    "SourceNode",
    "OutputCollector",
    "SelectNode",
    "WhereNode",
    "SelectManyNode",
    "ShaveNode",
    "GroupByNode",
    "JoinNode",
    "UnionNode",
    "IntersectNode",
    "ConcatNode",
    "ExceptNode",
]
