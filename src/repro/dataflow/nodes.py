"""Base classes for incremental dataflow nodes.

The incremental engine (Section 4.3 of the paper) represents a wPINQ query as
a directed acyclic dataflow graph.  Each vertex is an operator node; each edge
carries weight *deltas* from a producer to one input *port* of a consumer.
When a small change is applied to a source (e.g. an MCMC edge swap), the
change propagates through the graph and only the affected portions of each
operator's output are recomputed — the data-parallel structure of every wPINQ
transformation is what makes this cheap.

Nodes follow a simple push protocol:

* ``node.on_delta(delta, port)`` is called by an upstream producer;
* the node updates its internal state (if any) and computes the delta of its
  *output* collection;
* the output delta is forwarded to every subscribed ``(consumer, port)`` pair
  via :meth:`Node.emit`.

Correctness does not depend on delivery order: a node with two inputs fed by
the same upstream producer (a self-join) simply processes two successive
correct incremental updates, and downstream consumers sum the emitted deltas.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..core.dataset import DEFAULT_TOLERANCE, WeightedDataset
from .delta import Delta, apply_delta, prune

__all__ = ["Node", "SourceNode", "OutputCollector"]


class Node:
    """A vertex of the incremental dataflow graph."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self._consumers: list[tuple["Node", int]] = []

    # ------------------------------------------------------------------
    def subscribe(self, consumer: "Node", port: int = 0) -> None:
        """Register ``consumer`` to receive this node's output deltas."""
        self._consumers.append((consumer, port))

    def emit(self, delta: Delta) -> None:
        """Forward an output delta to every subscribed consumer."""
        prune(delta)
        if not delta:
            return
        for consumer, port in self._consumers:
            # Each consumer gets its own copy: consumers may mutate deltas
            # while folding them into their state.
            consumer.on_delta(dict(delta), port)

    # ------------------------------------------------------------------
    def on_delta(self, delta: Delta, port: int = 0) -> None:
        """Process an input delta arriving on ``port`` (subclasses override)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SourceNode(Node):
    """Entry point of the graph; one per protected/synthetic source.

    The engine pushes deltas into sources; the node keeps the accumulated
    dataset (useful for debugging and for re-synchronisation checks) and
    forwards the delta unchanged.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.weights: dict[Any, float] = {}

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        apply_delta(self.weights, delta)
        self.emit(delta)

    def current(self) -> WeightedDataset:
        """The accumulated source dataset."""
        return WeightedDataset(self.weights)


class OutputCollector(Node):
    """Terminal node accumulating the current output of a query plan.

    Besides keeping the materialised output, collectors notify registered
    listeners of every delta they absorb.  The MCMC scorer uses a listener to
    maintain ``‖Q(A) − m‖₁`` incrementally instead of rescanning the whole
    output after each proposal.
    """

    def __init__(self, name: str = "output", tolerance: float = DEFAULT_TOLERANCE) -> None:
        super().__init__(name)
        self.weights: dict[Any, float] = {}
        self._tolerance = tolerance
        self._listeners: list[Callable[[Mapping[Any, float], Mapping[Any, float]], None]] = []

    def add_listener(
        self, listener: Callable[[Mapping[Any, float], Mapping[Any, float]], None]
    ) -> None:
        """Register ``listener(old_weights_for_changed_records, delta)``.

        The first argument maps every record touched by the delta to its
        weight *before* the delta was applied, so listeners can compute
        old-vs-new differences without storing their own copy of the output.
        """
        self._listeners.append(listener)

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        old = {record: self.weights.get(record, 0.0) for record in delta}
        apply_delta(self.weights, delta, tolerance=self._tolerance)
        for listener in self._listeners:
            listener(old, delta)

    def current(self) -> WeightedDataset:
        """The accumulated query output as a dataset."""
        return WeightedDataset(self.weights)

    def weight(self, record: Any) -> float:
        """Current output weight of ``record``."""
        return self.weights.get(record, 0.0)
