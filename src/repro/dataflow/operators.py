"""Incremental implementations of every wPINQ transformation.

Each class mirrors one stable transformation from
:mod:`repro.core.transformations` and maintains whatever indexed state it
needs to answer the question "how does my output change when my input changes
by this delta?" without recomputing from scratch (Appendix B of the paper).

Linear operators (Select, Where, SelectMany, Concat, Except) are stateless
pipelines: an input weight change of ``δ`` on record ``x`` simply produces the
correspondingly scaled output changes.  Non-linear operators (Shave, GroupBy,
Join, Union, Intersect) keep their inputs indexed — by record or by join/group
key — and recompute only the affected parts, emitting the difference between
the part's old and new output.  Because every wPINQ transformation is
data-parallel over those parts, this is exactly the "only recompute what
changed" strategy the paper describes.

All mapper/key/reducer functions are assumed to be pure (deterministic,
side-effect free); the same assumption underlies the eager evaluator and the
privacy proofs.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..core import transformations as xf
from ..core.dataset import WeightedDataset
from .delta import Delta, accumulate, apply_delta
from .nodes import Node

__all__ = [
    "SelectNode",
    "WhereNode",
    "SelectManyNode",
    "ShaveNode",
    "GroupByNode",
    "JoinNode",
    "UnionNode",
    "IntersectNode",
    "ConcatNode",
    "ExceptNode",
    "DistinctNode",
    "DownScaleNode",
]


# ----------------------------------------------------------------------
# Stateless / linear operators
# ----------------------------------------------------------------------
class SelectNode(Node):
    """Incremental ``Select``: linear, so deltas map straight through."""

    def __init__(self, mapper: Callable[[Any], Any], name: str = "select") -> None:
        super().__init__(name)
        self._mapper = mapper

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        output: Delta = {}
        for record, change in delta.items():
            accumulate(output, [(self._mapper(record), change)])
        self.emit(output)


class WhereNode(Node):
    """Incremental ``Where``: drop delta entries failing the predicate."""

    def __init__(self, predicate: Callable[[Any], bool], name: str = "where") -> None:
        super().__init__(name)
        self._predicate = predicate

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        output = {
            record: change for record, change in delta.items() if self._predicate(record)
        }
        self.emit(output)


class SelectManyNode(Node):
    """Incremental ``SelectMany``.

    The transformation is linear in the input weight — record ``x`` with
    weight ``A(x)`` contributes ``A(x) · f(x)/max(1, ‖f(x)‖)`` — so a weight
    change of ``δ`` contributes ``δ`` times the same normalised collection.
    The normalised collections are memoised per record because the mapper may
    be arbitrarily expensive and MCMC revisits the same records repeatedly.
    """

    def __init__(self, mapper: Callable[[Any], Any], name: str = "select_many") -> None:
        super().__init__(name)
        self._mapper = mapper
        self._normalized: dict[Any, list[tuple[Any, float]]] = {}

    def _normalized_output(self, record: Any) -> list[tuple[Any, float]]:
        if record not in self._normalized:
            produced = xf.normalize_weighted_output(self._mapper(record))
            norm = sum(abs(weight) for _, weight in produced)
            scale = 1.0 / max(1.0, norm)
            self._normalized[record] = [
                (out_record, weight * scale) for out_record, weight in produced
            ]
        return self._normalized[record]

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        output: Delta = {}
        for record, change in delta.items():
            for out_record, unit_weight in self._normalized_output(record):
                accumulate(output, [(out_record, unit_weight * change)])
        self.emit(output)


class DownScaleNode(Node):
    """Incremental ``DownScale``: linear, so deltas are scaled straight through."""

    def __init__(self, factor: float, name: str = "down_scale") -> None:
        super().__init__(name)
        self._factor = float(factor)

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        self.emit({record: change * self._factor for record, change in delta.items()})


class DistinctNode(Node):
    """Incremental ``Distinct``: re-cap only the records whose weight changed."""

    def __init__(self, cap: float = 1.0, name: str = "distinct") -> None:
        super().__init__(name)
        self._cap = float(cap)
        self._weights: dict[Any, float] = {}

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        output: Delta = {}
        for record, change in delta.items():
            before = min(self._weights.get(record, 0.0), self._cap)
            apply_delta(self._weights, {record: change})
            after = min(self._weights.get(record, 0.0), self._cap)
            if after != before:
                accumulate(output, [(record, after - before)])
        self.emit(output)


class ConcatNode(Node):
    """Incremental ``Concat``: deltas from either port pass straight through."""

    def __init__(self, name: str = "concat") -> None:
        super().__init__(name)

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        self.emit(dict(delta))


class ExceptNode(Node):
    """Incremental ``Except``: port 1 deltas pass through negated."""

    def __init__(self, name: str = "except") -> None:
        super().__init__(name)

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        if port == 0:
            self.emit(dict(delta))
        else:
            self.emit({record: -change for record, change in delta.items()})


# ----------------------------------------------------------------------
# Stateful per-record operators
# ----------------------------------------------------------------------
class ShaveNode(Node):
    """Incremental ``Shave``: re-slice only the records whose weight changed."""

    def __init__(self, slice_weights: Any = 1.0, name: str = "shave") -> None:
        super().__init__(name)
        self._slice_weights = slice_weights
        self._weights: dict[Any, float] = {}

    def _slices(self, record: Any) -> dict[Any, float]:
        weight = self._weights.get(record, 0.0)
        if weight <= 0.0:
            return {}
        single = WeightedDataset({record: weight})
        return xf.shave(single, self._slice_weights).to_dict()

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        output: Delta = {}
        for record, change in delta.items():
            before = self._slices(record)
            apply_delta(self._weights, {record: change})
            after = self._slices(record)
            for out_record, weight in after.items():
                accumulate(output, [(out_record, weight - before.pop(out_record, 0.0))])
            for out_record, weight in before.items():
                accumulate(output, [(out_record, -weight)])
        self.emit(output)


class UnionNode(Node):
    """Incremental ``Union`` (element-wise max over two inputs)."""

    combiner = staticmethod(max)

    def __init__(self, name: str = "union") -> None:
        super().__init__(name)
        self._weights: tuple[dict[Any, float], dict[Any, float]] = ({}, {})

    def _combined(self, record: Any) -> float:
        left = self._weights[0].get(record, 0.0)
        right = self._weights[1].get(record, 0.0)
        return self.combiner(left, right)

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        if port not in (0, 1):
            raise ValueError(f"binary operator has ports 0 and 1, got {port}")
        output: Delta = {}
        for record, change in delta.items():
            before = self._combined(record)
            apply_delta(self._weights[port], {record: change})
            after = self._combined(record)
            if after != before:
                accumulate(output, [(record, after - before)])
        self.emit(output)


class IntersectNode(UnionNode):
    """Incremental ``Intersect`` (element-wise min over two inputs)."""

    combiner = staticmethod(min)

    def __init__(self, name: str = "intersect") -> None:
        super().__init__(name)


# ----------------------------------------------------------------------
# Stateful keyed operators
# ----------------------------------------------------------------------
class GroupByNode(Node):
    """Incremental ``GroupBy``: recompute only the groups whose key changed."""

    def __init__(
        self,
        key: Callable[[Any], Any],
        reducer: Callable[[Sequence[Any]], Any] = tuple,
        name: str = "group_by",
    ) -> None:
        super().__init__(name)
        self._key = key
        self._reducer = reducer
        self._groups: dict[Any, dict[Any, float]] = {}

    def _group_output(self, key: Any) -> dict[Any, float]:
        part = self._groups.get(key)
        if not part:
            return {}
        output: dict[Any, float] = {}
        for members, weight in xf.group_prefixes(WeightedDataset(part)):
            out_record = (key, self._reducer(list(members)))
            output[out_record] = output.get(out_record, 0.0) + weight
        return output

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        by_key: dict[Any, Delta] = {}
        for record, change in delta.items():
            by_key.setdefault(self._key(record), {})[record] = change
        output: Delta = {}
        for key, key_delta in by_key.items():
            before = self._group_output(key)
            part = self._groups.setdefault(key, {})
            apply_delta(part, key_delta)
            if not part:
                self._groups.pop(key, None)
            after = self._group_output(key)
            for out_record, weight in after.items():
                accumulate(output, [(out_record, weight - before.pop(out_record, 0.0))])
            for out_record, weight in before.items():
                accumulate(output, [(out_record, -weight)])
        self.emit(output)


class JoinNode(Node):
    """Incremental wPINQ ``Join``.

    Both inputs are kept indexed by join key.  When a delta arrives on either
    port, only the affected keys are re-joined.  Two regimes (Appendix B):

    * If the per-key normaliser ``‖A_k‖ + ‖B_k‖`` is unchanged by the delta —
      the common case under the MCMC edge-swap walk, where edges move between
      keys without changing any degree — the emitted difference is simply the
      cross product of the *changed* records against the other side, scaled by
      the unchanged normaliser: ``(a ⋈ B_k) / n``.
    * Otherwise the node recomputes the affected key's full contribution
      before and after folding in the delta and emits the difference, which
      correctly rescales every output record of that key.
    """

    #: Relative tolerance used to decide that a key's normaliser is unchanged.
    _NORM_TOLERANCE = 1e-9

    def __init__(
        self,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result_selector: Callable[[Any, Any], Any] = lambda a, b: (a, b),
        name: str = "join",
    ) -> None:
        super().__init__(name)
        self._keys = (left_key, right_key)
        self._result_selector = result_selector
        self._indexes: tuple[dict[Any, dict[Any, float]], dict[Any, dict[Any, float]]] = (
            {},
            {},
        )

    def _key_norm(self, key: Any) -> float:
        total = 0.0
        for index in self._indexes:
            part = index.get(key)
            if part:
                total += sum(abs(weight) for weight in part.values())
        return total

    def _key_output(self, key: Any) -> dict[Any, float]:
        left_part = self._indexes[0].get(key)
        right_part = self._indexes[1].get(key)
        if not left_part or not right_part:
            return {}
        denominator = self._key_norm(key)
        if denominator <= 0.0:
            return {}
        output: dict[Any, float] = {}
        for left_record, left_weight in left_part.items():
            for right_record, right_weight in right_part.items():
                weight = left_weight * right_weight / denominator
                if weight == 0.0:
                    continue
                out_record = self._result_selector(left_record, right_record)
                output[out_record] = output.get(out_record, 0.0) + weight
        return output

    def _cross_with_other_side(
        self, key: Any, key_delta: Delta, port: int, denominator: float
    ) -> dict[Any, float]:
        """The contribution of changed records against the other (fixed) side."""
        other = self._indexes[1 - port].get(key)
        output: dict[Any, float] = {}
        if not other or denominator <= 0.0:
            return output
        for record, change in key_delta.items():
            for other_record, other_weight in other.items():
                weight = change * other_weight / denominator
                if weight == 0.0:
                    continue
                if port == 0:
                    out_record = self._result_selector(record, other_record)
                else:
                    out_record = self._result_selector(other_record, record)
                output[out_record] = output.get(out_record, 0.0) + weight
        return output

    def on_delta(self, delta: Delta, port: int = 0) -> None:
        if port not in (0, 1):
            raise ValueError(f"binary operator has ports 0 and 1, got {port}")
        key_func = self._keys[port]
        index = self._indexes[port]
        by_key: dict[Any, Delta] = {}
        for record, change in delta.items():
            by_key.setdefault(key_func(record), {})[record] = change
        output: Delta = {}
        for key, key_delta in by_key.items():
            net_change = sum(key_delta.values())
            old_part = index.get(key, {})
            norm_preserved = (
                abs(net_change) <= self._NORM_TOLERANCE
                and all(old_part.get(record, 0.0) + change >= 0.0 for record, change in key_delta.items())
                and all(weight >= 0.0 for weight in old_part.values())
            )
            if norm_preserved:
                # Fast path: ‖A_k‖ + ‖B_k‖ is unchanged, so existing output
                # records keep their scale and only the changed records'
                # pairings need to be emitted.
                denominator = self._key_norm(key)
                part = index.setdefault(key, {})
                apply_delta(part, key_delta)
                if not part:
                    index.pop(key, None)
                for out_record, weight in self._cross_with_other_side(
                    key, key_delta, port, denominator
                ).items():
                    accumulate(output, [(out_record, weight)])
                continue
            before = self._key_output(key)
            part = index.setdefault(key, {})
            apply_delta(part, key_delta)
            if not part:
                index.pop(key, None)
            after = self._key_output(key)
            for out_record, weight in after.items():
                accumulate(output, [(out_record, weight - before.pop(out_record, 0.0))])
            for out_record, weight in before.items():
                accumulate(output, [(out_record, -weight)])
        self.emit(output)
