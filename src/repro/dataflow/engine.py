"""Compiling logical plans into an incremental dataflow graph.

The :class:`DataflowEngine` takes one or more :class:`~repro.core.plan.Plan`
DAGs (typically the plans behind the measurements an analyst released), builds
the corresponding graph of incremental operator nodes, and exposes a small
imperative API:

* :meth:`DataflowEngine.initialize` — load the initial (synthetic) datasets;
* :meth:`DataflowEngine.push` — apply a delta to a source and propagate it;
* :meth:`DataflowEngine.output` — read the currently materialised output of
  any registered plan.

Shared sub-plans compile to shared nodes, so a self-join such as
``temp.join(temp, ...)`` is represented once and fed through both ports, and
the state kept by Join/GroupBy/Shave nodes is never duplicated.  This is the
engine that gives Metropolis–Hastings its per-step cost proportional to the
amount of *changed* intermediate data rather than the total query size
(Section 4.3).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..core.dataset import WeightedDataset
from ..core.partition import PartitionPlan
from ..core.plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
)
from ..exceptions import DataflowError
from .delta import Delta, prune
from .nodes import Node, OutputCollector, SourceNode
from .operators import (
    ConcatNode,
    DistinctNode,
    DownScaleNode,
    ExceptNode,
    GroupByNode,
    IntersectNode,
    JoinNode,
    SelectManyNode,
    SelectNode,
    ShaveNode,
    UnionNode,
    WhereNode,
)

__all__ = ["DataflowEngine"]


class DataflowEngine:
    """Incremental evaluator for a set of wPINQ query plans."""

    def __init__(self) -> None:
        self._sources: dict[str, SourceNode] = {}
        self._nodes: dict[int, Node] = {}
        self._collectors: dict[int, OutputCollector] = {}
        self._all_nodes: list[Node] = []
        self._initialized = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_plans(cls, plans: Iterable[Plan]) -> "DataflowEngine":
        """Build an engine with a collector registered for every plan."""
        engine = cls()
        for plan in plans:
            engine.add_plan(plan)
        return engine

    def add_plan(self, plan: Plan) -> OutputCollector:
        """Register ``plan`` and return the collector holding its output.

        Plans must be added before :meth:`initialize` so that the initial data
        load reaches every operator.
        """
        if self._initialized:
            raise DataflowError("cannot add plans after the engine has been initialized")
        if id(plan) in self._collectors:
            return self._collectors[id(plan)]
        node = self._compile(plan)
        collector = OutputCollector(name=f"collector:{type(plan).__name__}")
        node.subscribe(collector, 0)
        self._collectors[id(plan)] = collector
        self._all_nodes.append(collector)
        return collector

    def _register(self, plan: Plan, node: Node) -> Node:
        self._nodes[id(plan)] = node
        self._all_nodes.append(node)
        return node

    def _compile(self, plan: Plan) -> Node:
        """Recursively compile a plan into nodes, sharing repeated sub-plans."""
        existing = self._nodes.get(id(plan))
        if existing is not None:
            return existing

        if isinstance(plan, SourcePlan):
            source = self._sources.get(plan.name)
            if source is None:
                source = SourceNode(plan.name)
                self._sources[plan.name] = source
                self._all_nodes.append(source)
            self._nodes[id(plan)] = source
            return source

        if isinstance(plan, SelectPlan):
            node = self._register(plan, SelectNode(plan.mapper))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, WherePlan):
            node = self._register(plan, WhereNode(plan.predicate))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, PartitionPlan):
            # A partition part is exactly a Where restriction to one key value.
            node = self._register(plan, WhereNode(plan.part_predicate, name="partition"))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, DistinctPlan):
            node = self._register(plan, DistinctNode(plan.cap))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, DownScalePlan):
            node = self._register(plan, DownScaleNode(plan.factor))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, SelectManyPlan):
            node = self._register(plan, SelectManyNode(plan.mapper))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, GroupByPlan):
            node = self._register(plan, GroupByNode(plan.key, plan.reducer))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, ShavePlan):
            node = self._register(plan, ShaveNode(plan.slice_weights))
            self._compile(plan.child).subscribe(node, 0)
            return node
        if isinstance(plan, JoinPlan):
            node = self._register(
                plan, JoinNode(plan.left_key, plan.right_key, plan.result_selector)
            )
            self._compile(plan.left).subscribe(node, 0)
            self._compile(plan.right).subscribe(node, 1)
            return node
        if isinstance(plan, UnionPlan):
            node = self._register(plan, UnionNode())
        elif isinstance(plan, IntersectPlan):
            node = self._register(plan, IntersectNode())
        elif isinstance(plan, ConcatPlan):
            node = self._register(plan, ConcatNode())
        elif isinstance(plan, ExceptPlan):
            node = self._register(plan, ExceptNode())
        else:
            raise DataflowError(f"cannot compile plan node of type {type(plan).__name__}")
        self._compile(plan.left).subscribe(node, 0)
        self._compile(plan.right).subscribe(node, 1)
        return node

    # ------------------------------------------------------------------
    # Data loading and updates
    # ------------------------------------------------------------------
    def source_names(self) -> set[str]:
        """Names of all sources referenced by the registered plans."""
        return set(self._sources)

    def initialize(
        self, environment: Mapping[str, WeightedDataset | Mapping[Any, float]]
    ) -> None:
        """Load initial datasets by pushing them as deltas from empty.

        Sources that the plans reference but ``environment`` omits start out
        empty; extra entries in ``environment`` are ignored.
        """
        if self._initialized:
            raise DataflowError("engine is already initialized")
        self._initialized = True
        for name, source in self._sources.items():
            data = environment.get(name)
            if data is None:
                continue
            if isinstance(data, WeightedDataset):
                delta = data.to_dict()
            else:
                delta = dict(data)
            prune(delta)
            if delta:
                source.on_delta(delta, 0)

    def push(self, source_name: str, delta: Delta) -> None:
        """Apply ``delta`` to a source and propagate it through the graph."""
        if not self._initialized:
            raise DataflowError("initialize() must be called before push()")
        source = self._sources.get(source_name)
        if source is None:
            raise DataflowError(f"no source named {source_name!r} in this engine")
        delta = dict(delta)
        prune(delta)
        if delta:
            source.on_delta(delta, 0)

    # ------------------------------------------------------------------
    # Reading outputs
    # ------------------------------------------------------------------
    def collector(self, plan: Plan) -> OutputCollector:
        """The collector registered for ``plan`` (by identity)."""
        try:
            return self._collectors[id(plan)]
        except KeyError as exc:
            raise DataflowError("plan was not registered with add_plan") from exc

    def output(self, plan: Plan) -> WeightedDataset:
        """Currently materialised output of ``plan``."""
        return self.collector(plan).current()

    def source_dataset(self, source_name: str) -> WeightedDataset:
        """Currently accumulated contents of a source."""
        source = self._sources.get(source_name)
        if source is None:
            raise DataflowError(f"no source named {source_name!r} in this engine")
        return source.current()

    # ------------------------------------------------------------------
    # Introspection (used by the scalability experiment, Figure 6)
    # ------------------------------------------------------------------
    def state_entry_count(self) -> int:
        """Total number of weighted entries held by all operator state.

        This is a platform-independent proxy for the memory footprint the
        paper reports: it grows with the size of intermediate results such as
        the length-two path index of the triangle queries (≈ Σ_v d_v²).
        """
        total = 0
        for node in self._all_nodes:
            total += _node_state_entries(node)
        return total

    def node_count(self) -> int:
        """Number of operator nodes in the compiled graph."""
        return len(self._all_nodes)


def _node_state_entries(node: Node) -> int:
    """Count the weighted entries stored by one node's private state."""
    total = 0
    for attribute in vars(node).values():
        total += _count_entries(attribute)
    return total


def _count_entries(value: Any) -> int:
    if isinstance(value, dict):
        total = 0
        for nested in value.values():
            if isinstance(nested, dict):
                total += len(nested)
            elif isinstance(nested, (int, float)):
                total += 1
            else:
                total += _count_entries(nested)
        return total
    if isinstance(value, tuple):
        return sum(_count_entries(item) for item in value)
    return 0
