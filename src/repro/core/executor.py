"""The unified execution backend behind the query API.

Every way a wPINQ plan gets evaluated — an analyst's ``noisy_count``, a
batched ``PrivacySession.measure`` call, or the MCMC loop's repeated
re-evaluation over synthetic data — goes through an :class:`Executor`.  Two
conforming backends are provided:

:class:`EagerExecutor`
    The reference evaluator, refactored out of ``Plan.evaluate``.  It walks
    the plan DAG once per batch, memoising results by plan-node *identity* so
    a sub-plan shared by several measurements (``length_two_paths``, the
    symmetric edge set, a degree table) is evaluated exactly once no matter
    how many roots reference it.

:class:`DataflowExecutor`
    The incremental engine (:mod:`repro.dataflow`) wrapped behind the same
    interface.  Plans are compiled into one long-lived dataflow graph that is
    kept warm across measurements: evaluating a batch whose plans are already
    compiled costs only the collector reads, and shared sub-plans compile to
    shared operator nodes with shared state (Section 4.3 of the paper).

Two further backends live in :mod:`repro.columnar` and are resolved lazily by
:func:`create_executor`:

``"vectorized"`` (:class:`~repro.columnar.executor.VectorizedExecutor`)
    Columnar evaluation — records dictionary-encoded into NumPy code arrays,
    every stable transformation executed as a vectorized kernel.

``"auto"`` (:class:`~repro.columnar.executor.AutoExecutor`)
    Routes each plan to eager or vectorized execution by the support size of
    the protected sources it references.

Executors only *evaluate*; privacy accounting stays in
:mod:`repro.core.budget` / :mod:`repro.core.measurement` and noise in
:mod:`repro.core.aggregation`, so neither backend can weaken the privacy
semantics — they must merely agree on ``Q(A)``, which the test suite checks
property-style for every operator.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, Sequence, runtime_checkable

from ..exceptions import PlanError
from .dataset import WeightedDataset
from .plan import Plan

__all__ = ["Executor", "EagerExecutor", "DataflowExecutor", "create_executor"]


@runtime_checkable
class Executor(Protocol):
    """What the measurement layer requires of an execution backend."""

    def evaluate(self, plan: Plan) -> WeightedDataset:
        """Evaluate a single plan against the protected environment."""
        ...

    def evaluate_many(self, plans: Sequence[Plan]) -> list[WeightedDataset]:
        """Evaluate a batch of plans, evaluating shared sub-plans once."""
        ...

    def reset(self) -> None:
        """Drop any cached state (memo tables, compiled graphs)."""
        ...


class EagerExecutor:
    """Eager plan evaluation with shared-sub-plan memoisation.

    Parameters
    ----------
    environment:
        Mapping of source names to :class:`WeightedDataset` values.  A live
        mapping (such as a session's dataset registry) may be passed; it is
        read at evaluation time.
    memo:
        Optional pre-seeded memo table (``id(plan) -> dataset``), used by the
        ``Plan.evaluate`` compatibility wrapper.
    warm:
        When True the memo table survives across :meth:`evaluate_many` calls,
        so repeated measurements of the same plan objects are free.  This is
        sound because protected datasets are immutable once registered, but it
        retains every intermediate result, so it is opt-in.
    """

    def __init__(
        self,
        environment: Mapping[str, WeightedDataset],
        memo: dict[int, WeightedDataset] | None = None,
        warm: bool = False,
    ) -> None:
        self._environment = environment
        self._warm = warm
        self._memo: dict[int, WeightedDataset] = memo if memo is not None else {}
        # Strong references to every memoised plan: ids are only unique among
        # *live* objects, so the memo pins its keys' plans to keep ids stable.
        self._pinned: dict[int, Plan] = {}
        self._last_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def warm(self) -> bool:
        """Whether results are retained across batches."""
        return self._warm

    def backend_for(self, plan: Plan) -> str:
        """Every plan handed to this executor evaluates eagerly."""
        return "eager"

    def dataset(self, name: str) -> WeightedDataset:
        """Resolve a source name against the environment (used by SourcePlan)."""
        try:
            dataset = self._environment[name]
        except KeyError as exc:
            raise PlanError(f"no dataset bound for source {name!r}") from exc
        if not isinstance(dataset, WeightedDataset):
            raise PlanError(
                f"source {name!r} must be bound to a WeightedDataset, "
                f"got {type(dataset).__name__}"
            )
        return dataset

    # ------------------------------------------------------------------
    def _compute(self, plan: Plan) -> WeightedDataset:
        """Produce one node's value; the hook subclasses override.

        The base implementation runs the node's own eager rule; the columnar
        :class:`~repro.columnar.executor.VectorizedExecutor` reuses all of
        this class's memoisation/pinning machinery and swaps only this hook
        (and the value type) out.
        """
        return plan._evaluate(self)

    def recurse(self, plan: Plan) -> WeightedDataset:
        """Evaluate ``plan`` within the current batch's memo scope.

        This is the entry point plan nodes call for their children; use
        :meth:`evaluate` / :meth:`evaluate_many` from application code so the
        memo table is scoped (or kept warm) correctly.
        """
        key = id(plan)
        if key not in self._memo:
            self._pinned[key] = plan
            self._last_counts[key] = self._last_counts.get(key, 0) + 1
            self._memo[key] = self._compute(plan)
        return self._memo[key]

    def evaluate(self, plan: Plan) -> WeightedDataset:
        """Evaluate a single plan (a one-element batch)."""
        return self.evaluate_many([plan])[0]

    def evaluate_many(self, plans: Sequence[Plan]) -> list[WeightedDataset]:
        """Evaluate a batch of plans; shared sub-plans are evaluated once."""
        self._last_counts = {}
        try:
            return [self.recurse(plan) for plan in plans]
        finally:
            # A cold executor must not keep intermediate datasets alive past
            # the batch; only the (tiny) per-batch statistics survive.
            if not self._warm:
                self._memo = {}
                self._pinned = {}

    def reset(self) -> None:
        """Drop all memoised results."""
        self._memo = {}
        self._pinned = {}
        self._last_counts = {}

    # ------------------------------------------------------------------
    def evaluation_count(self, plan: Plan) -> int:
        """How many times ``plan`` was *computed* by the last batch.

        A plan shared by several roots reports 1; a plan served from a warm
        cache reports 0.  Used by tests and benchmarks to verify the
        shared-sub-plan guarantee.
        """
        return self._last_counts.get(id(plan), 0)


class DataflowExecutor:
    """Incremental execution backend: compiled plans stay warm.

    The first batch compiles every plan into one
    :class:`~repro.dataflow.engine.DataflowEngine` and streams the protected
    datasets through it; later batches over already-registered plans read the
    materialised collectors without touching the data again — the intended
    use: a working set of plans measured repeatedly over a long-lived
    session, or the MCMC synthesiser pushing deltas through one compiled
    graph (obtained directly via :meth:`compile`).

    A batch containing *unknown* plans cannot extend the running graph (new
    operators would have missed the already-streamed data), so the engine is
    rebuilt from exactly that batch's plans.  The warm set is therefore
    always the last compiled batch: re-measuring it is free, while a stream
    of distinct one-off queries degrades to roughly eager cost — each rebuild
    compiles and streams only the plans actually being measured, never an
    unbounded history.
    """

    def __init__(self, environment: Mapping[str, WeightedDataset]) -> None:
        self._environment = environment
        self._engine = None
        # id -> plan of the last compiled batch; doubles as the pin that
        # keeps ids stable, like EagerExecutor's memo.
        self._plans: dict[int, Plan] = {}

    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The current compiled engine (None before the first evaluation)."""
        return self._engine

    def backend_for(self, plan: Plan) -> str:
        """Every plan handed to this executor runs on the dataflow engine."""
        return "dataflow"

    def compile(self, plans: Iterable[Plan]):
        """Ensure every plan is compiled and loaded; return the live engine."""
        from ..dataflow.engine import DataflowEngine

        plans = list(plans)
        if self._engine is None or any(id(plan) not in self._plans for plan in plans):
            self._plans = {id(plan): plan for plan in plans}
            engine = DataflowEngine.from_plans(plans)
            engine.initialize(
                {name: data for name, data in self._environment.items()}
            )
            self._engine = engine
        return self._engine

    # ------------------------------------------------------------------
    def evaluate(self, plan: Plan) -> WeightedDataset:
        """Evaluate a single plan (a one-element batch)."""
        return self.evaluate_many([plan])[0]

    def evaluate_many(self, plans: Sequence[Plan]) -> list[WeightedDataset]:
        """Evaluate a batch of plans through the warm incremental graph."""
        engine = self.compile(plans)
        return [engine.output(plan) for plan in plans]

    def reset(self) -> None:
        """Forget every compiled plan and drop the engine."""
        self._engine = None
        self._plans = {}


def create_executor(
    spec,
    environment: Mapping[str, WeightedDataset],
) -> Executor:
    """Resolve an executor specification to a backend bound to ``environment``.

    ``spec`` may be one of the names ``"eager"`` (fresh memo per batch),
    ``"eager-warm"`` (memo kept across batches), ``"dataflow"`` (warm
    incremental engine), ``"vectorized"`` (the columnar NumPy-kernel
    backend), ``"auto"`` (eager for tiny inputs, vectorized for large
    ones) and ``"sharded"`` (process-parallel sharded execution with a
    vectorized fallback), or a *factory* — a callable taking the environment mapping and
    returning an :class:`Executor`.  A pre-built executor instance is
    rejected: it would be bound to some other environment and silently
    measure the wrong data (the session's dataset registry only exists once
    the session does).
    """
    if isinstance(spec, str):
        if spec == "eager":
            return EagerExecutor(environment)
        if spec == "eager-warm":
            return EagerExecutor(environment, warm=True)
        if spec == "dataflow":
            return DataflowExecutor(environment)
        if spec == "vectorized":
            from ..columnar.executor import VectorizedExecutor

            return VectorizedExecutor(environment)
        if spec == "auto":
            from ..columnar.executor import AutoExecutor

            return AutoExecutor(environment)
        if spec == "sharded":
            from ..shard.executor import ShardedExecutor

            return ShardedExecutor(environment)
        raise PlanError(
            f"unknown executor {spec!r}; expected 'eager', 'eager-warm', "
            f"'dataflow', 'vectorized', 'auto', 'sharded', or a factory "
            f"callable taking the environment"
        )
    # Classes count as factories (EagerExecutor itself is "a callable taking
    # the environment"); runtime_checkable isinstance is hasattr-based, so an
    # executor *class* would otherwise be mistaken for an instance here.
    if not isinstance(spec, type) and isinstance(spec, Executor):
        raise PlanError(
            "pass an executor factory (a callable taking the session's "
            "environment mapping), not a pre-built Executor instance — an "
            "instance cannot be bound to the session's datasets"
        )
    if callable(spec):
        executor = spec(environment)
        if not isinstance(executor, Executor):
            raise PlanError(
                f"executor factory returned {type(executor).__name__}, "
                f"which does not implement the Executor protocol"
            )
        return executor
    raise PlanError(f"cannot use {type(spec).__name__} as an executor")
