"""Laplace noise primitives.

wPINQ's only primitive aggregation, ``NoisyCount``, perturbs the weight of
every requested record with an independent draw from the Laplace distribution
with scale ``1/ε`` (mean zero, variance ``2/ε²``).  Unlike classic worst-case
sensitivity frameworks the *scale never grows with the query*: the stable
transformations have already scaled troublesome records down so that unit
noise suffices.

The module also exposes the density/log-density of the distribution, which the
probabilistic-inference machinery (Section 4.1) uses to score candidate
synthetic datasets against released measurements.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..exceptions import InvalidEpsilonError

__all__ = [
    "validate_epsilon",
    "LaplaceNoise",
    "laplace_log_density",
    "laplace_density",
]


def validate_epsilon(epsilon: float) -> float:
    """Validate a privacy parameter and return it as a float.

    Raises
    ------
    InvalidEpsilonError
        If ``epsilon`` is not a positive finite number.
    """
    try:
        value = float(epsilon)
    except (TypeError, ValueError) as exc:
        raise InvalidEpsilonError(f"epsilon must be a number, got {epsilon!r}") from exc
    if not math.isfinite(value) or value <= 0:
        raise InvalidEpsilonError(f"epsilon must be positive and finite, got {value!r}")
    return value


class LaplaceNoise:
    """A seedable source of Laplace noise.

    Parameters
    ----------
    rng:
        A :class:`numpy.random.Generator`, an integer seed, or ``None`` for
        non-deterministic seeding.  Benchmarks and tests pass explicit seeds
        so that runs are reproducible.
    """

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        if isinstance(rng, np.random.Generator):
            self._rng = rng
        else:
            self._rng = np.random.default_rng(rng)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying numpy generator (shared, advances on every draw)."""
        return self._rng

    def sample(self, epsilon: float) -> float:
        """Draw one value from ``Laplace(1/ε)``."""
        scale = 1.0 / validate_epsilon(epsilon)
        return float(self._rng.laplace(loc=0.0, scale=scale))

    def sample_many(self, epsilon: float, count: int) -> np.ndarray:
        """Draw ``count`` independent values from ``Laplace(1/ε)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        scale = 1.0 / validate_epsilon(epsilon)
        return self._rng.laplace(loc=0.0, scale=scale, size=count)

    def perturb(self, values: Iterable[float], epsilon: float) -> list[float]:
        """Add independent ``Laplace(1/ε)`` noise to each value."""
        values = [float(v) for v in values]
        noise = self.sample_many(epsilon, len(values))
        return [value + float(n) for value, n in zip(values, noise)]

    def spawn(self) -> "LaplaceNoise":
        """Return an independent noise source split off from this one.

        Splitting (rather than sharing) generators keeps measurement noise
        reproducible even when other components draw random numbers in
        between.
        """
        seed = int(self._rng.integers(0, 2**63 - 1))
        return LaplaceNoise(np.random.default_rng(seed))


def laplace_log_density(deviation: float, epsilon: float) -> float:
    """Log-density of ``Laplace(1/ε)`` at ``deviation`` from its mean.

    ``log p(d) = log(ε/2) − ε·|d|``.  Only the ``−ε·|d|`` term matters for
    MCMC acceptance ratios (the normaliser cancels), but the full value is
    returned so the function doubles as a true log-pdf.
    """
    epsilon = validate_epsilon(epsilon)
    return math.log(epsilon / 2.0) - epsilon * abs(float(deviation))


def laplace_density(deviation: float, epsilon: float) -> float:
    """Density of ``Laplace(1/ε)`` at ``deviation`` from its mean."""
    return math.exp(laplace_log_density(deviation, epsilon))
