"""Partitioning a query into disjoint parts with parallel composition.

PINQ's ``Partition`` operator is the standard way to ask many questions about
disjoint slices of a protected dataset at the price of one: because the parts
are disjoint restrictions of the same (transformed) dataset, the L1 distance
between neighbouring datasets decomposes additively across parts,

    Σ_k ‖Q_k(A) − Q_k(A')‖  ≤  ‖Q(A) − Q(A')‖  ≤  k · ‖A − A'‖ ,

so measuring *every* part with parameter ``ε`` costs the protected sources the
same ``k·ε`` a single measurement of the whole query would (``k`` being the
source multiplicity of Section 2.3).  wPINQ generalises PINQ, and the argument
above only uses stability and the decomposition of ``‖·‖`` over disjoint
supports, so the operator carries over to weighted datasets unchanged.

The accounting rule implemented here is the PINQ one: for each protected
source, a partition group charges the running **maximum** over its parts of
the ε accumulated on that part (times the parent query's source multiplicity),
rather than the sum.  Parts may be transformed further and measured repeatedly
and at different ε; every measurement only pays for the amount by which it
raises the group's maximum.

Two conservative simplifications keep the accounting simple and sound:

* parts of *other* partition groups appearing inside a part's plan are treated
  as ordinary transformations (they are charged at their full multiplicity
  rather than enjoying their own max-accounting), and
* the group's parent multiplicities are taken from the parent plan as built;
  re-joining a part with the raw protected source is charged separately, as a
  direct use.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator

from ..exceptions import PlanError
from .laplace import validate_epsilon
from .plan import Plan, SourcePlan

__all__ = ["Partition", "PartitionPlan", "PartitionGroup"]


class PartitionPlan(Plan):
    """Restriction of a parent plan to the records of one partition key.

    Semantically identical to ``Where(parent, key(x) == part_key)``; the
    dedicated node type exists so measurement-time accounting can recognise
    which partition group (and which part) a use of the parent flows through.
    """

    def __init__(
        self,
        child: Plan,
        key: Callable[[Any], Any],
        part_key: Any,
        group: "PartitionGroup",
    ) -> None:
        if not isinstance(child, Plan):
            raise PlanError(f"expected a Plan child, got {type(child).__name__}")
        self.child = child
        self.children = (child,)
        self.key = key
        self.part_key = part_key
        self.group = group

    @property
    def part_predicate(self) -> Callable[[Any], bool]:
        """Predicate selecting exactly this part's records."""
        key = self.key
        part_key = self.part_key
        return lambda record: key(record) == part_key

    def _evaluate(self, executor):
        from . import transformations as xf

        return xf.where(executor.recurse(self.child), self.part_predicate)

    def _label(self) -> str:
        return f"Partition(part={self.part_key!r})"


class PartitionGroup:
    """Budget bookkeeping shared by all parts of one ``partition`` call.

    For every part the group tracks the cumulative ``ε × (paths through this
    part's partition node)`` spent by measurements.  The amount owed to each
    protected source is ``max over parts × parent multiplicity``; each new
    measurement is charged only the increase of that bound.
    """

    def __init__(self, session, parent_plan: Plan) -> None:
        self._session = session
        self._parent_plan = parent_plan
        self._parent_multiplicities = Counter(parent_plan.source_multiplicities())
        self._part_epsilon: dict[Any, float] = {}
        self._charged: dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def parent_multiplicities(self) -> Counter:
        """Source multiplicities of the partitioned parent query."""
        return Counter(self._parent_multiplicities)

    def part_epsilon(self, part_key: Any) -> float:
        """Cumulative ε accumulated on one part so far."""
        return self._part_epsilon.get(part_key, 0.0)

    def max_epsilon(self) -> float:
        """The current maximum cumulative ε over all parts."""
        return max(self._part_epsilon.values(), default=0.0)

    def charged(self) -> dict[str, float]:
        """ε charged to each protected source by this group so far."""
        return dict(self._charged)

    # ------------------------------------------------------------------
    def charge_measurement(
        self,
        plan: Plan,
        epsilon: float,
        description: str = "",
    ) -> dict[str, float]:
        """Charge the ledger for a measurement of ``plan`` at ``epsilon``.

        Splits the plan's source uses into *direct* uses (paths from the
        measurement root to a source that do not pass through this group's
        partition nodes) and uses routed *through* the group's parts.  Direct
        uses are charged at full ``ε × multiplicity``; routed uses only pay
        for the increase in ``max over parts × parent multiplicity``.

        The combined charge is applied atomically: if any source's budget is
        insufficient, nothing is charged and nothing is recorded.  Returns the
        per-source amounts actually charged.
        """
        direct, pending, group_costs = self.pending_batch([(plan, epsilon)])
        costs = self._merge_costs(direct, group_costs)
        if costs:
            self._session.ledger.charge(costs, description=description)
        # Only commit part totals once the ledger accepted the charge.
        self.commit_pending(pending, costs)
        return costs

    # ------------------------------------------------------------------
    def pending_batch(
        self,
        measurements: Iterable[tuple[Plan, float]],
    ) -> tuple[Counter, dict[Any, float], dict[str, float]]:
        """Cost a batch of measurements over this group without charging.

        Returns ``(direct_costs, pending_part_epsilon, group_costs)``: the
        summed ``ε × direct uses`` charges, the part-ε totals the batch would
        leave behind, and the per-source charge for the resulting increase of
        the group maximum.  Nothing is committed; the caller charges the
        ledger atomically and then hands ``pending_part_epsilon`` (plus the
        total charged) to :meth:`commit_pending`.
        """
        direct_total: Counter = Counter()
        pending = dict(self._part_epsilon)
        for plan, epsilon in measurements:
            epsilon = validate_epsilon(epsilon)
            direct, arrivals = self._attribute(plan)
            for name, count in direct.items():
                direct_total[name] += count * epsilon
            for part_key, paths in arrivals.items():
                pending[part_key] = pending.get(part_key, 0.0) + paths * epsilon
        old_max = max(self._part_epsilon.values(), default=0.0)
        new_max = max(pending.values(), default=0.0)
        increase = max(0.0, new_max - old_max)
        group_costs: dict[str, float] = {}
        if increase > 0.0:
            for name, multiplicity in self._parent_multiplicities.items():
                group_costs[name] = increase * multiplicity
        return direct_total, pending, group_costs

    def commit_pending(
        self, pending: dict[Any, float], costs: dict[str, float]
    ) -> None:
        """Record a batch's part-ε totals and charged amounts.

        Called only after the session ledger accepted the (atomic) charge.
        """
        self._part_epsilon = pending
        for name, cost in costs.items():
            self._charged[name] = self._charged.get(name, 0.0) + cost

    def preview_cost(self, plan: Plan, epsilon: float) -> dict[str, float]:
        """The per-source charge a measurement *would* incur, without charging."""
        direct, _pending, group_costs = self.pending_batch([(plan, epsilon)])
        return self._merge_costs(direct, group_costs)

    @staticmethod
    def _merge_costs(
        direct: Counter, group_costs: dict[str, float]
    ) -> dict[str, float]:
        """Sum direct and max-increase charges, dropping zero entries."""
        costs: dict[str, float] = dict(group_costs)
        for name, cost in direct.items():
            costs[name] = costs.get(name, 0.0) + cost
        return {name: cost for name, cost in costs.items() if cost > 0.0}

    # ------------------------------------------------------------------
    def _attribute(self, plan: Plan) -> tuple[Counter, Counter]:
        """Split root-to-source paths into direct uses and per-part arrivals.

        Traversal stops at this group's partition nodes (each arrival is
        recorded against the node's part); partition nodes of other groups are
        descended through like any other transformation, so their sources end
        up in the direct (fully charged) bucket.
        """
        direct: Counter = Counter()
        arrivals: Counter = Counter()

        def visit(node: Plan) -> None:
            if isinstance(node, PartitionPlan) and node.group is self:
                arrivals[node.part_key] += 1
                return
            if isinstance(node, SourcePlan):
                direct[node.name] += 1
                return
            for child in node.children:
                visit(child)

        visit(plan)
        return direct, arrivals


class Partition:
    """The mapping of part keys to queryables returned by ``Queryable.partition``.

    Iterating yields ``(part_key, queryable)`` pairs; indexing by a part key
    returns the corresponding queryable.  All parts share one
    :class:`PartitionGroup`, so their measurements compose in parallel.
    """

    def __init__(self, parent, key: Callable[[Any], Any], keys: Iterable[Any]) -> None:
        # Imported here to avoid a circular import at module load time.
        from .queryable import Queryable

        if not isinstance(parent, Queryable):
            raise PlanError("partition() requires a Queryable parent")
        part_keys = list(keys)
        if not part_keys:
            raise PlanError("partition() requires at least one part key")
        if len(set(part_keys)) != len(part_keys):
            raise PlanError("partition() part keys must be distinct")
        self._session = parent.session
        self._group = PartitionGroup(parent.session, parent.plan)
        self._parts: dict[Any, PartQueryable] = {}
        for part_key in part_keys:
            plan = PartitionPlan(parent.plan, key, part_key, self._group)
            self._parts[part_key] = PartQueryable(parent.session, plan, self._group)

    # ------------------------------------------------------------------
    @property
    def group(self) -> PartitionGroup:
        """The budget-accounting group shared by every part."""
        return self._group

    def keys(self) -> list[Any]:
        """The part keys, in the order supplied."""
        return list(self._parts)

    def __getitem__(self, part_key: Any) -> "PartQueryable":
        try:
            return self._parts[part_key]
        except KeyError as exc:
            raise PlanError(f"no partition part with key {part_key!r}") from exc

    def __iter__(self) -> Iterator[tuple[Any, "PartQueryable"]]:
        return iter(self._parts.items())

    def __len__(self) -> int:
        return len(self._parts)

    def items(self) -> Iterator[tuple[Any, "PartQueryable"]]:
        """Iterate over ``(part_key, queryable)`` pairs."""
        return iter(self._parts.items())

    def noisy_counts(self, epsilon: float, query_name: str = ""):
        """Measure every part at ``epsilon`` and return ``{part_key: result}``.

        Thanks to parallel composition the whole sweep costs each protected
        source the same as a single measurement of the un-partitioned query;
        issued as one :meth:`PrivacySession.measure` batch, so the shared
        parent plan is also *evaluated* only once.
        """
        part_keys = list(self._parts)
        results = self._session.measure(
            *[
                (
                    self._parts[part_key],
                    epsilon,
                    f"{query_name or 'partition'}[{part_key!r}]",
                )
                for part_key in part_keys
            ]
        )
        return dict(zip(part_keys, results))


# Imported late so that PartQueryable can subclass Queryable without creating
# an import cycle at module load time.
from .aggregation import NoisyCountResult, noisy_sum as _noisy_sum  # noqa: E402
from .queryable import Queryable  # noqa: E402


class PartQueryable(Queryable):
    """A queryable over one partition part.

    Behaves exactly like a :class:`Queryable` — every stable transformation is
    available and further derived queryables stay attached to the same
    partition group — except that measurements are charged through the group's
    parallel-composition accounting instead of plain sequential composition.
    """

    def __init__(self, session, plan: Plan, group: PartitionGroup) -> None:
        super().__init__(session, plan)
        self._group = group

    @property
    def partition_group(self) -> PartitionGroup:
        """The accounting group this part belongs to."""
        return self._group

    def _wrap(self, plan: Plan) -> "PartQueryable":
        return PartQueryable(self._session, plan, self._group)

    # ------------------------------------------------------------------
    def privacy_cost(self, epsilon: float) -> dict[str, float]:
        """The charge the *next* measurement at ``epsilon`` would incur.

        Unlike the base class this is stateful: once the group's maximum has
        been raised by one part, sibling parts can often measure for free.
        """
        return self._group.preview_cost(self._plan, epsilon)

    def noisy_count(self, epsilon: float, query_name: str = "") -> NoisyCountResult:
        """Release every record's weight with ``Laplace(1/ε)`` noise.

        Charged through the partition group's max-accounting; like every
        measurement this is a one-element :meth:`PrivacySession.measure`
        batch, which recognises part queryables and applies parallel
        composition.
        """
        return self._session.measure((self, epsilon, query_name))[0]

    def noisy_sum(
        self,
        epsilon: float,
        value_selector: Callable[[Any], float] = lambda record: 1.0,
        clamp: float = 1.0,
        query_name: str = "",
    ) -> float:
        """Release a single clamped, weighted sum with Laplace noise."""
        label = query_name or f"partition noisy_sum(eps={epsilon:g})"
        with self._session.measure_lock:
            self._group.charge_measurement(self._plan, epsilon, description=label)
            exact = self._session.executor.evaluate(self._plan)
            return _noisy_sum(
                exact, epsilon, value_selector, clamp=clamp, noise=self._session.noise
            )
