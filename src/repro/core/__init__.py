"""Core wPINQ machinery: weighted datasets, stable transformations, privacy.

The public surface is re-exported here so that typical analyst code only needs

    from repro.core import PrivacySession, WeightedDataset

Execution is unified behind the :class:`Executor` protocol: every measurement
— single ``noisy_count`` calls and batched :meth:`PrivacySession.measure`
requests alike — is evaluated by the session's executor: the eager memoising
backend (:class:`EagerExecutor`), the incremental dataflow engine
(:class:`DataflowExecutor`), the columnar NumPy-kernel backend
(:class:`~repro.columnar.executor.VectorizedExecutor`, ``executor=
"vectorized"``), or the size-routing ``"auto"`` dispatcher.  Batches charge
all privacy budgets atomically up front and evaluate sub-plans shared between
requests exactly once.
"""

from .aggregation import (
    NoisyCountResult,
    exponential_mechanism,
    noisy_average,
    noisy_median,
    noisy_sum,
)
from .budget import BudgetLedger, PrivacyBudget
from .dataset import WeightedDataset
from .executor import DataflowExecutor, EagerExecutor, Executor, create_executor
from .laplace import LaplaceNoise, laplace_density, laplace_log_density, validate_epsilon
from .measurement import MeasurementRequest, MeasurementSet
from .plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
    explain_plan,
)
from .queryable import PrivacySession, Queryable
from .partition import Partition, PartitionGroup, PartitionPlan, PartQueryable
from . import transformations

__all__ = [
    "WeightedDataset",
    "PrivacySession",
    "Queryable",
    "Executor",
    "EagerExecutor",
    "DataflowExecutor",
    "create_executor",
    "MeasurementRequest",
    "MeasurementSet",
    "explain_plan",
    "NoisyCountResult",
    "PrivacyBudget",
    "BudgetLedger",
    "LaplaceNoise",
    "laplace_density",
    "laplace_log_density",
    "validate_epsilon",
    "noisy_sum",
    "noisy_average",
    "noisy_median",
    "exponential_mechanism",
    "transformations",
    "Plan",
    "SourcePlan",
    "SelectPlan",
    "WherePlan",
    "SelectManyPlan",
    "GroupByPlan",
    "ShavePlan",
    "JoinPlan",
    "UnionPlan",
    "IntersectPlan",
    "ConcatPlan",
    "ExceptPlan",
    "DistinctPlan",
    "DownScalePlan",
    "Partition",
    "PartitionGroup",
    "PartitionPlan",
    "PartQueryable",
]
