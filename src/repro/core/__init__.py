"""Core wPINQ machinery: weighted datasets, stable transformations, privacy.

The public surface is re-exported here so that typical analyst code only needs

    from repro.core import PrivacySession, WeightedDataset
"""

from .aggregation import (
    NoisyCountResult,
    exponential_mechanism,
    noisy_average,
    noisy_median,
    noisy_sum,
)
from .budget import BudgetLedger, PrivacyBudget
from .dataset import WeightedDataset
from .laplace import LaplaceNoise, laplace_density, laplace_log_density, validate_epsilon
from .plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
)
from .queryable import PrivacySession, Queryable
from .partition import Partition, PartitionGroup, PartitionPlan, PartQueryable
from . import transformations

__all__ = [
    "WeightedDataset",
    "PrivacySession",
    "Queryable",
    "NoisyCountResult",
    "PrivacyBudget",
    "BudgetLedger",
    "LaplaceNoise",
    "laplace_density",
    "laplace_log_density",
    "validate_epsilon",
    "noisy_sum",
    "noisy_average",
    "noisy_median",
    "exponential_mechanism",
    "transformations",
    "Plan",
    "SourcePlan",
    "SelectPlan",
    "WherePlan",
    "SelectManyPlan",
    "GroupByPlan",
    "ShavePlan",
    "JoinPlan",
    "UnionPlan",
    "IntersectPlan",
    "ConcatPlan",
    "ExceptPlan",
    "DistinctPlan",
    "DownScalePlan",
    "Partition",
    "PartitionGroup",
    "PartitionPlan",
    "PartQueryable",
]
