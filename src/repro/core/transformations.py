"""Eager implementations of wPINQ's stable transformations.

Every function in this module maps one or two :class:`WeightedDataset` values
to a new :class:`WeightedDataset` and is *stable* in the sense of Definition 2
of the paper:

* unary  ``T``:  ``‖T(A) − T(A')‖ ≤ ‖A − A'‖``
* binary ``T``:  ``‖T(A, B) − T(A', B')‖ ≤ ‖A − A'‖ + ‖B − B'‖``

Stability is what lets a single differentially private aggregation at the end
of a pipeline certify the whole pipeline (Theorem 1), so these semantics are
the heart of the platform.  The property-based tests in
``tests/test_stability_properties.py`` check stability on randomly generated
datasets for every operator defined here.

These eager versions are used when a measurement is taken against the real
protected dataset, and serve as the ground truth the incremental dataflow
operators (:mod:`repro.dataflow.operators`) are tested against.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any, Callable

from .dataset import WeightedDataset

__all__ = [
    "select",
    "where",
    "select_many",
    "group_by",
    "shave",
    "join",
    "union",
    "intersect",
    "concat",
    "except_",
    "distinct",
    "down_scale",
    "normalize_weighted_output",
    "group_prefixes",
]


# ----------------------------------------------------------------------
# Per-record transformations
# ----------------------------------------------------------------------
def select(dataset: WeightedDataset, mapper: Callable[[Any], Any]) -> WeightedDataset:
    """Apply ``mapper`` to every record, accumulating weights of collisions.

    ``Select(A, f)(x) = Σ_{y : f(y) = x} A(y)``.  Stability is immediate:
    moving weight between records cannot increase total absolute change.
    """
    output: dict[Any, float] = {}
    for record, weight in dataset.items():
        mapped = mapper(record)
        output[mapped] = output.get(mapped, 0.0) + weight
    return WeightedDataset(output, tolerance=dataset.tolerance)


def where(dataset: WeightedDataset, predicate: Callable[[Any], bool]) -> WeightedDataset:
    """Keep only records satisfying ``predicate``.

    ``Where(A, p)(x) = p(x) · A(x)``.
    """
    return WeightedDataset(
        {record: weight for record, weight in dataset.items() if predicate(record)},
        tolerance=dataset.tolerance,
    )


def distinct(dataset: WeightedDataset, cap: float = 1.0) -> WeightedDataset:
    """Cap every record's weight at ``cap`` (PINQ's ``Distinct``).

    ``Distinct(A, c)(x) = min(A(x), c)``.  The per-record map ``w ↦ min(w, c)``
    is 1-Lipschitz, so the transformation is stable.  With the default
    ``cap=1.0`` this recovers the multiset "distinct" semantics: any record
    that appears with weight at least one is reported exactly once.  The cap
    must be positive (a non-positive cap would simply erase the dataset while
    still charging privacy budget for measurements of an all-zero output).
    """
    cap = float(cap)
    if cap <= 0:
        raise ValueError("Distinct cap must be positive")
    return WeightedDataset(
        {record: min(weight, cap) for record, weight in dataset.items()},
        tolerance=dataset.tolerance,
    )


def down_scale(dataset: WeightedDataset, factor: float) -> WeightedDataset:
    """Uniformly scale every weight by ``factor`` with ``0 < factor ≤ 1``.

    ``DownScale(A, s)(x) = s · A(x)``.  Scaling all records *down* by the same
    constant is stable (``|s·w − s·w'| = s·|w − w'| ≤ |w − w'|``) and is
    exactly the uniform rescaling the paper contrasts with wPINQ's
    data-dependent rescaling (Section 1.1, and the Fuzz/Reed–Pierce ``!``
    operator in Section 6): it is equivalent to scaling the noise *up* by
    ``1/s``.  It is provided so that analyses can trade accuracy between
    sub-queries explicitly and so the benchmarks can compare uniform against
    data-dependent scaling.
    """
    factor = float(factor)
    if not 0.0 < factor <= 1.0:
        raise ValueError("DownScale factor must satisfy 0 < factor <= 1")
    return dataset.scale(factor)


def normalize_weighted_output(produced: Any) -> list[tuple[Any, float]]:
    """Normalise the output of a ``SelectMany`` mapper to weighted pairs.

    The mapper may return a :class:`WeightedDataset`, a mapping
    ``record -> weight``, an iterable of ``(record, weight)`` pairs, or a
    plain iterable of records (interpreted as unit weights).  The ambiguity
    between "iterable of pairs" and "iterable of records that happen to be
    2-tuples" is resolved in favour of plain records unless the second element
    is a real number, which matches how the examples in the paper are written
    (lists of plain records).
    """
    if isinstance(produced, WeightedDataset):
        return list(produced.items())
    if isinstance(produced, Mapping):
        return [(record, float(weight)) for record, weight in produced.items()]
    items = list(produced)
    weighted: list[tuple[Any, float]] = []
    for item in items:
        if (
            isinstance(item, tuple)
            and len(item) == 2
            and isinstance(item[1], (int, float))
            and not isinstance(item[1], bool)
        ):
            weighted.append((item[0], float(item[1])))
        else:
            weighted.append((item, 1.0))
    return weighted


def select_many(
    dataset: WeightedDataset, mapper: Callable[[Any], Any]
) -> WeightedDataset:
    """One-to-many mapping with data-dependent down-scaling (Section 2.4).

    Each input record ``x`` produces the weighted collection ``f(x)``, scaled
    so that it carries at most unit weight, then multiplied by ``A(x)``::

        SelectMany(A, f) = Σ_x  A(x) · f(x) / max(1, ‖f(x)‖)

    The scaling depends only on what *this* record produces, not on any
    worst-case bound over all possible records — the central wPINQ idea of
    calibrating data (rather than noise) to sensitivity.
    """
    output: dict[Any, float] = {}
    for record, weight in dataset.items():
        produced = normalize_weighted_output(mapper(record))
        produced_norm = sum(abs(w) for _, w in produced)
        scale = weight / max(1.0, produced_norm)
        for out_record, out_weight in produced:
            output[out_record] = output.get(out_record, 0.0) + out_weight * scale
    return WeightedDataset(output, tolerance=dataset.tolerance)


# ----------------------------------------------------------------------
# GroupBy
# ----------------------------------------------------------------------
def group_prefixes(part: WeightedDataset) -> list[tuple[tuple[Any, ...], float]]:
    """Return the weighted prefixes GroupBy emits for one key's part.

    Records are ordered by non-increasing weight (ties broken by ``repr`` for
    determinism).  For each ``i`` the prefix ``{x_0, ..., x_i}`` is emitted
    with weight ``(A_k(x_i) − A_k(x_{i+1})) / 2`` where ``A_k(x_{|part|}) = 0``
    (Section 2.5).  When every record has the same weight ``w`` only the full
    group survives, with weight ``w / 2``.
    """
    ordered = sorted(part.items(), key=lambda item: (-item[1], repr(item[0])))
    prefixes: list[tuple[tuple[Any, ...], float]] = []
    for index, (_, weight) in enumerate(ordered):
        next_weight = ordered[index + 1][1] if index + 1 < len(ordered) else 0.0
        prefix_weight = (weight - next_weight) / 2.0
        if prefix_weight != 0.0:
            members = tuple(record for record, _ in ordered[: index + 1])
            prefixes.append((members, prefix_weight))
    return prefixes


def group_by(
    dataset: WeightedDataset,
    key: Callable[[Any], Any],
    reducer: Callable[[Sequence[Any]], Any] = tuple,
) -> WeightedDataset:
    """Group records by ``key`` and reduce each group (Section 2.5).

    The output records are ``(key, reducer(members))`` pairs.  With unit
    weight inputs every key contributes a single output record of weight 0.5,
    which is exactly how node degrees are computed in the paper::

        degrees = group_by(edges, key=lambda e: e[0], reducer=len)

    For general weights the prefix construction of :func:`group_prefixes`
    applies; its stability proof is Theorem 5 in the paper's appendix.
    """
    output: dict[Any, float] = {}
    for part_key, part in dataset.partition_by(key).items():
        for members, weight in group_prefixes(part):
            out_record = (part_key, reducer(list(members)))
            output[out_record] = output.get(out_record, 0.0) + weight
    return WeightedDataset(output, tolerance=dataset.tolerance)


# ----------------------------------------------------------------------
# Shave
# ----------------------------------------------------------------------
def _weight_sequence(spec: Any, record: Any) -> Callable[[int], float]:
    """Turn a Shave specification into an indexable weight sequence.

    ``spec`` may be a positive constant (every slice has that weight), a
    sequence of weights, or a callable ``record -> constant | sequence``.
    """
    value = spec(record) if callable(spec) else spec
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        constant = float(value)
        if constant <= 0:
            raise ValueError("Shave slice weight must be positive")
        return lambda index: constant
    weights = [float(w) for w in value]
    if any(w < 0 for w in weights):
        raise ValueError("Shave slice weights must be non-negative")

    def lookup(index: int) -> float:
        return weights[index] if index < len(weights) else 0.0

    return lookup


def shave(dataset: WeightedDataset, slice_weights: Any = 1.0) -> WeightedDataset:
    """Break heavy records into multiple indexed slices (Section 2.8).

    Each record ``x`` with weight ``A(x)`` becomes records ``(x, 0), (x, 1),
    ...`` whose weights follow the supplied slice sequence until ``A(x)`` is
    exhausted; the final slice may be partial::

        Shave(A, f)((x, i)) = max(0, min(f(x)_i, A(x) − Σ_{j<i} f(x)_j))

    ``Select`` with ``(x, i) -> x`` is the functional inverse.
    """
    output: dict[Any, float] = {}
    for record, weight in dataset.items():
        if weight <= 0:
            continue
        sequence = _weight_sequence(slice_weights, record)
        consumed = 0.0
        index = 0
        # A zero-weight slice would never make progress; the constant form is
        # validated above and the sequence form simply stops at its end.
        while consumed < weight - dataset.tolerance:
            slice_weight = sequence(index)
            if slice_weight <= 0.0:
                break
            emitted = min(slice_weight, weight - consumed)
            out_record = (record, index)
            output[out_record] = output.get(out_record, 0.0) + emitted
            consumed += emitted
            index += 1
    return WeightedDataset(output, tolerance=dataset.tolerance)


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
def join(
    left: WeightedDataset,
    right: WeightedDataset,
    left_key: Callable[[Any], Any],
    right_key: Callable[[Any], Any],
    result_selector: Callable[[Any, Any], Any] = lambda a, b: (a, b),
) -> WeightedDataset:
    """wPINQ's stable Join (Section 2.7, stability proved in Theorem 4).

    For each join key ``k`` let ``A_k`` and ``B_k`` be the records mapping to
    ``k``.  Every pair ``(a, b)`` with ``a ∈ A_k`` and ``b ∈ B_k`` is emitted
    through ``result_selector`` with weight::

        A_k(a) · B_k(b) / (‖A_k‖ + ‖B_k‖)

    Unlike the SQL equi-join, the total output weight per key is bounded, so
    the presence or absence of a single input record perturbs the output by at
    most its own weight — this is what makes graph queries (paths, triangles,
    motifs) expressible without worst-case noise.
    """
    left_parts = left.partition_by(left_key)
    right_parts = right.partition_by(right_key)
    output: dict[Any, float] = {}
    for key, left_part in left_parts.items():
        right_part = right_parts.get(key)
        if right_part is None:
            continue
        denominator = left_part.total_weight() + right_part.total_weight()
        if denominator <= 0:
            continue
        for left_record, left_weight in left_part.items():
            for right_record, right_weight in right_part.items():
                weight = left_weight * right_weight / denominator
                if weight == 0.0:
                    continue
                out_record = result_selector(left_record, right_record)
                output[out_record] = output.get(out_record, 0.0) + weight
    return WeightedDataset(output, tolerance=left.tolerance)


# ----------------------------------------------------------------------
# Set-like binary operators
# ----------------------------------------------------------------------
def union(left: WeightedDataset, right: WeightedDataset) -> WeightedDataset:
    """Element-wise maximum of weights: ``Union(A, B)(x) = max(A(x), B(x))``."""
    output: dict[Any, float] = {}
    for record in set(left.records()) | set(right.records()):
        output[record] = max(left.weight(record), right.weight(record))
    return WeightedDataset(output, tolerance=left.tolerance)


def intersect(left: WeightedDataset, right: WeightedDataset) -> WeightedDataset:
    """Element-wise minimum of weights: ``Intersect(A, B)(x) = min(A(x), B(x))``."""
    output: dict[Any, float] = {}
    for record in set(left.records()) | set(right.records()):
        output[record] = min(left.weight(record), right.weight(record))
    return WeightedDataset(output, tolerance=left.tolerance)


def concat(left: WeightedDataset, right: WeightedDataset) -> WeightedDataset:
    """Element-wise addition: ``Concat(A, B)(x) = A(x) + B(x)``."""
    return left + right


def except_(left: WeightedDataset, right: WeightedDataset) -> WeightedDataset:
    """Element-wise subtraction: ``Except(A, B)(x) = A(x) − B(x)``."""
    return left - right
