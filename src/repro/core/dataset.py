"""Weighted datasets: the fundamental data type of wPINQ.

A *weighted dataset* generalises a multiset.  Where a multiset maps each
record to a non-negative integer count, a weighted dataset is a function
``A : D -> R`` assigning a real-valued weight ``A(x)`` to every record ``x``
in some (arbitrarily large) domain ``D``.  Records not mentioned explicitly
have weight zero.

Two quantities from the paper (Section 2.1) drive the whole privacy story:

* the *size* of a dataset, ``‖A‖ = Σ_x |A(x)|``, and
* the *distance* between datasets, ``‖A − B‖ = Σ_x |A(x) − B(x)|``.

Differential privacy for weighted datasets (Definition 1) bounds the change
in output distribution by ``exp(ε · ‖A − B‖)``, so stable transformations are
exactly those that do not expand this distance.

:class:`WeightedDataset` is deliberately a thin, dictionary-backed value type:
the transformation semantics live in :mod:`repro.core.transformations`, the
privacy accounting in :mod:`repro.core.queryable`, and the incremental
evaluation in :mod:`repro.dataflow`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from typing import Any, Callable

__all__ = ["WeightedDataset", "DEFAULT_TOLERANCE"]

#: Weights whose magnitude falls below this threshold are treated as zero and
#: dropped from the dataset.  Keeping a tolerance avoids the accumulation of
#: floating point dust produced by long chains of rescaling transformations.
DEFAULT_TOLERANCE = 1e-12


class WeightedDataset:
    """An immutable mapping from hashable records to real-valued weights.

    Parameters
    ----------
    weights:
        A mapping or an iterable of ``(record, weight)`` pairs.  Weights of
        repeated records accumulate.  Records whose accumulated weight is
        within ``tolerance`` of zero are dropped.
    tolerance:
        Magnitude below which a weight is considered zero.

    Examples
    --------
    The two running examples from Section 2.1 of the paper::

        >>> A = WeightedDataset({"1": 0.75, "2": 2.0, "3": 1.0})
        >>> B = WeightedDataset({"1": 3.0, "4": 2.0})
        >>> A["2"]
        2.0
        >>> B["0"]
        0.0
        >>> A.total_weight()
        3.75
        >>> A.distance(B)
        7.25
    """

    __slots__ = ("_weights", "_tolerance", "_norm")

    def __init__(
        self,
        weights: Mapping[Any, float] | Iterable[tuple[Any, float]] | None = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        accumulated: dict[Any, float] = {}
        if weights is not None:
            items = weights.items() if isinstance(weights, Mapping) else weights
            for record, weight in items:
                weight = float(weight)
                if not math.isfinite(weight):
                    # The record and its weight are protected data; naming
                    # them in the exception would leak them into logs (R004).
                    raise ValueError("dataset weights must be finite floats")
                accumulated[record] = accumulated.get(record, 0.0) + weight
        self._tolerance = float(tolerance)
        self._weights = {
            record: weight
            for record, weight in accumulated.items()
            if abs(weight) > self._tolerance
        }
        self._norm = sum(abs(weight) for weight in self._weights.values())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[Any],
        weight: float = 1.0,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> "WeightedDataset":
        """Build a dataset from plain records, each contributing ``weight``.

        This is the usual way to lift a traditional dataset (a multiset) into
        the weighted world: every occurrence of a record adds ``weight`` (by
        default 1.0) to that record.
        """
        return cls(((record, weight) for record in records), tolerance=tolerance)

    @classmethod
    def empty(cls, tolerance: float = DEFAULT_TOLERANCE) -> "WeightedDataset":
        """Return the empty dataset (all weights zero)."""
        return cls(tolerance=tolerance)

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def weight(self, record: Any) -> float:
        """Return ``A(record)``; zero for records not present."""
        return self._weights.get(record, 0.0)

    def __getitem__(self, record: Any) -> float:
        return self.weight(record)

    def __contains__(self, record: Any) -> bool:
        return record in self._weights

    def __iter__(self) -> Iterator[Any]:
        return iter(self._weights)

    def __len__(self) -> int:
        """Number of records with non-zero weight (the *support* size)."""
        return len(self._weights)

    def records(self) -> Iterator[Any]:
        """Iterate over records with non-zero weight."""
        return iter(self._weights)

    def items(self) -> Iterator[tuple[Any, float]]:
        """Iterate over ``(record, weight)`` pairs with non-zero weight."""
        return iter(self._weights.items())

    def to_dict(self) -> dict[Any, float]:
        """Return a copy of the underlying ``record -> weight`` mapping."""
        return dict(self._weights)

    @property
    def tolerance(self) -> float:
        """Magnitude below which weights are treated as zero."""
        return self._tolerance

    # ------------------------------------------------------------------
    # Norms and distances
    # ------------------------------------------------------------------
    def total_weight(self) -> float:
        """Return ``‖A‖ = Σ_x |A(x)|``, the size of the dataset."""
        return self._norm

    #: Alias matching the paper's ‖A‖ notation.
    norm = total_weight

    def distance(self, other: "WeightedDataset") -> float:
        """Return ``‖A − B‖ = Σ_x |A(x) − B(x)|``."""
        if not isinstance(other, WeightedDataset):
            raise TypeError("distance is only defined between WeightedDatasets")
        total = 0.0
        for record, weight in self._weights.items():
            total += abs(weight - other._weights.get(record, 0.0))
        for record, weight in other._weights.items():
            if record not in self._weights:
                total += abs(weight)
        return total

    # ------------------------------------------------------------------
    # Arithmetic (used by the incremental engine and by Concat/Except)
    # ------------------------------------------------------------------
    def __add__(self, other: "WeightedDataset") -> "WeightedDataset":
        if not isinstance(other, WeightedDataset):
            return NotImplemented
        combined = dict(self._weights)
        for record, weight in other._weights.items():
            combined[record] = combined.get(record, 0.0) + weight
        return WeightedDataset(combined, tolerance=self._tolerance)

    def __sub__(self, other: "WeightedDataset") -> "WeightedDataset":
        if not isinstance(other, WeightedDataset):
            return NotImplemented
        combined = dict(self._weights)
        for record, weight in other._weights.items():
            combined[record] = combined.get(record, 0.0) - weight
        return WeightedDataset(combined, tolerance=self._tolerance)

    def scale(self, factor: float) -> "WeightedDataset":
        """Return the dataset with every weight multiplied by ``factor``."""
        factor = float(factor)
        return WeightedDataset(
            {record: weight * factor for record, weight in self._weights.items()},
            tolerance=self._tolerance,
        )

    def __mul__(self, factor: float) -> "WeightedDataset":
        return self.scale(factor)

    __rmul__ = __mul__

    def __neg__(self) -> "WeightedDataset":
        return self.scale(-1.0)

    # ------------------------------------------------------------------
    # Comparisons and filtering helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedDataset):
            return NotImplemented
        return self.distance(other) <= max(self._tolerance, other._tolerance) * (
            1 + len(self) + len(other)
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("WeightedDataset is not hashable")

    def is_empty(self) -> bool:
        """True if every record has (effectively) zero weight."""
        return not self._weights

    def restrict(self, predicate: Callable[[Any], bool]) -> "WeightedDataset":
        """Return the sub-dataset of records satisfying ``predicate``.

        This is a plain helper used internally (e.g. by Join's per-key
        restriction ``A_k``); the privacy-aware filtering operator is
        ``Where`` in :mod:`repro.core.transformations`.
        """
        return WeightedDataset(
            {
                record: weight
                for record, weight in self._weights.items()
                if predicate(record)
            },
            tolerance=self._tolerance,
        )

    def partition_by(
        self, key: Callable[[Any], Any]
    ) -> dict[Any, "WeightedDataset"]:
        """Partition the dataset by a key function: ``A = Σ_k A_k``."""
        parts: dict[Any, dict[Any, float]] = {}
        for record, weight in self._weights.items():
            parts.setdefault(key(record), {})[record] = weight
        return {
            part_key: WeightedDataset(part, tolerance=self._tolerance)
            for part_key, part in parts.items()
        }

    def top(self, count: int) -> list[tuple[Any, float]]:
        """Return the ``count`` heaviest records as ``(record, weight)`` pairs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        ranked = sorted(self._weights.items(), key=lambda item: (-item[1], repr(item[0])))
        return ranked[:count]

    def __repr__(self) -> str:
        # Sanctioned debug affordance: the repr deliberately previews
        # protected records/weights for interactive use; nothing in the
        # release path ever logs a dataset repr.
        preview = ", ".join(
            f"{record!r}: {weight:.4g}"  # lint: disable=R004
            for record, weight in list(self._weights.items())[:6]
        )
        suffix = ", ..." if len(self._weights) > 6 else ""
        return (
            f"WeightedDataset({{{preview}{suffix}}}, "  # lint: disable=R004
            f"records={len(self._weights)}, norm={self._norm:.6g})"
        )
