"""The analyst-facing fluent query API and privacy session.

:class:`PrivacySession` owns the protected datasets, their privacy budgets,
the measurement noise source, and the **executor** — the single execution
backend (:mod:`repro.core.executor`) through which every plan is evaluated.
:meth:`PrivacySession.protect` wraps a dataset into a :class:`Queryable`,
wPINQ's analogue of a LINQ/PINQ queryable: each method call appends a stable
transformation to a logical plan, and no data is touched until a
differentially private aggregation such as :meth:`Queryable.noisy_count` is
requested.

Measurements — whether a single :meth:`Queryable.noisy_count` or a batch
submitted through :meth:`PrivacySession.measure` — go through the pipeline of
:mod:`repro.core.measurement`:

1. the per-source privacy cost of the whole batch is computed statically
   (sequential composition per Section 2.3; parallel composition for
   ``Partition`` parts),
2. every budget is charged atomically up front — refusing the entire batch,
   charging nothing, if any budget would be exceeded — and
3. all plans are evaluated in one executor batch (shared sub-plans evaluate
   exactly once) and released as
   :class:`~repro.core.aggregation.NoisyCountResult` values.

A typical graph analysis looks like::

    session = PrivacySession(seed=0)
    edges = session.protect("edges", edge_records, total_epsilon=1.0)
    degrees = edges.group_by(key=lambda e: e[0], reducer=len)
    measurement = degrees.noisy_count(0.1)

and a batch that shares work between queries::

    ccdf, seq = session.measure(
        (degree_ccdf_query(edges), 0.1, "ccdf"),
        (degree_sequence_query(edges), 0.1, "sequence"),
    )
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import PlanError
from ..resilience.deadline import check_deadline
from ..sanitize import ordered_rlock
from .aggregation import NoisyCountResult, noisy_sum
from .budget import BudgetLedger
from .dataset import WeightedDataset
from .executor import Executor, create_executor
from .laplace import LaplaceNoise, validate_epsilon
from .plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
    explain_plan,
)

__all__ = ["PrivacySession", "Queryable"]


class PrivacySession:
    """Holds protected datasets, budgets, the noise source and the executor.

    Parameters
    ----------
    seed:
        Optional seed (or :class:`numpy.random.Generator`) for the Laplace
        noise used by every measurement taken through this session.  Fixing
        the seed makes experiments reproducible without weakening the privacy
        semantics of the mechanism itself.
    executor:
        The execution backend evaluating every measurement: ``"eager"`` (the
        default — fresh memoisation per batch), ``"eager-warm"`` (results kept
        across batches), ``"dataflow"`` (the incremental engine, compiled
        plans kept warm across measurements), ``"vectorized"`` (the columnar
        NumPy-kernel backend of :mod:`repro.columnar`), ``"auto"`` (eager for
        tiny inputs, vectorized for large ones), or a factory callable taking
        the session's environment mapping and returning an
        :class:`~repro.core.executor.Executor`.
    ledger:
        Optional budget ledger to charge against instead of a fresh
        in-memory :class:`~repro.core.budget.BudgetLedger` — the measurement
        service injects a durable write-ahead-logged ledger here so spent ε
        survives restarts.
    """

    def __init__(
        self,
        seed: int | np.random.Generator | None = None,
        executor: str | Callable[[Mapping[str, WeightedDataset]], Executor] = "eager",
        ledger: BudgetLedger | None = None,
    ) -> None:
        # An injected ledger lets the hosting layer substitute a durable
        # write-ahead-logged one (repro.persistence.DurableLedger) without
        # the session knowing; budgets still register through protect().
        self.ledger = ledger if ledger is not None else BudgetLedger()
        self.noise = LaplaceNoise(seed)
        self._datasets: dict[str, WeightedDataset] = {}
        self._executor = create_executor(executor, self._datasets)
        # Serialises the whole measurement pipeline (budget charge, partition
        # group commits, executor evaluation, noise draws): the noise RNG and
        # the executor's memo tables are not thread-safe, so concurrent
        # measurements of one session take turns.  Re-entrant because a
        # locked caller (the measurement service) may itself call measure().
        self._measure_lock = ordered_rlock("core.measure", 40, io_ok=True)  # lock-order: 40 io-ok

    # ------------------------------------------------------------------
    def protect(
        self,
        name: str,
        data: WeightedDataset | Mapping[Any, float] | Iterable[Any],
        total_epsilon: float = float("inf"),
        record_weight: float = 1.0,
    ) -> "Queryable":
        """Register a protected dataset and return a queryable over it.

        ``data`` may be a :class:`WeightedDataset`, a mapping of record to
        weight, or a plain iterable of records (each given ``record_weight``,
        the usual way to lift a multiset such as a graph's edge list).
        """
        if name in self._datasets:
            raise PlanError(f"a dataset named {name!r} is already protected")
        if isinstance(data, WeightedDataset):
            dataset = data
        elif isinstance(data, Mapping):
            dataset = WeightedDataset(data)
        else:
            dataset = WeightedDataset.from_records(data, weight=record_weight)
        self._datasets[name] = dataset
        self.ledger.register(name, total_epsilon)
        return Queryable(self, SourcePlan(name))

    def from_plan(self, plan: Plan) -> "Queryable":
        """Wrap an existing plan (all of whose sources must be registered)."""
        missing = plan.source_names() - set(self._datasets)
        if missing:
            raise PlanError(f"plan references unregistered sources: {sorted(missing)}")
        return Queryable(self, plan)

    # ------------------------------------------------------------------
    @property
    def executor(self) -> Executor:
        """The execution backend every measurement of this session runs on."""
        return self._executor

    @property
    def measure_lock(self) -> threading.RLock:
        """The re-entrant lock serialising this session's measurements.

        Every measurement entry point (:meth:`measure`, and through it
        ``noisy_count``; the ``noisy_sum`` paths) runs under this lock, so a
        session may be shared between threads: concurrent measurements are
        totally ordered, the budget accounting stays exact, and under a fixed
        seed the released values are those of *some* sequential ordering of
        the requests.
        """
        return self._measure_lock

    def measure(self, *requests) -> "MeasurementSet":
        """Take a batch of measurements as one atomic unit.

        Each request is a ``(queryable, epsilon)`` or
        ``(queryable, epsilon, name)`` tuple, or a
        :class:`~repro.core.measurement.MeasurementRequest`.  The whole batch
        is charged atomically up front — sequential composition for ordinary
        queryables, parallel composition per partition group for
        ``Partition`` parts — and refused entirely (charging nothing) if any
        source's budget is insufficient.  All plans are then evaluated in one
        executor batch, so sub-plans shared between requests are evaluated
        exactly once, and the results are returned in request order as a
        :class:`~repro.core.measurement.MeasurementSet`.

        A single iterable of requests may also be passed as the only
        positional argument.
        """
        from .measurement import MeasurementRequest, execute_batch

        if len(requests) == 1:
            first = requests[0]
            is_single_request = isinstance(first, (MeasurementRequest, Queryable)) or (
                isinstance(first, tuple)
                and bool(first)
                and isinstance(first[0], Queryable)
            )
            if not is_single_request:
                try:
                    requests = tuple(first)
                except TypeError:
                    # Fall through with the original argument so as_request
                    # raises its descriptive PlanError.
                    pass
        with self._measure_lock:
            # Last budget-safe deadline gate: past this point the batch is
            # charged atomically and always runs to release, so an expired
            # deadline must refuse *here* — consuming no ε — or not at all.
            check_deadline("measurement admission (pre-charge)")
            return execute_batch(self, requests)

    # ------------------------------------------------------------------
    def environment(self) -> dict[str, WeightedDataset]:
        """The mapping of source names to protected datasets (internal)."""
        return dict(self._datasets)

    def dataset(self, name: str) -> WeightedDataset:
        """Return the protected dataset registered under ``name`` (internal).

        Exposed for tests and for trusted-curator style workflows; analyst
        code should only ever interact with datasets through measurements.
        """
        try:
            return self._datasets[name]
        except KeyError as exc:
            raise PlanError(f"no protected dataset named {name!r}") from exc

    def remaining_budget(self, name: str) -> float:
        """ε remaining for the named protected dataset."""
        return self.ledger.remaining(name)

    def spent_budget(self, name: str) -> float:
        """ε already consumed by the named protected dataset."""
        return self.ledger.spent(name)

    def budget_report(self) -> dict[str, dict[str, float]]:
        """Per-source budget summary (total / spent / remaining)."""
        return self.ledger.report()


class Queryable:
    """A wPINQ query under construction.

    Instances are immutable: every transformation returns a new queryable
    wrapping a larger plan, so sub-queries can be freely shared and reused
    (the privacy accounting counts every use).
    """

    def __init__(self, session: PrivacySession, plan: Plan) -> None:
        self._session = session
        self._plan = plan

    # ------------------------------------------------------------------
    @property
    def session(self) -> PrivacySession:
        """The privacy session this queryable belongs to."""
        return self._session

    @property
    def plan(self) -> Plan:
        """The logical plan accumulated so far."""
        return self._plan

    def _wrap(self, plan: Plan) -> "Queryable":
        return Queryable(self._session, plan)

    def _check_same_session(self, other: "Queryable") -> None:
        if not isinstance(other, Queryable):
            raise PlanError(
                f"binary transformations require another Queryable, got "
                f"{type(other).__name__}"
            )
        if other._session is not self._session:
            raise PlanError("cannot combine queryables from different privacy sessions")

    # ------------------------------------------------------------------
    # Stable transformations (each documented in repro.core.transformations)
    # ------------------------------------------------------------------
    def select(self, mapper: Callable[[Any], Any]) -> "Queryable":
        """Per-record transformation; weights of colliding outputs accumulate."""
        return self._wrap(SelectPlan(self._plan, mapper))

    def where(self, predicate: Callable[[Any], bool]) -> "Queryable":
        """Keep only records satisfying ``predicate``."""
        return self._wrap(WherePlan(self._plan, predicate))

    def select_many(self, mapper: Callable[[Any], Any]) -> "Queryable":
        """One-to-many transformation with per-record down-scaling."""
        return self._wrap(SelectManyPlan(self._plan, mapper))

    def group_by(
        self,
        key: Callable[[Any], Any],
        reducer: Callable[[Sequence[Any]], Any] = tuple,
    ) -> "Queryable":
        """Group records by key and reduce each group."""
        return self._wrap(GroupByPlan(self._plan, key, reducer))

    def shave(self, slice_weights: Any = 1.0) -> "Queryable":
        """Break heavy records into indexed slices of the given weight(s)."""
        return self._wrap(ShavePlan(self._plan, slice_weights))

    def distinct(self, cap: float = 1.0) -> "Queryable":
        """Cap every record's weight at ``cap`` (PINQ's Distinct)."""
        return self._wrap(DistinctPlan(self._plan, cap))

    def down_scale(self, factor: float) -> "Queryable":
        """Uniformly scale every weight by ``factor`` with ``0 < factor ≤ 1``."""
        return self._wrap(DownScalePlan(self._plan, factor))

    def partition(
        self,
        key: Callable[[Any], Any],
        keys: Iterable[Any],
    ) -> "Partition":
        """Split the query into disjoint parts keyed by ``key``.

        Returns a :class:`~repro.core.partition.Partition`, a mapping from
        each value in ``keys`` to a queryable over the records whose key
        equals that value.  Measurements taken over different parts compose in
        *parallel*: the charge to each protected source is the running
        **maximum** over the parts, not the sum (the parts are disjoint
        restrictions, so ``Σ_k ‖Q_k(A) − Q_k(A')‖ ≤ ‖Q(A) − Q(A')‖``).
        """
        from .partition import Partition

        return Partition(self, key, keys)

    def join(
        self,
        other: "Queryable",
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result_selector: Callable[[Any, Any], Any] = lambda a, b: (a, b),
    ) -> "Queryable":
        """wPINQ's stable equi-join with per-key weight normalisation."""
        self._check_same_session(other)
        return self._wrap(
            JoinPlan(self._plan, other._plan, left_key, right_key, result_selector)
        )

    def union(self, other: "Queryable") -> "Queryable":
        """Element-wise maximum of weights."""
        self._check_same_session(other)
        return self._wrap(UnionPlan(self._plan, other._plan))

    def intersect(self, other: "Queryable") -> "Queryable":
        """Element-wise minimum of weights."""
        self._check_same_session(other)
        return self._wrap(IntersectPlan(self._plan, other._plan))

    def concat(self, other: "Queryable") -> "Queryable":
        """Element-wise sum of weights."""
        self._check_same_session(other)
        return self._wrap(ConcatPlan(self._plan, other._plan))

    def except_with(self, other: "Queryable") -> "Queryable":
        """Element-wise difference of weights."""
        self._check_same_session(other)
        return self._wrap(ExceptPlan(self._plan, other._plan))

    # ------------------------------------------------------------------
    # Privacy accounting
    # ------------------------------------------------------------------
    def source_uses(self) -> dict[str, int]:
        """How many times each protected source appears in the plan."""
        return dict(self._plan.source_multiplicities())

    def privacy_cost(self, epsilon: float) -> dict[str, float]:
        """ε charged to each protected source by a measurement at ``epsilon``.

        A source used ``k`` times is charged ``k·ε`` (Section 2.3).
        """
        epsilon = validate_epsilon(epsilon)
        return {name: count * epsilon for name, count in self.source_uses().items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, epsilon: float | None = None, verify: bool = False) -> str:
        """Render the plan as a readable tree with per-source multiplicities.

        Shared sub-plans (evaluated once per batch by every backend) are
        tagged and back-referenced; the footer lists the ε multiplicity each
        protected source would be charged at — with the concrete ``k·ε``
        amounts when ``epsilon`` is given.  Every node is annotated with the
        backend the session's executor will evaluate this plan on (``@eager``
        / ``@dataflow`` / ``@vectorized``), so the ``"auto"`` executor's
        size-based routing is inspectable.  ``verify=True`` adds the static
        stability/portability verification of :mod:`repro.lint.plans` (see
        :func:`~repro.core.plan.explain_plan`).  Also available from the
        shell as ``python -m repro explain <query> [--verify]``.
        """
        backend_for = getattr(self._session.executor, "backend_for", None)
        backend = backend_for(self._plan) if backend_for is not None else None
        return explain_plan(self._plan, epsilon, backend=backend, verify=verify)

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def noisy_count(self, epsilon: float, query_name: str = "") -> NoisyCountResult:
        """Release every record's weight with ``Laplace(1/ε)`` noise.

        Charges ``ε × multiplicity`` to every protected source used by the
        plan before touching any data; raises
        :class:`~repro.exceptions.BudgetExceededError` (charging nothing) if
        any budget is insufficient.  Implemented as a one-element
        :meth:`PrivacySession.measure` batch.
        """
        return self._session.measure((self, epsilon, query_name))[0]

    def noisy_sum(
        self,
        epsilon: float,
        value_selector: Callable[[Any], float] = lambda record: 1.0,
        clamp: float = 1.0,
        query_name: str = "",
    ) -> float:
        """Release a single clamped, weighted sum with Laplace noise."""
        costs = self.privacy_cost(epsilon)
        label = query_name or f"noisy_sum(eps={epsilon:g})"
        with self._session.measure_lock:
            self._session.ledger.charge(costs, description=label)
            exact = self._session.executor.evaluate(self._plan)
            return noisy_sum(
                exact, epsilon, value_selector, clamp=clamp, noise=self._session.noise
            )

    # ------------------------------------------------------------------
    # Escape hatch (no privacy!)
    # ------------------------------------------------------------------
    def evaluate_unprotected(self) -> WeightedDataset:
        """Evaluate the plan exactly, with **no noise and no budget charge**.

        This exists for testing, for documentation examples, and for running
        wPINQ queries against *public/synthetic* datasets inside the MCMC
        loop.  It must never be used to release results about protected data.
        """
        return self._session.executor.evaluate(self._plan)

    def __repr__(self) -> str:
        uses = ", ".join(f"{name}×{count}" for name, count in sorted(self.source_uses().items()))
        return f"<Queryable uses=[{uses}]>"
