"""Logical query plans.

A wPINQ query is a DAG of stable transformations rooted at one or more
protected sources.  :class:`Plan` nodes capture that DAG so the platform can

* evaluate the query eagerly against the protected data when a measurement is
  taken (:meth:`Plan.evaluate`),
* count how many times each protected source appears in the query
  (:meth:`Plan.source_multiplicities`) — the static analysis from Section 2.3
  that turns an ``ε``-DP aggregation into a ``k·ε`` charge for a source used
  ``k`` times, and
* be compiled into the incremental dataflow graph used by the MCMC engine
  (:mod:`repro.dataflow.engine`).

Plans are shared, immutable, and compared by identity: the expression
``temp.join(temp, ...)`` reuses a single plan object on both sides, which both
the eager evaluator (via memoisation) and the dataflow compiler (via node
reuse) exploit.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Sequence

from ..exceptions import PlanError
from .dataset import WeightedDataset
from . import transformations as xf

__all__ = [
    "Plan",
    "SourcePlan",
    "SelectPlan",
    "WherePlan",
    "SelectManyPlan",
    "GroupByPlan",
    "ShavePlan",
    "JoinPlan",
    "UnionPlan",
    "IntersectPlan",
    "ConcatPlan",
    "ExceptPlan",
    "DistinctPlan",
    "DownScalePlan",
]


class Plan:
    """Base class for logical plan nodes."""

    #: Child plans, in evaluation order.  Binary operators have two entries
    #: (which may be the same object for self-joins).
    children: tuple["Plan", ...] = ()

    def evaluate(
        self,
        environment: dict[str, WeightedDataset],
        memo: dict[int, WeightedDataset] | None = None,
    ) -> WeightedDataset:
        """Evaluate the plan against concrete datasets for every source.

        ``environment`` maps source names to :class:`WeightedDataset` values.
        Shared sub-plans are evaluated once thanks to the ``memo`` cache keyed
        by plan identity.
        """
        if memo is None:
            memo = {}
        key = id(self)
        if key not in memo:
            memo[key] = self._evaluate(environment, memo)
        return memo[key]

    def _evaluate(
        self,
        environment: dict[str, WeightedDataset],
        memo: dict[int, WeightedDataset],
    ) -> WeightedDataset:
        raise NotImplementedError

    def source_multiplicities(self) -> Counter:
        """Count how many times each protected source appears in the plan.

        This is the quantity ``k`` of Section 2.3: a measurement with
        parameter ``ε`` over this plan is ``k·ε``-differentially private for a
        source appearing ``k`` times.  Note that this intentionally counts
        *paths* from the root to each source leaf, not distinct leaf objects:
        reusing the same intermediate queryable twice reveals its source
        twice.
        """
        counts: Counter = Counter()
        self._accumulate_sources(counts)
        return counts

    def _accumulate_sources(self, counts: Counter) -> None:
        for child in self.children:
            child._accumulate_sources(counts)

    def source_names(self) -> set[str]:
        """The set of protected source names referenced by the plan."""
        return set(self.source_multiplicities())

    # Human-readable plan rendering (handy in error messages and docs).
    def describe(self, indent: int = 0) -> str:
        """Return an indented, human-readable rendering of the plan tree."""
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.source_names()))
        return f"<{type(self).__name__} sources=[{names}]>"


class SourcePlan(Plan):
    """A leaf referring to a named protected dataset."""

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise PlanError("source name must be a non-empty string")
        self.name = name

    def _evaluate(self, environment, memo):
        try:
            dataset = environment[self.name]
        except KeyError as exc:
            raise PlanError(f"no dataset bound for source {self.name!r}") from exc
        if not isinstance(dataset, WeightedDataset):
            raise PlanError(
                f"source {self.name!r} must be bound to a WeightedDataset, "
                f"got {type(dataset).__name__}"
            )
        return dataset

    def _accumulate_sources(self, counts: Counter) -> None:
        counts[self.name] += 1

    def _label(self) -> str:
        return f"Source({self.name})"


class _UnaryPlan(Plan):
    """Common machinery for single-input transformations."""

    def __init__(self, child: Plan) -> None:
        if not isinstance(child, Plan):
            raise PlanError(f"expected a Plan child, got {type(child).__name__}")
        self.child = child
        self.children = (child,)


class SelectPlan(_UnaryPlan):
    """Per-record mapping with weight accumulation (Section 2.4)."""

    def __init__(self, child: Plan, mapper: Callable[[Any], Any]) -> None:
        super().__init__(child)
        self.mapper = mapper

    def _evaluate(self, environment, memo):
        return xf.select(self.child.evaluate(environment, memo), self.mapper)


class WherePlan(_UnaryPlan):
    """Per-record filtering (Section 2.4)."""

    def __init__(self, child: Plan, predicate: Callable[[Any], bool]) -> None:
        super().__init__(child)
        self.predicate = predicate

    def _evaluate(self, environment, memo):
        return xf.where(self.child.evaluate(environment, memo), self.predicate)


class SelectManyPlan(_UnaryPlan):
    """One-to-many mapping with data-dependent rescaling (Section 2.4)."""

    def __init__(self, child: Plan, mapper: Callable[[Any], Any]) -> None:
        super().__init__(child)
        self.mapper = mapper

    def _evaluate(self, environment, memo):
        return xf.select_many(self.child.evaluate(environment, memo), self.mapper)


class GroupByPlan(_UnaryPlan):
    """Keyed grouping and reduction (Section 2.5)."""

    def __init__(
        self,
        child: Plan,
        key: Callable[[Any], Any],
        reducer: Callable[[Sequence[Any]], Any] = tuple,
    ) -> None:
        super().__init__(child)
        self.key = key
        self.reducer = reducer

    def _evaluate(self, environment, memo):
        return xf.group_by(self.child.evaluate(environment, memo), self.key, self.reducer)


class ShavePlan(_UnaryPlan):
    """Decompose heavy records into indexed unit slices (Section 2.8)."""

    def __init__(self, child: Plan, slice_weights: Any = 1.0) -> None:
        super().__init__(child)
        self.slice_weights = slice_weights

    def _evaluate(self, environment, memo):
        return xf.shave(self.child.evaluate(environment, memo), self.slice_weights)


class DistinctPlan(_UnaryPlan):
    """Cap every record's weight at a constant (PINQ's ``Distinct``)."""

    def __init__(self, child: Plan, cap: float = 1.0) -> None:
        super().__init__(child)
        cap = float(cap)
        if cap <= 0:
            raise PlanError("Distinct cap must be positive")
        self.cap = cap

    def _evaluate(self, environment, memo):
        return xf.distinct(self.child.evaluate(environment, memo), self.cap)

    def _label(self) -> str:
        return f"Distinct(cap={self.cap:g})"


class DownScalePlan(_UnaryPlan):
    """Uniformly scale every weight down by a constant in ``(0, 1]``."""

    def __init__(self, child: Plan, factor: float) -> None:
        super().__init__(child)
        factor = float(factor)
        if not 0.0 < factor <= 1.0:
            raise PlanError("DownScale factor must satisfy 0 < factor <= 1")
        self.factor = factor

    def _evaluate(self, environment, memo):
        return xf.down_scale(self.child.evaluate(environment, memo), self.factor)

    def _label(self) -> str:
        return f"DownScale(factor={self.factor:g})"


class _BinaryPlan(Plan):
    """Common machinery for two-input transformations."""

    def __init__(self, left: Plan, right: Plan) -> None:
        for side in (left, right):
            if not isinstance(side, Plan):
                raise PlanError(f"expected Plan operands, got {type(side).__name__}")
        self.left = left
        self.right = right
        self.children = (left, right)


class JoinPlan(_BinaryPlan):
    """wPINQ's weight-rescaling equi-join (Section 2.7)."""

    def __init__(
        self,
        left: Plan,
        right: Plan,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result_selector: Callable[[Any, Any], Any] = lambda a, b: (a, b),
    ) -> None:
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self.result_selector = result_selector

    def _evaluate(self, environment, memo):
        return xf.join(
            self.left.evaluate(environment, memo),
            self.right.evaluate(environment, memo),
            self.left_key,
            self.right_key,
            self.result_selector,
        )


class UnionPlan(_BinaryPlan):
    """Element-wise maximum of weights (Section 2.6)."""

    def _evaluate(self, environment, memo):
        return xf.union(
            self.left.evaluate(environment, memo), self.right.evaluate(environment, memo)
        )


class IntersectPlan(_BinaryPlan):
    """Element-wise minimum of weights (Section 2.6)."""

    def _evaluate(self, environment, memo):
        return xf.intersect(
            self.left.evaluate(environment, memo), self.right.evaluate(environment, memo)
        )


class ConcatPlan(_BinaryPlan):
    """Element-wise sum of weights (Section 2.6)."""

    def _evaluate(self, environment, memo):
        return xf.concat(
            self.left.evaluate(environment, memo), self.right.evaluate(environment, memo)
        )


class ExceptPlan(_BinaryPlan):
    """Element-wise difference of weights (Section 2.6)."""

    def _evaluate(self, environment, memo):
        return xf.except_(
            self.left.evaluate(environment, memo), self.right.evaluate(environment, memo)
        )
