"""Logical query plans.

A wPINQ query is a DAG of stable transformations rooted at one or more
protected sources.  :class:`Plan` nodes capture that DAG so the platform can

* be evaluated by an execution backend (:mod:`repro.core.executor`) — either
  the eager :class:`~repro.core.executor.EagerExecutor` or the incremental
  dataflow engine (:mod:`repro.dataflow.engine`),
* count how many times each protected source appears in the query
  (:meth:`Plan.source_multiplicities`) — the static analysis from Section 2.3
  that turns an ``ε``-DP aggregation into a ``k·ε`` charge for a source used
  ``k`` times, and
* render itself for introspection (:meth:`Plan.describe`,
  :func:`explain_plan`).

Plans are shared, immutable, and compared by identity: the expression
``temp.join(temp, ...)`` reuses a single plan object on both sides, which
every backend exploits — the eager executor via memoisation, the dataflow
compiler via node reuse.  :meth:`Plan.evaluate` remains as a thin
compatibility wrapper over a one-shot eager executor.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Sequence

from ..exceptions import PlanError
from .dataset import WeightedDataset
from . import transformations as xf

__all__ = [
    "Plan",
    "explain_plan",
    "SourcePlan",
    "SelectPlan",
    "WherePlan",
    "SelectManyPlan",
    "GroupByPlan",
    "ShavePlan",
    "JoinPlan",
    "UnionPlan",
    "IntersectPlan",
    "ConcatPlan",
    "ExceptPlan",
    "DistinctPlan",
    "DownScalePlan",
]


class Plan:
    """Base class for logical plan nodes."""

    #: Child plans, in evaluation order.  Binary operators have two entries
    #: (which may be the same object for self-joins).
    children: tuple["Plan", ...] = ()

    def evaluate(
        self,
        environment: dict[str, WeightedDataset],
        memo: dict[int, WeightedDataset] | None = None,
    ) -> WeightedDataset:
        """Evaluate the plan against concrete datasets for every source.

        Compatibility wrapper over a one-shot
        :class:`~repro.core.executor.EagerExecutor`; shared sub-plans are
        evaluated once thanks to the memo cache keyed by plan identity.  Code
        that evaluates many plans (or the same plan repeatedly) should hold an
        executor instead.
        """
        from .executor import EagerExecutor

        return EagerExecutor(environment, memo=memo).recurse(self)

    def _evaluate(self, executor) -> WeightedDataset:
        """Compute this node's output given an eager execution context.

        ``executor`` provides ``recurse(child)`` for memoised child evaluation
        and ``dataset(name)`` for source resolution.
        """
        raise NotImplementedError

    def source_multiplicities(self) -> Counter:
        """Count how many times each protected source appears in the plan.

        This is the quantity ``k`` of Section 2.3: a measurement with
        parameter ``ε`` over this plan is ``k·ε``-differentially private for a
        source appearing ``k`` times.  Note that this intentionally counts
        *paths* from the root to each source leaf, not distinct leaf objects:
        reusing the same intermediate queryable twice reveals its source
        twice.
        """
        counts: Counter = Counter()
        self._accumulate_sources(counts)
        return counts

    def _accumulate_sources(self, counts: Counter) -> None:
        for child in self.children:
            child._accumulate_sources(counts)

    def source_names(self) -> set[str]:
        """The set of protected source names referenced by the plan."""
        return set(self.source_multiplicities())

    # Human-readable plan rendering (handy in error messages and docs).
    def describe(self, indent: int = 0) -> str:
        """Return an indented, human-readable rendering of the plan tree."""
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.source_names()))
        return f"<{type(self).__name__} sources=[{names}]>"


class SourcePlan(Plan):
    """A leaf referring to a named protected dataset."""

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise PlanError("source name must be a non-empty string")
        self.name = name

    def _evaluate(self, executor):
        return executor.dataset(self.name)

    def _accumulate_sources(self, counts: Counter) -> None:
        counts[self.name] += 1

    def _label(self) -> str:
        return f"Source({self.name})"


class _UnaryPlan(Plan):
    """Common machinery for single-input transformations."""

    def __init__(self, child: Plan) -> None:
        if not isinstance(child, Plan):
            raise PlanError(f"expected a Plan child, got {type(child).__name__}")
        self.child = child
        self.children = (child,)


class SelectPlan(_UnaryPlan):
    """Per-record mapping with weight accumulation (Section 2.4)."""

    def __init__(self, child: Plan, mapper: Callable[[Any], Any]) -> None:
        super().__init__(child)
        self.mapper = mapper

    def _evaluate(self, executor):
        return xf.select(executor.recurse(self.child), self.mapper)


class WherePlan(_UnaryPlan):
    """Per-record filtering (Section 2.4)."""

    def __init__(self, child: Plan, predicate: Callable[[Any], bool]) -> None:
        super().__init__(child)
        self.predicate = predicate

    def _evaluate(self, executor):
        return xf.where(executor.recurse(self.child), self.predicate)


class SelectManyPlan(_UnaryPlan):
    """One-to-many mapping with data-dependent rescaling (Section 2.4)."""

    def __init__(self, child: Plan, mapper: Callable[[Any], Any]) -> None:
        super().__init__(child)
        self.mapper = mapper

    def _evaluate(self, executor):
        return xf.select_many(executor.recurse(self.child), self.mapper)


class GroupByPlan(_UnaryPlan):
    """Keyed grouping and reduction (Section 2.5)."""

    def __init__(
        self,
        child: Plan,
        key: Callable[[Any], Any],
        reducer: Callable[[Sequence[Any]], Any] = tuple,
    ) -> None:
        super().__init__(child)
        self.key = key
        self.reducer = reducer

    def _evaluate(self, executor):
        return xf.group_by(executor.recurse(self.child), self.key, self.reducer)


class ShavePlan(_UnaryPlan):
    """Decompose heavy records into indexed unit slices (Section 2.8)."""

    def __init__(self, child: Plan, slice_weights: Any = 1.0) -> None:
        super().__init__(child)
        self.slice_weights = slice_weights

    def _evaluate(self, executor):
        return xf.shave(executor.recurse(self.child), self.slice_weights)


class DistinctPlan(_UnaryPlan):
    """Cap every record's weight at a constant (PINQ's ``Distinct``)."""

    def __init__(self, child: Plan, cap: float = 1.0) -> None:
        super().__init__(child)
        cap = float(cap)
        if cap <= 0:
            raise PlanError("Distinct cap must be positive")
        self.cap = cap

    def _evaluate(self, executor):
        return xf.distinct(executor.recurse(self.child), self.cap)

    def _label(self) -> str:
        return f"Distinct(cap={self.cap:g})"


class DownScalePlan(_UnaryPlan):
    """Uniformly scale every weight down by a constant in ``(0, 1]``."""

    def __init__(self, child: Plan, factor: float) -> None:
        super().__init__(child)
        factor = float(factor)
        if not 0.0 < factor <= 1.0:
            raise PlanError("DownScale factor must satisfy 0 < factor <= 1")
        self.factor = factor

    def _evaluate(self, executor):
        return xf.down_scale(executor.recurse(self.child), self.factor)

    def _label(self) -> str:
        return f"DownScale(factor={self.factor:g})"


class _BinaryPlan(Plan):
    """Common machinery for two-input transformations."""

    def __init__(self, left: Plan, right: Plan) -> None:
        for side in (left, right):
            if not isinstance(side, Plan):
                raise PlanError(f"expected Plan operands, got {type(side).__name__}")
        self.left = left
        self.right = right
        self.children = (left, right)


class JoinPlan(_BinaryPlan):
    """wPINQ's weight-rescaling equi-join (Section 2.7)."""

    def __init__(
        self,
        left: Plan,
        right: Plan,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result_selector: Callable[[Any, Any], Any] = lambda a, b: (a, b),
    ) -> None:
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self.result_selector = result_selector

    def _evaluate(self, executor):
        return xf.join(
            executor.recurse(self.left),
            executor.recurse(self.right),
            self.left_key,
            self.right_key,
            self.result_selector,
        )


class UnionPlan(_BinaryPlan):
    """Element-wise maximum of weights (Section 2.6)."""

    def _evaluate(self, executor):
        return xf.union(executor.recurse(self.left), executor.recurse(self.right))


class IntersectPlan(_BinaryPlan):
    """Element-wise minimum of weights (Section 2.6)."""

    def _evaluate(self, executor):
        return xf.intersect(executor.recurse(self.left), executor.recurse(self.right))


class ConcatPlan(_BinaryPlan):
    """Element-wise sum of weights (Section 2.6)."""

    def _evaluate(self, executor):
        return xf.concat(executor.recurse(self.left), executor.recurse(self.right))


class ExceptPlan(_BinaryPlan):
    """Element-wise difference of weights (Section 2.6)."""

    def _evaluate(self, executor):
        return xf.except_(executor.recurse(self.left), executor.recurse(self.right))


def explain_plan(
    plan: Plan,
    epsilon: float | None = None,
    backend: str | None = None,
    verify: bool = False,
) -> str:
    """Render a plan as a readable tree annotated with privacy multiplicities.

    Sub-plans referenced more than once (the shared DAG nodes every execution
    backend evaluates a single time) are tagged ``#n`` on first appearance and
    rendered as a back-reference afterwards.  The footer lists, per protected
    source, the Section 2.3 multiplicity — and, when ``epsilon`` is supplied,
    the concrete charge ``k·ε`` a measurement at that ε would incur.

    ``backend`` (``"eager"``, ``"dataflow"`` or ``"vectorized"``) annotates
    every node with the execution backend that will evaluate it, making the
    ``"auto"`` executor's routing decisions inspectable.

    ``verify=True`` runs the static plan checker of :mod:`repro.lint.plans`:
    every node is annotated with its derived per-source stability bound, and
    a footer compares the ε the budget machinery would charge against what
    the bound requires, plus the portability verdict of the shard codec's
    analysis.  The default output is byte-identical to ``verify=False``.
    """
    if not isinstance(plan, Plan):
        raise PlanError(f"explain_plan expects a Plan, got {type(plan).__name__}")
    suffix = f" @{backend}" if backend else ""

    report = None
    if verify:
        # Imported lazily: repro.lint.plans imports this module.
        from ..lint.plans import format_bounds, verify_plan

        report = verify_plan(plan, epsilon)

    references: Counter = Counter()

    def count(node: Plan) -> None:
        references[id(node)] += 1
        if references[id(node)] == 1:
            for child in node.children:
                count(child)

    count(plan)
    shared_ids = {node_id for node_id, uses in references.items() if uses > 1}

    lines: list[str] = []
    tags: dict[int, int] = {}

    def render(node: Plan, depth: int) -> None:
        pad = "  " * depth
        node_id = id(node)
        if node_id in tags:
            lines.append(f"{pad}#{tags[node_id]} {node._label()} (shared, defined above)")
            return
        tag = ""
        if node_id in shared_ids:
            tags[node_id] = len(tags) + 1
            tag = f"  [#{tags[node_id]}]"
        bound = ""
        if report is not None:
            bound = f"  [stability: {format_bounds(report.node_bounds[node_id])}]"
        lines.append(f"{pad}{node._label()}{suffix}{tag}{bound}")
        for child in node.children:
            render(child, depth + 1)

    render(plan, 0)

    lines.append("")
    multiplicities = plan.source_multiplicities()
    if not multiplicities:
        lines.append("sources: (none)")
    else:
        lines.append("sources:")
        for name, uses in sorted(multiplicities.items()):
            note = f"  {name}: x{uses}"
            if epsilon is not None:
                note += f"  (measurement at eps={epsilon:g} charges {uses * epsilon:g})"
            else:
                note += f"  (a measurement at eps charges {uses}*eps)"
            lines.append(note)

    if report is not None:
        lines.append("")
        lines.append("static verification:")
        lines.append(f"  stability bound: {format_bounds(report.bounds) or '(no sources)'}")
        for name, bound in sorted(report.bounds.items()):
            uses = multiplicities.get(name, 0)
            if epsilon is None:
                lines.append(
                    f"  {name}: a measurement at eps must charge >= {bound:g}*eps "
                    f"(the budget machinery charges {uses}*eps)"
                )
                continue
            charged = uses * epsilon
            required = bound * epsilon
            issue = next(
                (
                    item
                    for item in report.issues
                    if item.kind.startswith("epsilon") and item.node == name
                ),
                None,
            )
            if issue is None:
                status = "OK"
            elif issue.kind == "epsilon-overcharge":
                status = "OK (conservative: DownScale tightens the bound)"
            else:
                status = "MISMATCH (under-protected)"
            lines.append(
                f"  {name}: charged {charged:g}, bound requires {required:g}"
                f"  -> {status}"
            )
        portability = [item for item in report.issues if item.kind == "unportable"]
        if not portability:
            lines.append("  portability: OK (plan can ship to shard workers)")
        else:
            lines.append(f"  portability: {len(portability)} issue(s)")
            for item in portability:
                lines.append(f"    - {item.message}")
    return "\n".join(lines)
