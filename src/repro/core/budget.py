"""Privacy budget accounting.

Differential privacy for weighted datasets composes sequentially: a sequence
of computations, each ``ε_i``-DP, is ``Σ_i ε_i``-DP (Section 2.1).  wPINQ uses
this to track the cumulative privacy cost of an analysis session and refuses
any measurement that would push a protected dataset past its budget.

A subtlety from Section 2.3: when a protected dataset appears ``k`` times in a
query plan (e.g. both sides of a self-join), an ``ε``-DP aggregation of the
plan's output is ``k·ε``-DP *for that dataset*.  The plan machinery counts
source multiplicities statically and the ledger here charges the multiple.

Thread safety
-------------
The ledger is the one component of the platform that must never be wrong, and
it is exercised from multiple threads (parallel MCMC chains, the concurrent
measurement service of :mod:`repro.service`).  Both classes therefore make
every check-then-act sequence atomic:

* :meth:`PrivacyBudget.charge` holds the budget's re-entrant lock across the
  affordability check and the debit, so concurrent charges can never jointly
  overspend ``total`` — one of two racing charges that together exceed the
  remaining budget is guaranteed to raise :class:`BudgetExceededError`.
* :meth:`BudgetLedger.charge` acquires the locks of *every* involved budget
  (in sorted name order, so two multi-source charges can never deadlock)
  before running its two-phase check-then-charge, making the multi-source
  transaction atomic even against concurrent direct
  :meth:`PrivacyBudget.charge` calls on the same budgets.

All read accessors (``spent``, ``remaining``, ``history``, ``report``) take a
consistent snapshot under the same locks.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import dataclass, field

from ..exceptions import BudgetExceededError, InvalidEpsilonError
from ..sanitize import ordered_rlock
from .laplace import validate_epsilon

__all__ = ["BudgetLedger", "PrivacyBudget"]


@dataclass
class _Charge:
    """One recorded budget expenditure (kept for auditing/reporting)."""

    epsilon: float
    description: str


def _budget_lock():
    """Per-scope budget lock; every PrivacyBudget instance is a peer.

    Sibling budgets are acquired together at one level by the sorted
    ``ExitStack`` discipline of :meth:`BudgetLedger.charge` (rule R002
    checks the sort order statically; ``peers`` licenses the same-level
    stack).
    """
    return ordered_rlock("core.budget", 60, peers=True)  # lock-order: 60 peers


@dataclass
class PrivacyBudget:
    """Tracks the privacy budget of a single protected dataset.

    Parameters
    ----------
    total:
        The total ``ε`` the data owner is willing to spend on this dataset.
        ``float('inf')`` disables enforcement (useful for unit tests and for
        the *synthetic* datasets MCMC manipulates, which are public).

    Instances are thread-safe: :meth:`charge` performs its affordability check
    and debit atomically under a re-entrant lock, so no interleaving of
    concurrent charges can spend more than ``total``.
    """

    total: float
    _spent: float = field(default=0.0, init=False)
    _charges: list[_Charge] = field(default_factory=list, init=False)
    _lock: threading.RLock = field(
        default_factory=_budget_lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.total != float("inf"):
            self.total = validate_epsilon(self.total)

    @property
    def lock(self) -> threading.RLock:
        """The re-entrant lock guarding this budget's state.

        Exposed so :class:`BudgetLedger` can hold it across a multi-source
        two-phase charge; it is re-entrant, so holding it while calling
        :meth:`charge` is safe.
        """
        return self._lock

    @property
    def spent(self) -> float:
        """Total ε consumed so far."""
        with self._lock:
            return self._spent

    @property
    def remaining(self) -> float:
        """ε still available for future measurements."""
        with self._lock:
            return self.total - self._spent

    def can_afford(self, epsilon: float) -> bool:
        """True if a charge of ``epsilon`` would stay within budget.

        Note that under concurrency the answer may be stale by the time the
        caller acts on it; :meth:`charge` re-checks under the lock, so use it
        (and catch :class:`BudgetExceededError`) rather than check-then-act.
        """
        epsilon = validate_epsilon(epsilon)
        # A tiny slack absorbs floating-point accumulation across many charges.
        return epsilon <= self.remaining + 1e-12

    def charge(self, epsilon: float, description: str = "") -> None:
        """Consume ``epsilon`` of budget, or raise without consuming anything.

        Check and debit happen atomically under the budget's lock.
        """
        epsilon = validate_epsilon(epsilon)
        with self._lock:
            if not self.can_afford(epsilon):
                raise BudgetExceededError(epsilon, self.remaining)
            self._spent += epsilon
            self._charges.append(_Charge(epsilon, description))

    def history(self) -> list[tuple[float, str]]:
        """Return the list of ``(epsilon, description)`` charges so far."""
        with self._lock:
            return [(charge.epsilon, charge.description) for charge in self._charges]

    # ------------------------------------------------------------------
    # Hooks for the durable ledger (repro.persistence.ledger)
    # ------------------------------------------------------------------
    def _sync_spent(self, spent: float) -> None:
        """Adopt an authoritative externally-committed spent total.

        Used by :class:`~repro.persistence.ledger.DurableLedger` to make the
        in-memory view track the durable store — which may include charges
        committed by other worker processes, or spend recovered from a
        previous incarnation.  Not part of the public API: callers must have
        durably committed the spend they are syncing to.
        """
        with self._lock:
            self._spent = float(spent)

    def _record_charge(self, epsilon: float, description: str) -> None:
        """Append a history entry without debiting (the debit came via
        :meth:`_sync_spent` from the durable store)."""
        with self._lock:
            self._charges.append(_Charge(epsilon, description))


class BudgetLedger:
    """Budget bookkeeping for several protected datasets at once.

    A single wPINQ query may reference multiple protected sources (e.g. a join
    of two private tables); a measurement must be affordable for *all* of them
    simultaneously, and is charged atomically — either every source is charged
    or none is.

    The ledger is thread-safe: registration is serialised, and
    :meth:`charge` holds every involved budget's lock (in sorted name order)
    across its check phase and its charge phase, so concurrent multi-source
    charges — and concurrent direct :meth:`PrivacyBudget.charge` calls — can
    never interleave into an overspend.
    """

    def __init__(self) -> None:
        self._budgets: dict[str, PrivacyBudget] = {}
        self._lock = ordered_rlock("core.ledger", 50)  # lock-order: 50

    def register(self, name: str, total_epsilon: float) -> PrivacyBudget:
        """Create (or idempotently fetch) the budget for a protected source.

        Re-registering an existing source with the *same* total is a no-op
        returning the existing budget; a *different* total raises
        :class:`InvalidEpsilonError` — silently keeping the first total would
        let a caller believe a larger (or smaller) budget is in force than
        the one actually enforced.
        """
        if total_epsilon != float("inf"):
            total_epsilon = validate_epsilon(total_epsilon)
        with self._lock:
            existing = self._budgets.get(name)
            if existing is not None:
                if existing.total != total_epsilon:
                    raise InvalidEpsilonError(
                        f"source {name!r} is already registered with total "
                        f"epsilon {existing.total:g}, refusing conflicting "
                        f"re-registration at {total_epsilon:g}"
                    )
                return existing
            budget = PrivacyBudget(total_epsilon)
            self._budgets[name] = budget
            return budget

    def budget_for(self, name: str) -> PrivacyBudget:
        """Return the budget registered under ``name``."""
        with self._lock:
            try:
                return self._budgets[name]
            except KeyError as exc:
                raise InvalidEpsilonError(
                    f"no budget registered for source {name!r}"
                ) from exc

    def charge(self, costs: dict[str, float], description: str = "") -> None:
        """Atomically charge each source its cost, or raise and charge nothing.

        The two-phase check-then-charge runs with every involved budget's
        lock held (acquired in sorted name order to rule out deadlock), so no
        concurrent charge can slip between the affordability checks and the
        debits.
        """
        validated = {name: validate_epsilon(cost) for name, cost in costs.items()}
        budgets = {name: self.budget_for(name) for name in validated}
        with ExitStack() as stack:
            for name in sorted(budgets):
                stack.enter_context(budgets[name].lock)
            for name, cost in validated.items():
                budget = budgets[name]
                if not budget.can_afford(cost):
                    raise BudgetExceededError(cost, budget.remaining, source=name)
            for name, cost in validated.items():
                budgets[name].charge(cost, description)

    def spent(self, name: str) -> float:
        """ε consumed so far by the named source."""
        return self.budget_for(name).spent

    def remaining(self, name: str) -> float:
        """ε still available for the named source."""
        return self.budget_for(name).remaining

    def report(self) -> dict[str, dict[str, float]]:
        """Summary of every registered source (total / spent / remaining).

        Every budget's lock is held for the read (sorted order, matching
        :meth:`charge`), so the snapshot is consistent: a concurrent
        multi-source charge is either fully visible or not at all.
        """
        with self._lock:
            budgets = dict(self._budgets)
        report: dict[str, dict[str, float]] = {}
        with ExitStack() as stack:
            for name in sorted(budgets):
                stack.enter_context(budgets[name].lock)
            for name, budget in budgets.items():
                report[name] = {
                    "total": budget.total,
                    "spent": budget.spent,
                    "remaining": budget.remaining,
                }
        return report
