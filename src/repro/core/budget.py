"""Privacy budget accounting.

Differential privacy for weighted datasets composes sequentially: a sequence
of computations, each ``ε_i``-DP, is ``Σ_i ε_i``-DP (Section 2.1).  wPINQ uses
this to track the cumulative privacy cost of an analysis session and refuses
any measurement that would push a protected dataset past its budget.

A subtlety from Section 2.3: when a protected dataset appears ``k`` times in a
query plan (e.g. both sides of a self-join), an ``ε``-DP aggregation of the
plan's output is ``k·ε``-DP *for that dataset*.  The plan machinery counts
source multiplicities statically and the ledger here charges the multiple.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import BudgetExceededError, InvalidEpsilonError
from .laplace import validate_epsilon

__all__ = ["BudgetLedger", "PrivacyBudget"]


@dataclass
class _Charge:
    """One recorded budget expenditure (kept for auditing/reporting)."""

    epsilon: float
    description: str


@dataclass
class PrivacyBudget:
    """Tracks the privacy budget of a single protected dataset.

    Parameters
    ----------
    total:
        The total ``ε`` the data owner is willing to spend on this dataset.
        ``float('inf')`` disables enforcement (useful for unit tests and for
        the *synthetic* datasets MCMC manipulates, which are public).
    """

    total: float
    _spent: float = field(default=0.0, init=False)
    _charges: list[_Charge] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.total != float("inf"):
            self.total = validate_epsilon(self.total)

    @property
    def spent(self) -> float:
        """Total ε consumed so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """ε still available for future measurements."""
        return self.total - self._spent

    def can_afford(self, epsilon: float) -> bool:
        """True if a charge of ``epsilon`` would stay within budget."""
        epsilon = validate_epsilon(epsilon)
        # A tiny slack absorbs floating-point accumulation across many charges.
        return epsilon <= self.remaining + 1e-12

    def charge(self, epsilon: float, description: str = "") -> None:
        """Consume ``epsilon`` of budget, or raise without consuming anything."""
        epsilon = validate_epsilon(epsilon)
        if not self.can_afford(epsilon):
            raise BudgetExceededError(epsilon, self.remaining)
        self._spent += epsilon
        self._charges.append(_Charge(epsilon, description))

    def history(self) -> list[tuple[float, str]]:
        """Return the list of ``(epsilon, description)`` charges so far."""
        return [(charge.epsilon, charge.description) for charge in self._charges]


class BudgetLedger:
    """Budget bookkeeping for several protected datasets at once.

    A single wPINQ query may reference multiple protected sources (e.g. a join
    of two private tables); a measurement must be affordable for *all* of them
    simultaneously, and is charged atomically — either every source is charged
    or none is.
    """

    def __init__(self) -> None:
        self._budgets: dict[str, PrivacyBudget] = {}

    def register(self, name: str, total_epsilon: float) -> PrivacyBudget:
        """Create (or fetch) the budget for a protected source."""
        if name in self._budgets:
            return self._budgets[name]
        budget = PrivacyBudget(total_epsilon)
        self._budgets[name] = budget
        return budget

    def budget_for(self, name: str) -> PrivacyBudget:
        """Return the budget registered under ``name``."""
        try:
            return self._budgets[name]
        except KeyError as exc:
            raise InvalidEpsilonError(f"no budget registered for source {name!r}") from exc

    def charge(self, costs: dict[str, float], description: str = "") -> None:
        """Atomically charge each source its cost, or raise and charge nothing."""
        validated = {name: validate_epsilon(cost) for name, cost in costs.items()}
        for name, cost in validated.items():
            budget = self.budget_for(name)
            if not budget.can_afford(cost):
                raise BudgetExceededError(cost, budget.remaining, source=name)
        for name, cost in validated.items():
            self._budgets[name].charge(cost, description)

    def spent(self, name: str) -> float:
        """ε consumed so far by the named source."""
        return self.budget_for(name).spent

    def remaining(self, name: str) -> float:
        """ε still available for the named source."""
        return self.budget_for(name).remaining

    def report(self) -> dict[str, dict[str, float]]:
        """Summary of every registered source (total / spent / remaining)."""
        return {
            name: {
                "total": budget.total,
                "spent": budget.spent,
                "remaining": budget.remaining,
            }
            for name, budget in self._budgets.items()
        }
