"""Differentially private aggregations.

The workhorse is :class:`NoisyCountResult`, the object returned by
``Queryable.noisy_count(ε)``.  It realises the "noisy histogram" of
Section 2.2: every record of the (transformed) dataset is released with
independent ``Laplace(1/ε)`` noise added to its weight.  Two details matter:

* the noise scale is *not* a function of query sensitivity — the stable
  transformations already re-scaled record weights so unit-scale noise
  suffices;
* to remain private, a value must be available for *every* record in the
  (unbounded) domain, including records with zero weight.  The result object
  therefore materialises noisy values for the records that actually carry
  weight, and lazily draws — then memoises — fresh noise for any other record
  the analyst (or the MCMC scorer) asks about.

Noisy sums/averages and the exponential mechanism, which the paper notes
generalise directly to weighted datasets, are also provided.
"""

from __future__ import annotations

import decimal
import numbers
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .dataset import WeightedDataset
from .laplace import LaplaceNoise, validate_epsilon

__all__ = [
    "NoisyCountResult",
    "noisy_sum",
    "noisy_average",
    "noisy_median",
    "exponential_mechanism",
]


def _canonical_token(value: Any) -> str:
    """Content-stable token for the canonical noise-draw order.

    Three normalisations make the token a function of record *equality*
    rather than of any particular representative object or memory layout:

    * real numbers — ``bool``/``int``/``float`` and their NumPy kin, matched
      through the :mod:`numbers` ABCs because all of them dict-unify — render
      integral values as exact integer text (no precision loss for ints
      beyond 2⁵³) and everything else as the float repr, so the ``==``-equal
      ``1``/``1.0``/``True``/``np.int64(1)`` — a single dict entry whichever
      representative a backend happened to keep — always sort identically;
    * tuples (including subclasses such as namedtuples, which ``==``-equal
      plain tuples) recurse, so the rule reaches nested fields;
    * a value whose class inherits ``object.__repr__`` has an address-based
      repr that changes between runs, so it contributes no content — such
      records keep their backend iteration order (the tied key plus Python's
      stable sort), exactly the pre-canonicalisation behaviour.
    """
    if isinstance(value, tuple):
        return "(" + ",".join(_canonical_token(element) for element in value) + ")"
    if isinstance(value, numbers.Integral):
        return repr(int(value))
    if isinstance(value, (numbers.Real, decimal.Decimal)):
        # Use the float token only when the value ==-unifies with that float
        # (exactly representable); exact rationals beyond float precision —
        # Fraction(1, 3), Decimal('0.1') — are NOT ==-equal to their float
        # approximations and must not share its token.
        try:
            as_float = float(value)
        except OverflowError:
            as_float = None
        if as_float is not None and value == as_float:
            return (
                repr(int(as_float)) if as_float.is_integer() else repr(as_float)
            )
        if isinstance(value, decimal.Decimal):
            # ==-equal Decimals can differ in repr (0.10 vs 0.1): normalise.
            return f"Decimal:{value.normalize()}"
        return repr(value)
    if type(value).__repr__ is object.__repr__:
        return ""
    return repr(value)


def _canonical_sort_key(item: tuple[Any, float]) -> str:
    return _canonical_token(item[0])


class NoisyCountResult:
    """Released noisy weights for a wPINQ query.

    The protected data is consulted exactly once, at construction time, to
    read the true weights of records with non-zero weight.  After that the
    object is safe to share: values for unseen records are pure noise
    (true weight zero) drawn on demand and memoised so repeated queries for
    the same record are answered consistently.

    Parameters
    ----------
    exact:
        The exact transformed dataset ``Q(A)`` (only consulted at
        construction).
    epsilon:
        Noise parameter; each value receives ``Laplace(1/ε)`` noise.
    noise:
        The noise source to draw from.
    plan, query_name:
        Optional metadata recorded so that downstream probabilistic inference
        can re-evaluate the same query on synthetic data.
    """

    def __init__(
        self,
        exact: WeightedDataset,
        epsilon: float,
        noise: LaplaceNoise | None = None,
        plan=None,
        query_name: str = "",
    ) -> None:
        self._epsilon = validate_epsilon(epsilon)
        self._noise = noise if noise is not None else LaplaceNoise()
        self._plan = plan
        self.query_name = query_name
        self._values: dict[Any, float] = {}
        # Draw noise in a canonical (repr-sorted) record order rather than the
        # dataset's iteration order.  Iteration order is an artifact of how a
        # backend materialised Q(A) — eager dict insertion vs columnar code
        # order — so sorting makes the record→noise assignment a function of
        # the record *set* alone: under a fixed seed every execution backend
        # releases identical measurements.
        for record, weight in sorted(exact.items(), key=_canonical_sort_key):
            self._values[record] = weight + self._noise.sample(self._epsilon)
        self._observed = set(self._values)

    @classmethod
    def from_released(
        cls,
        values: "dict[Any, float] | list[tuple[Any, float]]",
        epsilon: float,
        noise: LaplaceNoise | None = None,
        plan=None,
        query_name: str = "",
    ) -> "NoisyCountResult":
        """Rehydrate a previously *released* measurement without data access.

        Used by the durable answer store: the noisy values were drawn and
        published by an earlier incarnation of the service, so replaying them
        verbatim reveals nothing new and costs no budget.  The protected data
        is never consulted — values for records outside ``values`` are pure
        noise drawn on demand, exactly as for a live result.
        """
        result = cls.__new__(cls)
        result._epsilon = validate_epsilon(epsilon)
        result._noise = noise if noise is not None else LaplaceNoise()
        result._plan = plan
        result.query_name = query_name
        result._values = dict(values)
        result._observed = set(result._values)
        return result

    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """The ε used for this measurement."""
        return self._epsilon

    @property
    def plan(self):
        """The logical plan this measurement was taken over (may be None)."""
        return self._plan

    def value(self, record: Any) -> float:
        """Noisy weight of ``record`` (drawing fresh noise if never seen)."""
        if record not in self._values:
            self._values[record] = self._noise.sample(self._epsilon)
        return self._values[record]

    def __getitem__(self, record: Any) -> float:
        return self.value(record)

    def __contains__(self, record: Any) -> bool:
        return record in self._values

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def observed_records(self) -> set[Any]:
        """Records whose value has been released so far.

        Contains the support of the measured dataset plus any additional
        records the analyst explicitly asked about.
        """
        return set(self._values)

    def items(self) -> Iterator[tuple[Any, float]]:
        """Iterate over ``(record, noisy weight)`` pairs released so far."""
        return iter(self._values.items())

    def to_dict(self) -> dict[Any, float]:
        """Copy of the released values."""
        return dict(self._values)

    def total(self) -> float:
        """Sum of all released noisy weights (a common post-processing step)."""
        return sum(self._values.values())

    def as_weighted_dataset(self) -> WeightedDataset:
        """The released values viewed as a (noisy, possibly negative) dataset."""
        return WeightedDataset(self._values)

    def l1_distance_to(self, candidate: WeightedDataset) -> float:
        """``‖Q(synthetic) − m‖₁`` over the union of supports.

        Used by probabilistic inference (Section 4.1): records present in the
        candidate output but never measured are compared against a freshly
        drawn (then memoised) noisy zero, exactly as the platform would have
        answered had the analyst asked for them.
        """
        total = 0.0
        for record, weight in candidate.items():
            total += abs(weight - self.value(record))
        for record, value in self._values.items():
            if record not in candidate:
                total += abs(value)
        return total

    def __repr__(self) -> str:
        name = f" {self.query_name!r}" if self.query_name else ""
        return (
            f"<NoisyCountResult{name} epsilon={self._epsilon:g} "
            f"records={len(self._values)}>"
        )


def noisy_sum(
    dataset: WeightedDataset,
    epsilon: float,
    value_selector: Callable[[Any], float] = lambda record: 1.0,
    clamp: float = 1.0,
    noise: LaplaceNoise | None = None,
) -> float:
    """ε-DP weighted sum ``Σ_x A(x) · clip(f(x), ±clamp)`` + ``Laplace(clamp/ε)``.

    A unit change in the weight of any record changes the true sum by at most
    ``clamp``, so Laplace noise of scale ``clamp/ε`` provides ε-differential
    privacy with respect to ``‖A − A'‖``.
    """
    epsilon = validate_epsilon(epsilon)
    clamp = float(clamp)
    if clamp <= 0:
        raise ValueError("clamp must be positive")
    noise = noise if noise is not None else LaplaceNoise()
    total = 0.0
    for record, weight in dataset.items():
        value = float(value_selector(record))
        value = max(-clamp, min(clamp, value))
        total += weight * value
    return total + noise.sample(epsilon / clamp)


def noisy_average(
    dataset: WeightedDataset,
    epsilon: float,
    value_selector: Callable[[Any], float],
    clamp: float = 1.0,
    noise: LaplaceNoise | None = None,
) -> float:
    """ε-DP average of clamped record values.

    The budget is split evenly between a noisy numerator (clamped weighted
    sum) and a noisy denominator (total weight); the denominator is floored at
    a small positive constant so the ratio is always defined.
    """
    epsilon = validate_epsilon(epsilon)
    noise = noise if noise is not None else LaplaceNoise()
    numerator = noisy_sum(dataset, epsilon / 2.0, value_selector, clamp=clamp, noise=noise)
    denominator = noisy_sum(dataset, epsilon / 2.0, lambda record: 1.0, clamp=1.0, noise=noise)
    return numerator / max(denominator, 1e-6)


def noisy_median(
    dataset: WeightedDataset,
    epsilon: float,
    value_selector: Callable[[Any], float] = lambda record: float(record),
    candidates: Sequence[float] | None = None,
    rng: np.random.Generator | int | None = None,
) -> float:
    """ε-DP weighted median via the exponential mechanism.

    The utility of a candidate value ``c`` is the negated absolute difference
    between the total weight of records whose value falls below ``c`` and the
    total weight of those above it.  A unit change in any record's weight
    moves either side of that difference by at most one, so the utility is
    1-Lipschitz in ``‖·‖`` and the exponential mechanism applies directly —
    this is one of the aggregations the paper notes "generalize easily to
    weighted datasets" (Section 2.2).

    ``candidates`` defaults to the distinct values observed in the dataset;
    supplying an explicit, data-independent grid gives a cleaner privacy story
    when the value domain is known a priori.
    """
    values = {record: float(value_selector(record)) for record in dataset.records()}
    if candidates is None:
        candidate_values = sorted(set(values.values()))
    else:
        candidate_values = sorted(float(candidate) for candidate in candidates)
    if not candidate_values:
        raise ValueError("noisy_median requires at least one candidate value")

    def utility(candidate: float, data: WeightedDataset) -> float:
        below = sum(
            weight for record, weight in data.items() if values.get(record, float(value_selector(record))) < candidate
        )
        above = sum(
            weight for record, weight in data.items() if values.get(record, float(value_selector(record))) > candidate
        )
        return -abs(below - above)

    return float(
        exponential_mechanism(dataset, candidate_values, utility, epsilon, rng=rng)
    )


def exponential_mechanism(
    dataset: WeightedDataset,
    candidates: Sequence[Any],
    score: Callable[[Any, WeightedDataset], float],
    epsilon: float,
    rng: np.random.Generator | int | None = None,
) -> Any:
    """Select a candidate with probability ``∝ exp(ε · score / 2)``.

    ``score(candidate, dataset)`` must be 1-Lipschitz in the dataset with
    respect to ``‖·‖`` (the paper's generalisation of the McSherry–Talwar
    mechanism to weighted data).  Scores are shifted by their maximum before
    exponentiation for numerical stability.
    """
    epsilon = validate_epsilon(epsilon)
    candidates = list(candidates)
    if not candidates:
        raise ValueError("exponential_mechanism requires at least one candidate")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    scores = np.array([float(score(candidate, dataset)) for candidate in candidates])
    logits = (epsilon / 2.0) * scores
    logits -= logits.max()
    probabilities = np.exp(logits)
    probabilities /= probabilities.sum()
    index = int(rng.choice(len(candidates), p=probabilities))
    return candidates[index]
