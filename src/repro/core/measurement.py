"""Batched differentially private measurements.

:meth:`repro.core.queryable.PrivacySession.measure` is the one entry point
through which measurements reach the protected data.  It accepts any number of
``(queryable, epsilon)`` requests and processes them as a single unit:

1. **Atomic budget charging.**  The per-source cost of the whole batch is
   computed up front — sequential composition (``Σ εᵢ × multiplicity``,
   Section 2.3) for ordinary queryables, parallel composition (the increase of
   the per-group running maximum, Section 2.3 / PINQ's ``Partition``) for
   requests over partition parts — and charged against every budget in one
   atomic ledger transaction.  If *any* source cannot afford the batch,
   nothing is charged and no data is touched.

2. **Shared-sub-plan evaluation.**  All plans are handed to the session's
   :class:`~repro.core.executor.Executor` as one batch, so a sub-plan shared
   by several requests (``length_two_paths``, a degree table, the symmetric
   edge set) is evaluated exactly once per batch regardless of how many
   measurements reference it.

3. **Noise.**  Each request's exact output is released through an independent
   :class:`~repro.core.aggregation.NoisyCountResult`, in request order, so a
   batch is distributionally identical to the same measurements taken one by
   one (and bit-for-bit identical under a fixed seed with the eager backend).

``Queryable.noisy_count`` is a one-element batch, so all existing analyst code
keeps its exact semantics.

:func:`execute_batch` always runs under the session's
:attr:`~repro.core.queryable.PrivacySession.measure_lock` (taken by
``PrivacySession.measure``), so the whole pipeline — ledger charge, partition
group commits, executor evaluation, noise draws — is atomic with respect to
other threads measuring the same session; the measurement service
(:mod:`repro.service`) builds its request fusion on exactly this guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from ..exceptions import PlanError
from .aggregation import NoisyCountResult
from .laplace import validate_epsilon

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .queryable import Queryable

__all__ = ["MeasurementRequest", "MeasurementSet", "execute_batch"]


@dataclass(frozen=True)
class MeasurementRequest:
    """One measurement of a batch: a queryable, its ε, and an optional name."""

    queryable: "Queryable"
    epsilon: float
    query_name: str = ""

    @property
    def label(self) -> str:
        """The ledger description used for this request."""
        return self.query_name or f"noisy_count(eps={self.epsilon:g})"


def as_request(item: Any) -> MeasurementRequest:
    """Coerce ``(queryable, ε)`` / ``(queryable, ε, name)`` tuples to requests."""
    from .queryable import Queryable

    if isinstance(item, MeasurementRequest):
        request = item
    elif isinstance(item, tuple) and len(item) in (2, 3):
        request = MeasurementRequest(*item)
    else:
        raise PlanError(
            "measure() accepts MeasurementRequest objects or "
            "(queryable, epsilon[, name]) tuples, got "
            f"{type(item).__name__}"
        )
    if not isinstance(request.queryable, Queryable):
        raise PlanError(
            f"measurement target must be a Queryable, got "
            f"{type(request.queryable).__name__}"
        )
    epsilon = validate_epsilon(request.epsilon)
    if epsilon != request.epsilon:
        request = MeasurementRequest(request.queryable, epsilon, request.query_name)
    return request


class MeasurementSet(Sequence[NoisyCountResult]):
    """The released results of one :meth:`PrivacySession.measure` batch.

    Behaves as a sequence in request order; named requests are additionally
    reachable through :meth:`by_name`.  :attr:`charged` records the per-source
    ε the whole batch cost (after parallel-composition discounts).
    """

    def __init__(
        self,
        requests: Sequence[MeasurementRequest],
        results: Sequence[NoisyCountResult],
        charged: dict[str, float],
    ) -> None:
        self._requests = list(requests)
        self._results = list(results)
        self.charged = dict(charged)

    def __getitem__(self, index):
        return self._results[index]

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[NoisyCountResult]:
        return iter(self._results)

    @property
    def requests(self) -> list[MeasurementRequest]:
        """The normalised requests, in the order they were issued."""
        return list(self._requests)

    @property
    def results(self) -> list[NoisyCountResult]:
        """The released results, in request order."""
        return list(self._results)

    def by_name(self) -> dict[str, NoisyCountResult]:
        """Map each named request to its result (unnamed requests omitted)."""
        return {
            request.query_name: result
            for request, result in zip(self._requests, self._results)
            if request.query_name
        }

    def total_epsilon(self) -> dict[str, float]:
        """Alias for :attr:`charged` (per-source ε consumed by this batch)."""
        return dict(self.charged)

    def __repr__(self) -> str:
        names = ", ".join(request.label for request in self._requests)
        return f"<MeasurementSet n={len(self._results)} [{names}]>"


def execute_batch(session, items: Sequence[Any]) -> MeasurementSet:
    """Charge, evaluate and release a batch of measurements for ``session``.

    This is the implementation behind :meth:`PrivacySession.measure`; see the
    module docstring for the composition rules.
    """
    from .partition import PartQueryable

    requests = [as_request(item) for item in items]
    for request in requests:
        if request.queryable.session is not session:
            raise PlanError(
                "cannot measure a queryable from a different privacy session"
            )
    if not requests:
        return MeasurementSet([], [], {})

    # ------------------------------------------------------------------
    # 1. Cost the whole batch: sequential composition for direct requests,
    #    parallel (max) composition per partition group.
    # ------------------------------------------------------------------
    costs: dict[str, float] = {}
    group_pending: dict[int, dict[Any, float]] = {}
    group_requests: dict[int, list[tuple[Any, float]]] = {}
    groups: dict[int, Any] = {}

    for request in requests:
        queryable = request.queryable
        if isinstance(queryable, PartQueryable):
            group = queryable.partition_group
            groups[id(group)] = group
            group_requests.setdefault(id(group), []).append(
                (queryable.plan, request.epsilon)
            )
        else:
            for name, uses in queryable.plan.source_multiplicities().items():
                costs[name] = costs.get(name, 0.0) + uses * request.epsilon

    group_costs: dict[int, dict[str, float]] = {}
    for group_id, measured in group_requests.items():
        group = groups[group_id]
        direct, pending, increase_costs = group.pending_batch(measured)
        group_pending[group_id] = pending
        # Direct uses reach sources without passing through this group's
        # partition nodes and compose sequentially, like any other request.
        group_costs[group_id] = group._merge_costs(direct, increase_costs)
        for name, cost in group_costs[group_id].items():
            costs[name] = costs.get(name, 0.0) + cost

    costs = {name: cost for name, cost in costs.items() if cost > 0.0}

    # ------------------------------------------------------------------
    # 2. One atomic ledger transaction for the whole batch.
    # ------------------------------------------------------------------
    if len(requests) == 1:
        description = requests[0].label
    else:
        description = (
            f"measure[{len(requests)}]: "
            + ", ".join(request.label for request in requests)
        )
    if costs:
        session.ledger.charge(costs, description=description)
    for group_id, pending in group_pending.items():
        groups[group_id].commit_pending(pending, group_costs[group_id])

    # ------------------------------------------------------------------
    # 3. Evaluate every plan in one executor batch (shared sub-plans once),
    #    then draw noise per request, in request order.
    # ------------------------------------------------------------------
    exacts = session.executor.evaluate_many(
        [request.queryable.plan for request in requests]
    )
    results = [
        NoisyCountResult(
            exact,
            request.epsilon,
            noise=session.noise,
            plan=request.queryable.plan,
            query_name=request.query_name,
        )
        for request, exact in zip(requests, exacts)
    ]
    return MeasurementSet(requests, results, costs)
