"""Command-line interface for regenerating the paper's experiments.

Every table and figure of the evaluation (plus the two ablations) can be
produced from the shell without writing any Python::

    python -m repro table1
    python -m repro figure4 --scale 0.5 --steps 2.0
    python -m repro list

``--scale`` and ``--steps`` multiply the per-experiment default graph sizes
and MCMC lengths exactly like the ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_STEPS``
environment variables used by the benchmark suite; ``--epsilon``, ``--pow``
and ``--seed`` override the corresponding experiment parameters.

The introspection half of the query API is also exposed::

    python -m repro explain            # list the named queries
    python -m repro explain tbd        # plan tree + per-source multiplicities
    python -m repro explain jdd --epsilon 0.1
    python -m repro explain tbi --executor auto --rows 5000   # backend routing
    python -m repro explain tbd --verify --epsilon 0.1        # static stability check

so is the static analyzer (see README "Static analysis & privacy
invariants")::

    python -m repro lint                        # AST rules over src/repro
    python -m repro lint path/to/code --strict  # any finding fails
    python -m repro lint --plans                # verify every named query plan
    python -m repro lint --baseline lint-baseline.json --write-baseline

and the execution-backend comparison harness::

    python -m repro bench                       # eager vs dataflow vs vectorized
    python -m repro bench --edges 10000 --out BENCH_columnar.json

as well as the concurrent measurement service (see README "Serving
measurements")::

    python -m repro serve --port 8080 --serve-workers 8
    python -m repro serve --ledger ledger.db --workers 4 --rate 50
    python -m repro serve --ledger ledger.db --deadline-ms 2000 --breaker-threshold 5

and the randomized chaos harness (see README "Failure model & degraded
modes")::

    python -m repro chaos --seed 1234 --steps 50
    python -m repro chaos --seed 1234 --steps 50 --workers 2   # kill-cycles
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .experiments import (
    ExperimentConfig,
    combined_measurements_ablation,
    default_config,
    degree_sequence_ablation,
    figure1_comparison,
    figure3_tbd_bucketing,
    figure4_tbi_fitting,
    figure5_epsilon_sensitivity,
    figure6_scalability,
    format_series,
    format_table,
    jdd_accuracy_ablation,
    smooth_sensitivity_ablation,
    table1_graph_statistics,
    table2_tbi_triangles,
    table3_barabasi,
)

__all__ = ["main", "build_parser", "EXPERIMENTS", "EXPLAIN_QUERIES"]


def _run_figure1(config: ExperimentConfig) -> str:
    rows = figure1_comparison(epsilon=config.epsilon, seed=config.seed)
    return format_table(
        ["graph", "mechanism", "true triangles", "mean estimate", "mean |error|"],
        rows,
        title="Figure 1 — worst-case noise vs weighted records",
    )


def _run_table1(config: ExperimentConfig) -> str:
    rows = table1_graph_statistics(config)
    return format_table(
        ["graph", "nodes", "edges", "dmax", "triangles", "assortativity r"],
        rows,
        title="Table 1 — stand-in graph statistics",
    )


def _run_figure3(config: ExperimentConfig) -> str:
    results = figure3_tbd_bucketing(config)
    blocks = [
        format_table(
            ["configuration", "true triangles", "seed", "final", "final r"],
            [
                (r.label, r.true_triangles, r.seed_triangles, r.final_triangles, r.final_assortativity)
                for r in results
            ],
            title="Figure 3 — TbD-driven MCMC with/without bucketing",
        )
    ]
    blocks.extend(
        format_series(f"{r.label}: triangles", zip(r.steps, r.triangles)) for r in results
    )
    return "\n\n".join(blocks)


def _run_table2(config: ExperimentConfig) -> str:
    rows = table2_tbi_triangles(config)
    return format_table(
        ["graph", "seed triangles", "after TbI MCMC", "true triangles"],
        rows,
        title="Table 2 — TbI-driven synthesis",
    )


def _run_figure4(config: ExperimentConfig) -> str:
    results = figure4_tbi_fitting(config)
    blocks = [
        format_table(
            ["configuration", "true triangles", "seed", "final"],
            [(r.label, r.true_triangles, r.seed_triangles, r.final_triangles) for r in results],
            title="Figure 4 — TbI-driven MCMC, real vs random",
        )
    ]
    blocks.extend(
        format_series(f"{r.label}: triangles", zip(r.steps, r.triangles)) for r in results
    )
    return "\n\n".join(blocks)


def _run_figure5(config: ExperimentConfig) -> str:
    rows = figure5_epsilon_sensitivity(config)
    return format_table(
        ["epsilon", "mean final triangles", "std", "true triangles"],
        rows,
        title="Figure 5 — sensitivity to epsilon",
    )


def _run_table3(config: ExperimentConfig) -> str:
    rows = table3_barabasi(config)
    return format_table(
        ["beta", "nodes", "edges", "dmax", "triangles", "sum d^2"],
        rows,
        title="Table 3 — Barabasi-Albert sweep",
    )


def _run_figure6(config: ExperimentConfig) -> str:
    results = figure6_scalability(config)
    return format_table(
        ["workload", "sum d^2", "state entries", "peak MB", "MCMC steps/s"],
        [
            (
                r["label"],
                int(r["degree_sum_of_squares"]),
                int(r["state_entries"]),
                r["peak_memory_mb"],
                r["steps_per_second"],
            )
            for r in results
        ],
        title="Figure 6 — scalability of the incremental engine",
    )


def _run_jdd_ablation(config: ExperimentConfig) -> str:
    rows = jdd_accuracy_ablation(config)
    return format_table(
        ["approach", "mean |error| per occupied pair"],
        rows,
        title="Section 3.2 ablation — JDD accuracy",
    )


def _run_degree_ablation(config: ExperimentConfig) -> str:
    rows = degree_sequence_ablation(config)
    return format_table(
        ["approach", "mean |error| per rank"],
        rows,
        title="Section 3.1 ablation — degree sequence accuracy",
    )


def _run_smooth_ablation(config: ExperimentConfig) -> str:
    rows = smooth_sensitivity_ablation(
        nodes=max(200, int(400 * config.graph_scale)), seed=config.seed
    )
    return format_table(
        ["graph", "mechanism", "target value", "noise scale", "mean relative error"],
        rows,
        title="Section 1.1 ablation — smooth sensitivity vs weighted records",
    )


def _run_combined_ablation(config: ExperimentConfig) -> str:
    rows = combined_measurements_ablation(config)
    return format_table(
        ["configuration", "seed triangles", "final triangles", "true triangles"],
        rows,
        title="Section 1.2 ablation — combining TbI with the JDD",
    )


#: Experiment name -> (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentConfig], str]]] = {
    "figure1": ("worst-case vs weighted triangle counting", _run_figure1),
    "table1": ("evaluation graph statistics", _run_table1),
    "figure3": ("TbD-driven MCMC with/without bucketing", _run_figure3),
    "table2": ("triangles: seed / after TbI MCMC / truth", _run_table2),
    "figure4": ("TbI-driven MCMC trajectories, real vs random", _run_figure4),
    "figure5": ("sensitivity of TbI synthesis to epsilon", _run_figure5),
    "table3": ("Barabasi-Albert graphs for the scaling study", _run_table3),
    "figure6": ("memory and throughput vs sum of squared degrees", _run_figure6),
    "jdd-ablation": ("wPINQ JDD query vs Sala et al.", _run_jdd_ablation),
    "degree-ablation": ("degree-sequence post-processing comparison", _run_degree_ablation),
    "smooth-ablation": ("smooth sensitivity vs weighted records (Section 1.1)", _run_smooth_ablation),
    "combined-ablation": ("fitting TbI together with the JDD (Section 1.2)", _run_combined_ablation),
}


#: Named queries available to ``repro explain``: name -> (description, builder).
EXPLAIN_QUERIES: dict[str, tuple[str, Callable]] = {}


def _register_explain_queries() -> None:
    """Populate EXPLAIN_QUERIES lazily (analyses import graph machinery)."""
    if EXPLAIN_QUERIES:
        return
    from . import analyses

    EXPLAIN_QUERIES.update(
        {
            "degree-ccdf": ("degree CCDF (Section 3.1)", analyses.degree_ccdf_query),
            "degree-sequence": (
                "non-increasing degree sequence (Section 3.1)",
                analyses.degree_sequence_query,
            ),
            "node-count": ("half node count (Section 2.8)", analyses.node_count_query),
            "jdd": ("joint degree distribution (Section 3.2)", analyses.joint_degree_query),
            "tbd": ("triangles by degree (Section 3.3)", analyses.triangles_by_degree_query),
            "tbi": ("triangles by intersect (Section 5.3)", analyses.triangles_by_intersect_query),
            "wedges": ("wedge count", analyses.wedges_query),
            "sbd": ("squares by degree", analyses.squares_by_degree_query),
            "stars": ("star degree histogram", analyses.star_degree_query),
        }
    )


def _run_explain(
    query: str | None,
    epsilon: float | None,
    executor: str = "eager",
    rows: int = 0,
    verify: bool = False,
) -> int:
    """Print the plan tree of a named analysis query (``repro explain``).

    Every node is annotated with the backend the chosen ``--executor`` would
    evaluate the plan on; ``--rows`` registers that many synthetic edge
    records so the size-based routing of ``--executor auto`` is visible.
    ``--verify`` appends the static stability bounds, the ε-consistency
    verdict and the shard-portability check from :mod:`repro.lint.plans`.
    """
    from .core import PrivacySession

    _register_explain_queries()
    if query is None:
        width = max(len(name) for name in EXPLAIN_QUERIES)
        print(
            "usage: repro explain <query> [--epsilon E] [--executor NAME] "
            "[--rows N] [--verify]\n\navailable queries:"
        )
        for name in sorted(EXPLAIN_QUERIES):
            description, _ = EXPLAIN_QUERIES[name]
            print(f"  {name.ljust(width)}  {description}")
        return 0
    if query not in EXPLAIN_QUERIES:
        print(
            f"unknown query {query!r}; run 'repro explain' for the list",
            file=sys.stderr,
        )
        return 2
    description, builder = EXPLAIN_QUERIES[query]
    # The plan is data-independent; --rows only sizes the synthetic dataset
    # that drives the auto executor's routing decision.
    session = PrivacySession(executor=executor)
    edges = session.protect("edges", [(index, index + 1) for index in range(rows)])
    queryable = builder(edges)
    print(f"{query} — {description}\n")
    print(queryable.explain(epsilon, verify=verify))
    return 0


def _lint_plans() -> int:
    """Statically verify every named query plan (``repro lint --plans``).

    For each query in :data:`EXPLAIN_QUERIES`: derive the stability bounds,
    check them against the multiplicity-based ε-charge at a nominal ε, and
    confirm the plan is portable to shard workers.  Returns the number of
    error-severity findings.
    """
    from .core import PrivacySession
    from .lint import format_bounds, verify_plan

    _register_explain_queries()
    session = PrivacySession()
    edges = session.protect("edges", [])
    errors = 0
    width = max(len(name) for name in EXPLAIN_QUERIES)
    for name in sorted(EXPLAIN_QUERIES):
        _, builder = EXPLAIN_QUERIES[name]
        report = verify_plan(builder(edges).plan, epsilon=0.1)
        problems = [issue for issue in report.issues if issue.severity == "error"]
        warnings = [issue for issue in report.issues if issue.severity != "error"]
        if problems:
            errors += len(problems)
            print(f"plan {name.ljust(width)}  FAIL  {format_bounds(report.bounds)}")
            for issue in problems:
                print(f"  error [{issue.kind}] {issue.node}: {issue.message}")
        else:
            note = " (conservative charge)" if warnings else ""
            print(
                f"plan {name.ljust(width)}  OK    "
                f"{format_bounds(report.bounds)}{note}"
            )
    return errors


def _lint_target(query: str | None) -> tuple["Path", "Path"] | None:
    """Resolve the lint/locks target and its package root (None: bad path)."""
    from pathlib import Path

    if query is not None:
        target = Path(query)
        if not target.exists():
            return None
    else:
        target = Path(__file__).resolve().parent
    if target.is_dir():
        root = target
    else:
        # Climb out of the enclosing package so a single-file lint sees the
        # same package-relative path (and release-package gating) as a
        # directory lint would.
        root = target.resolve().parent
        while (root / "__init__.py").exists() and root.parent != root:
            root = root.parent
    return target, root


def _run_lint(args: argparse.Namespace) -> int:
    """Run the privacy-invariant AST linter (``repro lint``).

    With no path argument, lints the installed ``repro`` package itself —
    the repo's own release-path invariants.  ``--concurrency`` adds the
    interprocedural lock-order/deadlock analysis (R007–R009) and ``--flow``
    the privacy taint analysis (R010).

    Exit codes (the contract CI relies on):

    * ``0`` — clean: nothing to report beyond the baseline, and the
      baseline (if given) is still accurate.
    * ``1`` — findings: a new error-severity finding (any finding with
      ``--strict``), a plan verification failure, **or** a stale baseline —
      every grandfathered entry that no longer occurs must be removed with
      ``--write-baseline`` so it cannot mask a future regression.
    * ``2`` — usage: bad path, unreadable baseline, missing
      ``--baseline`` for ``--write-baseline``.
    """
    from pathlib import Path

    from .lint import Baseline, DEFAULT_RULES, LintError, format_issues, lint_paths

    resolved = _lint_target(args.query)
    if resolved is None:
        print(f"lint: path {args.query!r} does not exist", file=sys.stderr)
        return 2
    target, root = resolved

    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else None
    if args.write_baseline and baseline_path is None:
        print("lint: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    try:
        if baseline_path is not None and not args.write_baseline:
            if not baseline_path.exists():
                print(
                    f"lint: baseline {str(baseline_path)!r} does not exist "
                    "(use --write-baseline to create it)",
                    file=sys.stderr,
                )
                return 2
            baseline = Baseline.load(baseline_path)

        # Collect pre-baseline so staleness is detectable; filter below.
        issues = lint_paths([target], DEFAULT_RULES, root=root, baseline=None)
        model = None
        if args.concurrency or args.flow:
            from .lint.engine import ModuleSource, iter_python_files
            from .lint.model import RepoModel

            modules = []
            for path in iter_python_files([target]):
                try:
                    modules.append(ModuleSource.load(path, root))
                except SyntaxError:
                    continue  # already an E001 from lint_paths
            model = RepoModel(modules)
        if args.concurrency:
            from .lint.concurrency import analyze_concurrency

            issues.extend(analyze_concurrency([target], root, model=model))
        if args.flow:
            from .lint.flow import analyze_flow

            issues.extend(analyze_flow([target], root, model=model))
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    issues.sort(key=lambda issue: (issue.path, issue.line, issue.col, issue.rule))

    if args.write_baseline:
        changed = Baseline().save(baseline_path, issues)
        if changed:
            print(f"wrote {len(issues)} issue(s) to baseline {baseline_path}")
        else:
            print(f"baseline {baseline_path} already up to date")
        return 0

    stale: list[tuple[str, str, str]] = []
    if baseline is not None:
        stale = baseline.stale_entries(issues)
        issues = [issue for issue in issues if not baseline.contains(issue)]

    errors = sum(1 for issue in issues if issue.severity == "error")
    if issues:
        print(format_issues(issues))
    for rule, rel, text in stale:
        print(
            f"lint: baseline entry no longer occurs: {rule} {rel}: {text.strip()}"
        )
    if stale:
        print(
            f"lint: baseline {baseline_path} is stale "
            f"({len(stale)} fixed entr{'y' if len(stale) == 1 else 'ies'}); "
            "refresh it with --write-baseline"
        )
    plan_errors = 0
    if args.plans:
        if issues:
            print()
        plan_errors = _lint_plans()
    if not issues and not plan_errors and not stale:
        checked = str(target)
        print(f"lint: {checked}: clean")
    if plan_errors or errors or stale:
        return 1
    return 1 if (args.strict and issues) else 0


def _run_locks(args: argparse.Namespace) -> int:
    """Print the declared lock hierarchy and observed lock-order graph.

    ``repro locks`` runs the same static concurrency analysis as
    ``repro lint --concurrency`` but renders the full picture — every
    declared lock with its level and flags, every observed may-hold edge,
    and whether the graph is a DAG.  Exit 1 if a cycle (R007) exists.
    """
    from .lint.concurrency import build_concurrency_analysis, render_lock_report

    resolved = _lint_target(args.query)
    if resolved is None:
        print(f"locks: path {args.query!r} does not exist", file=sys.stderr)
        return 2
    target, root = resolved
    analysis = build_concurrency_analysis([target], root)
    print(render_lock_report(analysis))
    return 1 if any(issue.rule == "R007" for issue in analysis.issues) else 0


def _run_bench(args: argparse.Namespace) -> int:
    """Run a backend comparison and write its JSON report.

    Default: the one-shot measurement workload (``BENCH_columnar.json``).
    With ``--mcmc``: the MCMC scoring-backend comparison — dataflow vs
    full-pass columnar vs incremental columnar steps/second
    (``BENCH_mcmc.json``).
    """
    import json

    if args.mcmc:
        from .inference.bench import mcmc_backend_comparison, format_mcmc_comparison

        report = mcmc_backend_comparison(
            edge_counts=(args.edges,),
            steps=int(2000 * (args.steps if args.steps is not None else 1.0)),
            seed=args.seed if args.seed is not None else 0,
            # 0 means "default": keep the fused-scoring micro-entry at the
            # comparison's standard batch size so the written report matches
            # the committed BENCH_mcmc.json.
            proposal_batch=args.batch if args.batch else 16,
            processes=args.processes,
        )
        output = format_mcmc_comparison(report)
        out_path = args.out
        if out_path == "BENCH_columnar.json":
            out_path = "BENCH_mcmc.json"
    else:
        from .columnar.bench import backend_comparison, format_comparison

        backends = [name.strip() for name in args.backends.split(",") if name.strip()]
        report = backend_comparison(
            edges=args.edges,
            seed=args.seed if args.seed is not None else 0,
            rounds=args.rounds,
            backends=backends,
        )
        output = format_comparison(report)
        out_path = args.out
    print(output)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nreport written to {out_path}")
    return 0


def _run_synth(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """End-to-end synthesis demo: ``repro synth`` (Section 5.1 workflow).

    Generates an Erdős–Rényi graph, measures TbI, seeds a degree-matched
    graph, and fits it with MCMC on the chosen scoring backend — optionally
    with batched proposal evaluation (``--batch``) and parallel multi-chain
    search (``--chains``).
    """
    import numpy as np

    from .analyses import protect_graph, triangles_by_intersect_query
    from .core import PrivacySession
    from .graph.generators import erdos_renyi
    from .graph import statistics as graph_statistics
    from .inference import GraphSynthesizer
    from .inference.seed import seed_graph_from_edges

    steps = config.scaled_steps(2000)
    edges_count = args.edges
    graph = erdos_renyi(max(4, edges_count // 2), edges_count, rng=config.seed)
    session = PrivacySession(seed=config.seed)
    protected = protect_graph(session, graph, total_epsilon=float("inf"))
    measurement = triangles_by_intersect_query(protected).noisy_count(
        config.epsilon, query_name="tbi"
    )
    seed_graph, _ = seed_graph_from_edges(
        protected, config.epsilon, rng=np.random.default_rng(config.seed)
    )
    synthesizer = GraphSynthesizer(
        [measurement],
        seed_graph,
        pow_=config.pow_,
        rng=config.seed,
        backend=args.backend,
    )
    result = synthesizer.run(
        steps,
        chains=args.chains,
        proposal_batch=args.batch or None,
        processes=args.processes,
    )
    if synthesizer.last_parallel_result is not None:
        rows = [
            (
                chain.index,
                chain.result.steps,
                chain.result.accepted,
                f"{chain.result.steps_per_second:.1f}",
                f"{chain.log_score:.3f}",
                graph_statistics.triangle_count(chain.graph),
            )
            for chain in synthesizer.last_parallel_result.chains
        ]
        best = synthesizer.last_parallel_result.best_index
    else:
        rows = [
            (
                0,
                result.steps,
                result.accepted,
                f"{result.steps_per_second:.1f}",
                f"{synthesizer.log_score:.3f}",
                synthesizer.triangle_count(),
            )
        ]
        best = 0
    print(
        format_table(
            ["chain", "steps", "accepted", "steps/s", "log score", "triangles"],
            rows,
            title=(
                f"Synthesis — backend={args.backend}, edges={edges_count}, "
                f"chains={args.chains}, batch={args.batch or 'off'}, "
                f"processes={args.processes or 'off'}"
            ),
        )
    )
    print(
        f"\nbest chain: {best}  |  true triangles: "
        f"{graph_statistics.triangle_count(graph)}  |  "
        f"seed triangles: {graph_statistics.triangle_count(seed_graph)}"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant measurement service (``repro serve``).

    Serves the HTTP/JSON API of :mod:`repro.service.http` until interrupted.
    Sessions are created by clients (:class:`repro.service.ServiceClient` or
    plain ``curl``); concurrent measurements against one session are fused
    into single batched executor passes, and repeated identical measurements
    are answered from the released-answer cache at zero additional budget.

    ``--ledger FILE`` makes the service durable (budgets, sessions, audit
    log, and released answers survive crashes and restarts) and enables
    ``--workers N`` multi-process serving over one shared ledger.  SIGINT
    and SIGTERM shut down gracefully: stop accepting, drain queued batches,
    take a final ledger snapshot, close the sqlite connection.
    """
    import signal
    import threading

    if args.workers and args.workers > 1:
        from .service.workers import run_workers

        return run_workers(
            args.host,
            args.port,
            args.workers,
            service_kwargs={
                "workers": args.serve_workers,
                "max_pending": args.max_pending,
                "default_executor": args.executor,
                "ledger_path": args.ledger,
                "snapshot_every": args.snapshot_every,
                "rate_limit": args.rate,
                "rate_burst": args.burst,
                "max_total_pending": args.max_total_pending,
                "deadline_ms": args.deadline_ms,
                "breaker_threshold": args.breaker_threshold,
            },
            verbose=args.verbose,
        )

    from .service import serve

    server = serve(
        host=args.host,
        port=args.port,
        workers=args.serve_workers,
        max_pending=args.max_pending,
        executor=args.executor,
        verbose=args.verbose,
        ledger=args.ledger,
        snapshot_every=args.snapshot_every,
        rate_limit=args.rate,
        rate_burst=args.burst,
        max_total_pending=args.max_total_pending,
        deadline_ms=args.deadline_ms,
        breaker_threshold=args.breaker_threshold,
    )
    durable = f", ledger={args.ledger}" if args.ledger else ""
    print(
        f"repro serve — listening on {server.url} "
        f"(workers={args.serve_workers or 4}, max_pending={args.max_pending}, "
        f"executor={args.executor}{durable})"
    )

    class _ShutdownRequested(Exception):
        pass

    def _handle(signum: int, frame: object) -> None:
        raise _ShutdownRequested()

    # Signals are delivered to the main thread only; when embedded in a
    # non-main thread (tests), fall back to KeyboardInterrupt handling.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)
    try:
        server.serve_forever()
    except (_ShutdownRequested, KeyboardInterrupt):
        pass
    finally:
        # stop() drains the scheduler, flushes the WAL (final snapshot) and
        # closes the sqlite connection before the process exits.
        server.stop()
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """Run the randomized fault-injection harness (``repro chaos``).

    ``--steps N`` randomized fault schedules against a durable service;
    ``--workers 2`` (or more) switches to real ``repro serve`` subprocesses
    with SIGKILL cycles between restarts.  Exits non-zero when any of the
    four resilience invariants is violated (see README "Failure model &
    degraded modes").
    """
    from .resilience.chaos import run_chaos

    report = run_chaos(
        seed=args.seed if args.seed is not None else 0,
        steps=int(args.steps) if args.steps is not None else 50,
        workers=args.workers,
        executor=args.executor,
        verbose=args.verbose,
    )
    print(report.summary())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the wPINQ paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + [
            "list",
            "all",
            "explain",
            "lint",
            "locks",
            "bench",
            "synth",
            "serve",
            "chaos",
        ],
        help=(
            "which experiment to run ('list' to enumerate, 'all' for "
            "everything, 'explain' to print a query plan, 'lint' to run the "
            "privacy-invariant static analyzer, 'locks' to print the "
            "declared lock hierarchy and lock-order graph, 'bench' to "
            "compare the execution backends, 'synth' to run MCMC graph "
            "synthesis, 'serve' to run the HTTP measurement service, "
            "'chaos' to run the randomized fault-injection harness)"
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        default=None,
        help=(
            "query name for 'explain' (omit to list the available queries); "
            "file or directory path for 'lint'/'locks' (defaults to the "
            "repro package)"
        ),
    )
    parser.add_argument("--scale", type=float, default=None, help="graph-size multiplier")
    parser.add_argument(
        "--steps",
        type=float,
        default=None,
        help="MCMC step multiplier; for 'chaos': number of steps (default 50)",
    )
    parser.add_argument("--epsilon", type=float, default=None, help="privacy parameter")
    parser.add_argument("--pow", dest="pow_", type=float, default=None, help="MCMC score sharpening")
    parser.add_argument("--seed", type=int, default=None, help="base random seed")
    parser.add_argument(
        "--executor",
        default="eager",
        choices=["eager", "eager-warm", "dataflow", "vectorized", "auto", "sharded"],
        help=(
            "backend annotated by 'explain' (auto routes by input size); "
            "also the in-process session backend for 'chaos'"
        ),
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=0,
        help="synthetic protected rows for 'explain' (drives 'auto' routing)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "for 'explain': append static stability bounds, the ε-consistency "
            "verdict and the shard-portability check"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="for 'lint': exit non-zero on any finding, warnings included",
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="for 'lint': also statically verify every named query plan",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "for 'lint': run the interprocedural lock-order/deadlock "
            "analysis (rules R007-R009)"
        ),
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "for 'lint': run the interprocedural privacy taint analysis "
            "(rule R010)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="for 'lint': JSON baseline file; recorded issues are not reported",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="for 'lint': record the current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--edges", type=int, default=2000, help="benchmark graph edges for 'bench'"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds per backend for 'bench'"
    )
    parser.add_argument(
        "--backends",
        default="eager,dataflow,vectorized",
        help="comma-separated backends for 'bench'",
    )
    parser.add_argument(
        "--out",
        default="BENCH_columnar.json",
        help=(
            "JSON report path for 'bench' (empty string to skip writing; "
            "defaults to BENCH_mcmc.json with --mcmc)"
        ),
    )
    parser.add_argument(
        "--mcmc",
        action="store_true",
        help="for 'bench': compare the MCMC scoring backends instead",
    )
    parser.add_argument(
        "--chains",
        type=int,
        default=1,
        help="for 'synth': parallel independent MCMC chains (best one wins)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help=(
            "for 'synth': run the --chains chains in N worker processes "
            "(bit-identical to threads, but GIL-free); for 'bench --mcmc': "
            "add a process-parallel chain-scaling section at 1 and N workers"
        ),
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        help=(
            "for 'synth': proposals scored per fused batch (0 = sequential); "
            "for 'bench --mcmc': batch size of the fused-scoring micro-entry "
            "(0 = the default 16)"
        ),
    )
    parser.add_argument(
        "--backend",
        default="incremental",
        choices=["dataflow", "vectorized", "incremental"],
        help="for 'synth': MCMC scoring backend",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="for 'serve': bind address"
    )
    parser.add_argument(
        "--port", type=int, default=8080, help="for 'serve': TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=None,
        help="for 'serve': scheduler worker threads (default scales with cores, 2-8)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=128,
        help="for 'serve': per-session pending-request bound (backpressure)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="for 'serve': log every HTTP request to stderr",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help=(
            "for 'serve': durable ledger file (sqlite, created if missing); "
            "budgets, sessions, audit log and released answers survive "
            "crashes and restarts"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "for 'serve': forked HTTP worker processes sharing one socket "
            "and one --ledger file (default 1 = single process)"
        ),
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        help="for 'serve': ledger-log compaction cadence (commits between snapshots)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="for 'serve': per-session sustained requests/second (token bucket)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=None,
        help="for 'serve': token-bucket burst capacity (default 2x --rate)",
    )
    parser.add_argument(
        "--max-total-pending",
        type=int,
        default=None,
        help="for 'serve': global pending bound across sessions (load shedding)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "for 'serve': default end-to-end deadline (milliseconds) applied "
            "to measurements without an X-Repro-Deadline-Ms header; expired "
            "deadlines are refused before any budget is charged"
        ),
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help=(
            "for 'serve': consecutive durable-ledger failures before the "
            "circuit breaker opens and measurements fail fast with 503"
        ),
    )
    return parser


def _configure(args: argparse.Namespace) -> ExperimentConfig:
    config = default_config()
    overrides = {}
    if args.scale is not None:
        overrides["graph_scale"] = args.scale
    if args.steps is not None:
        overrides["step_scale"] = args.steps
    if args.epsilon is not None:
        overrides["epsilon"] = args.epsilon
    if args.pow_ is not None:
        overrides["pow_"] = args.pow_
    if args.seed is not None:
        overrides["seed"] = args.seed
    return config.with_overrides(**overrides) if overrides else config


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "explain":
        return _run_explain(
            args.query, args.epsilon, args.executor, args.rows, args.verify
        )
    if args.experiment == "lint":
        return _run_lint(args)
    if args.experiment == "locks":
        return _run_locks(args)
    if args.query is not None:
        parser.error(
            f"unexpected argument {args.query!r} "
            "(only 'explain', 'lint' and 'locks' take one)"
        )
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "synth":
        return _run_synth(args, _configure(args))
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "chaos":
        return _run_chaos(args)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _ = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0

    config = _configure(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _, runner = EXPERIMENTS[name]
        print(runner(config))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
