"""Exception hierarchy for the wPINQ reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish privacy-accounting failures from plain usage errors.

Every service-visible error carries a stable machine-readable ``code`` plus a
``retryable`` flag.  The HTTP layer maps codes to statuses centrally (see
``service/http.py``) and clients — including :class:`repro.resilience.policy.
RetryPolicy` — branch on ``code``, never on message strings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    #: Stable machine-readable identifier for this error family.  Subclasses
    #: override it; the HTTP layer serialises it and maps it to a status.
    code = "repro_error"

    #: Whether a client may retry the same request verbatim and reasonably
    #: expect a different outcome.  Used by :class:`RetryPolicy` to decide
    #: which failures consume retry budget.
    retryable = False


class BudgetExceededError(ReproError):
    """Raised when a measurement would exceed a dataset's privacy budget.

    The measurement is *not* performed and no privacy budget is consumed when
    this error is raised, mirroring PINQ/wPINQ semantics where the budget
    check happens before any noisy value is computed.
    """

    code = "budget_exceeded"
    retryable = False

    def __init__(self, requested, remaining, source=None):
        self.requested = float(requested)
        self.remaining = float(remaining)
        self.source = source
        name = f" for source {source!r}" if source is not None else ""
        super().__init__(
            f"privacy budget exceeded{name}: requested epsilon "
            f"{self.requested:.6g}, remaining {self.remaining:.6g}"
        )


class InvalidEpsilonError(ReproError):
    """Raised when a non-positive or non-finite epsilon is supplied."""

    code = "invalid_epsilon"


class PlanError(ReproError):
    """Raised when a query plan is malformed.

    Examples: joining queryables that belong to different privacy sessions,
    or evaluating a plan against an environment that is missing one of its
    protected sources.
    """

    code = "invalid_plan"


class DataflowError(ReproError):
    """Raised on inconsistent use of the incremental dataflow engine."""

    code = "dataflow_error"


class GraphError(ReproError):
    """Raised on invalid graph operations (self-loops, missing vertices...)."""

    code = "graph_error"


class ServiceError(ReproError):
    """Raised on invalid use of the measurement service (:mod:`repro.service`).

    Examples: measuring against an unknown session, requesting a query the
    session does not host, or re-creating a session under a taken name.
    """

    code = "service_error"


class SessionExistsError(ServiceError):
    """Raised when creating a session under a name that is already taken.

    Either the name is live in this registry or a durable session row exists
    under it (possibly written by a sibling worker).  The HTTP layer maps this
    to status 409; the request is not retryable verbatim — pick another name
    or attach to the existing session.
    """

    code = "session_exists"
    retryable = False


class ServiceOverloadedError(ServiceError):
    """Raised when the service refuses a request for backpressure.

    A session's pending-measurement queue is bounded; once it is full new
    submissions are rejected immediately rather than queued without limit, so
    a slow tenant cannot exhaust server memory.  Load shedding (the global
    pending bound across all sessions) raises the same error.  Clients should
    retry with backoff (the HTTP layer maps this to status 503).
    """

    code = "overloaded"
    retryable = True


class RateLimitedError(ServiceOverloadedError):
    """Raised when a tenant exceeds its per-session request rate.

    Distinct from generic overload: the refusal is attributable to the one
    tenant, not to server-wide pressure, and carries a ``retry_after`` hint
    (seconds until the tenant's token bucket holds a token again).  The HTTP
    layer maps this to status 429.
    """

    code = "rate_limited"
    retryable = True

    def __init__(self, message, retry_after=0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class CircuitOpenError(ServiceOverloadedError):
    """Raised when a circuit breaker refuses a request without attempting it.

    The protected dependency (durable ledger, shard pool) has failed enough
    times recently that further attempts are presumed futile; the breaker
    fails fast instead of queueing work behind a broken backend.  Carries a
    ``retry_after`` hint equal to the breaker's remaining open window.  The
    HTTP layer maps this to status 503.
    """

    code = "circuit_open"
    retryable = True

    def __init__(self, message, retry_after=0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceededError(ServiceError):
    """Raised when a request's end-to-end deadline expired before completion.

    Deadlines are enforced *before* any privacy budget is charged: an expired
    deadline at scheduler admission or just before the atomic charge consumes
    no epsilon.  Once a charge has committed, the answer is always released
    and cached, so retrying an expired request is budget-free — the retry is
    served from the answer cache without a second charge.  The HTTP layer
    maps this to status 504.
    """

    code = "deadline_exceeded"
    retryable = True


class FaultInjectedError(ReproError):
    """Raised by a deterministic fault-injection point (:mod:`repro.resilience`).

    Only ever raised while a :class:`FaultPlan` is active; production code
    with injection disabled can never see it.  Carries the injection ``point``
    name so chaos invariant checks can attribute the failure.
    """

    code = "fault_injected"
    retryable = True

    def __init__(self, point, message=None):
        self.point = str(point)
        super().__init__(message or f"injected fault at {self.point!r}")


class PersistenceError(ServiceError):
    """Raised on invalid use of the durable ledger store
    (:mod:`repro.persistence`), e.g. serving multiple processes without a
    ledger file, or re-opening a corrupted store."""

    code = "persistence_unavailable"
    retryable = True


class ChaosInvariantError(ReproError):
    """Raised by the chaos harness when a global invariant is violated.

    Each violation names the invariant (ledger accounting, shm cleanliness,
    liveness, replay bit-identity) and the schedule seed that provoked it so
    the run can be replayed deterministically.
    """

    code = "chaos_invariant"
