"""Exception hierarchy for the wPINQ reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish privacy-accounting failures from plain usage errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BudgetExceededError(ReproError):
    """Raised when a measurement would exceed a dataset's privacy budget.

    The measurement is *not* performed and no privacy budget is consumed when
    this error is raised, mirroring PINQ/wPINQ semantics where the budget
    check happens before any noisy value is computed.
    """

    def __init__(self, requested, remaining, source=None):
        self.requested = float(requested)
        self.remaining = float(remaining)
        self.source = source
        name = f" for source {source!r}" if source is not None else ""
        super().__init__(
            f"privacy budget exceeded{name}: requested epsilon "
            f"{self.requested:.6g}, remaining {self.remaining:.6g}"
        )


class InvalidEpsilonError(ReproError):
    """Raised when a non-positive or non-finite epsilon is supplied."""


class PlanError(ReproError):
    """Raised when a query plan is malformed.

    Examples: joining queryables that belong to different privacy sessions,
    or evaluating a plan against an environment that is missing one of its
    protected sources.
    """


class DataflowError(ReproError):
    """Raised on inconsistent use of the incremental dataflow engine."""


class GraphError(ReproError):
    """Raised on invalid graph operations (self-loops, missing vertices...)."""


class ServiceError(ReproError):
    """Raised on invalid use of the measurement service (:mod:`repro.service`).

    Examples: measuring against an unknown session, requesting a query the
    session does not host, or re-creating a session under a taken name.
    """


class ServiceOverloadedError(ServiceError):
    """Raised when the service refuses a request for backpressure.

    A session's pending-measurement queue is bounded; once it is full new
    submissions are rejected immediately rather than queued without limit, so
    a slow tenant cannot exhaust server memory.  Load shedding (the global
    pending bound across all sessions) raises the same error.  Clients should
    retry with backoff (the HTTP layer maps this to status 503).
    """


class RateLimitedError(ServiceOverloadedError):
    """Raised when a tenant exceeds its per-session request rate.

    Distinct from generic overload: the refusal is attributable to the one
    tenant, not to server-wide pressure, and carries a ``retry_after`` hint
    (seconds until the tenant's token bucket holds a token again).  The HTTP
    layer maps this to status 429.
    """

    def __init__(self, message, retry_after=0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class PersistenceError(ServiceError):
    """Raised on invalid use of the durable ledger store
    (:mod:`repro.persistence`), e.g. serving multiple processes without a
    ledger file, or re-opening a corrupted store."""
