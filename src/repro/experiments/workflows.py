"""The paper's experiments, one function per table or figure.

Each function takes an :class:`~repro.experiments.config.ExperimentConfig`,
runs the corresponding experiment on the synthetic stand-in graphs, and
returns plain data structures (lists of row tuples, or per-configuration
trajectories) that the benchmark files print and assert on.  Keeping these
here — rather than inside the benchmark files — makes them importable from
examples and tests as well.

Graph sizes and MCMC step counts are scaled down from the paper (see
``EXPERIMENTS.md`` for the exact factors); the assertions in the benchmark
suite check the *shapes* the paper reports, not its absolute numbers.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analyses import (
    measure_joint_degrees,
    protect_graph,
    rescale_jdd_measurement,
    triangles_by_degree_query,
    triangles_by_intersect_query,
)
from ..baselines import (
    degree_sequence_error,
    figure1_best_case_graph,
    figure1_worst_case_graph,
    hay_degree_sequence,
    jdd_error,
    sala_joint_degree_distribution,
    weighted_triangle_count,
    worst_case_triangle_count,
)
from ..core.laplace import LaplaceNoise
from ..core.queryable import PrivacySession
from ..graph import (
    Graph,
    barabasi_albert,
    load_paper_graph,
    paper_graph_with_twin,
    random_twin,
)
from ..graph.statistics import (
    assortativity,
    degree_sequence,
    summarize,
    triangle_count,
)
from ..inference import GraphSynthesizer, SynthesisOutcome, synthesize_graph
from ..postprocess import fit_degree_sequence, isotonic_regression
from .config import ExperimentConfig, default_config

__all__ = [
    "figure1_comparison",
    "table1_graph_statistics",
    "TrajectoryResult",
    "figure3_tbd_bucketing",
    "table2_tbi_triangles",
    "figure4_tbi_fitting",
    "figure5_epsilon_sensitivity",
    "table3_barabasi",
    "figure6_scalability",
    "jdd_accuracy_ablation",
    "degree_sequence_ablation",
    "combined_measurements_ablation",
    "smooth_sensitivity_ablation",
    "run_tbi_synthesis",
    "run_tbd_synthesis",
]


# ----------------------------------------------------------------------
# Shared synthesis helpers
# ----------------------------------------------------------------------
@dataclass
class TrajectoryResult:
    """One MCMC trajectory plus the context needed to interpret it."""

    label: str
    true_triangles: int
    true_assortativity: float
    seed_triangles: int
    final_triangles: int
    final_assortativity: float
    steps: list[int] = field(default_factory=list)
    triangles: list[float] = field(default_factory=list)
    assortativity: list[float] = field(default_factory=list)
    steps_per_second: float = 0.0
    privacy_cost: float = 0.0


def _outcome_to_trajectory(label: str, graph: Graph, outcome: SynthesisOutcome) -> TrajectoryResult:
    trajectory = outcome.mcmc_result.trajectory
    return TrajectoryResult(
        label=label,
        true_triangles=triangle_count(graph),
        true_assortativity=assortativity(graph),
        seed_triangles=outcome.seed_triangles,
        final_triangles=outcome.synthetic_triangles,
        final_assortativity=assortativity(outcome.synthetic_graph),
        steps=[record.step for record in trajectory],
        triangles=[record.metrics.get("triangles", 0.0) for record in trajectory],
        assortativity=[record.metrics.get("assortativity", 0.0) for record in trajectory],
        steps_per_second=outcome.mcmc_result.steps_per_second,
        privacy_cost=outcome.privacy_cost.get("edges", 0.0),
    )


def run_tbi_synthesis(
    graph: Graph,
    label: str,
    steps: int,
    epsilon: float,
    pow_: float,
    seed: int,
    record_every: int | None = None,
) -> TrajectoryResult:
    """Seed from DP degree measurements, then fit to the TbI query.

    Privacy cost: 3ε (seed) + 4ε (TbI) = 7ε, as in Section 5.3.
    """
    session = PrivacySession(seed=seed)
    edges = protect_graph(session, graph)
    tbi = triangles_by_intersect_query(edges)
    outcome = synthesize_graph(
        session,
        edges,
        fit_queries=[(tbi, epsilon, "triangles_by_intersect")],
        seed_epsilon=epsilon,
        mcmc_steps=steps,
        pow_=pow_,
        record_every=record_every or max(1, steps // 10),
        rng=seed + 1,
    )
    return _outcome_to_trajectory(label, graph, outcome)


def run_tbd_synthesis(
    graph: Graph,
    label: str,
    steps: int,
    epsilon: float,
    pow_: float,
    seed: int,
    bucket: int = 1,
    record_every: int | None = None,
) -> TrajectoryResult:
    """Seed from DP degree measurements, then fit to the TbD query.

    Privacy cost: 3ε (seed) + 9ε (TbD) = 12ε, as in Section 5.2.
    """
    session = PrivacySession(seed=seed)
    edges = protect_graph(session, graph)
    tbd = triangles_by_degree_query(edges, bucket=bucket)
    outcome = synthesize_graph(
        session,
        edges,
        fit_queries=[(tbd, epsilon, f"triangles_by_degree(bucket={bucket})")],
        seed_epsilon=epsilon,
        mcmc_steps=steps,
        pow_=pow_,
        record_every=record_every or max(1, steps // 10),
        rng=seed + 1,
    )
    return _outcome_to_trajectory(label, graph, outcome)


# ----------------------------------------------------------------------
# Figure 1: worst case vs best case triangle counting
# ----------------------------------------------------------------------
def figure1_comparison(
    nodes: int = 400,
    epsilon: float = 0.1,
    trials: int = 25,
    seed: int = 1,
) -> list[tuple[str, str, float, float, float]]:
    """Compare worst-case-noise and weighted triangle counting on Figure 1.

    Returns rows ``(graph, mechanism, true count, mean estimate, mean |error|)``
    for the worst-case graph (left of Figure 1) and the bounded-degree graph
    (right).  The shape to reproduce: on the right-hand graph the weighted
    mechanism's error is orders of magnitude below the worst-case mechanism's,
    while on the left-hand graph neither mechanism is accurate (and neither
    needs to be — there is nothing to measure).
    """
    noise = LaplaceNoise(seed)
    rows: list[tuple[str, str, float, float, float]] = []
    graphs = {
        "worst-case (left)": figure1_worst_case_graph(nodes),
        "best-case (right)": figure1_best_case_graph(nodes),
    }
    for graph_name, graph in graphs.items():
        truth = triangle_count(graph)
        for mechanism in ("worst-case noise", "weighted records"):
            estimates = []
            errors = []
            for _ in range(trials):
                if mechanism == "worst-case noise":
                    estimate = worst_case_triangle_count(graph, epsilon, noise=noise)
                else:
                    _, estimate = weighted_triangle_count(graph, epsilon, noise=noise)
                estimates.append(estimate)
                errors.append(abs(estimate - truth))
            rows.append(
                (
                    graph_name,
                    mechanism,
                    float(truth),
                    float(np.mean(estimates)),
                    float(np.mean(errors)),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Table 1: evaluation graph statistics
# ----------------------------------------------------------------------
def table1_graph_statistics(
    config: ExperimentConfig | None = None,
    names: Sequence[str] = ("CA-GrQc", "CA-HepPh", "CA-HepTh", "Caltech", "Epinions"),
    base_scales: dict[str, float] | None = None,
) -> list[tuple[str, int, int, int, int, float]]:
    """Statistics of the stand-in graphs and their degree-preserving twins.

    Returns rows ``(name, nodes, edges, dmax, triangles, assortativity)`` for
    each stand-in followed by its ``Random(·)`` twin — the same columns as
    Table 1.
    """
    config = config or default_config()
    base_scales = base_scales or {
        "CA-GrQc": 0.2,
        "CA-HepPh": 0.1,
        "CA-HepTh": 0.15,
        "Caltech": 0.4,
        "Epinions": 0.03,
    }
    rows: list[tuple[str, int, int, int, int, float]] = []
    for name in names:
        scale = config.scaled_graph(base_scales.get(name, 0.2))
        graph, twin = paper_graph_with_twin(name, scale=scale)
        for label, candidate in ((name, graph), (f"Random({name})", twin)):
            stats = summarize(candidate)
            rows.append(
                (
                    label,
                    int(stats["nodes"]),
                    int(stats["edges"]),
                    int(stats["dmax"]),
                    int(stats["triangles"]),
                    float(stats["assortativity"]),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 3: TbD with and without bucketing
# ----------------------------------------------------------------------
def figure3_tbd_bucketing(
    config: ExperimentConfig | None = None,
    base_scale: float = 0.06,
    base_steps: int = 3000,
    bucket: int = 5,
) -> list[TrajectoryResult]:
    """TbD-driven MCMC on CA-GrQc and Random(GrQc), with/without bucketing.

    The paper's observation (Figure 3): without bucketing the TbD measurement
    is noise-dominated and MCMC cannot distinguish the real graph from its
    randomised twin; with bucketing the signal concentrates and the real
    graph's fit pulls ahead (though it still under-shoots the true triangle
    count).  The per-degree bucket size is scaled down along with the graphs.
    """
    config = config or default_config()
    scale = config.scaled_graph(base_scale)
    steps = config.scaled_steps(base_steps)
    graph, twin = paper_graph_with_twin("CA-GrQc", scale=scale)
    results = []
    for label, candidate, bucket_size in (
        ("CA-GrQc", graph, 1),
        ("Random(GrQc)", twin, 1),
        ("CA-GrQc + buckets", graph, bucket),
        ("Random(GrQc) + buckets", twin, bucket),
    ):
        results.append(
            run_tbd_synthesis(
                candidate,
                label,
                steps=steps,
                epsilon=config.epsilon,
                pow_=config.pow_,
                seed=config.seed,
                bucket=bucket_size,
            )
        )
    return results


# ----------------------------------------------------------------------
# Table 2 and Figure 4: TbI-driven synthesis
# ----------------------------------------------------------------------
def table2_tbi_triangles(
    config: ExperimentConfig | None = None,
    names: Sequence[str] = ("CA-GrQc", "CA-HepPh", "CA-HepTh", "Caltech"),
    base_scales: dict[str, float] | None = None,
    base_steps: int = 6000,
) -> list[tuple[str, int, int, int]]:
    """Triangles in the seed graph, after TbI-driven MCMC, and in the truth.

    Returns rows ``(graph, seed Δ, MCMC Δ, true Δ)`` — the three rows of
    Table 2.  The shape to reproduce: MCMC moves the triangle count from the
    seed's (near the random twin's) value a substantial fraction of the way
    towards the real graph's.
    """
    config = config or default_config()
    base_scales = base_scales or {
        "CA-GrQc": 0.08,
        "CA-HepPh": 0.05,
        "CA-HepTh": 0.08,
        "Caltech": 0.25,
    }
    rows: list[tuple[str, int, int, int]] = []
    for name in names:
        graph = load_paper_graph(name, scale=config.scaled_graph(base_scales[name]))
        result = run_tbi_synthesis(
            graph,
            name,
            steps=config.scaled_steps(base_steps),
            epsilon=config.epsilon,
            pow_=config.pow_,
            seed=config.seed,
        )
        rows.append((name, result.seed_triangles, result.final_triangles, result.true_triangles))
    return rows


def figure4_tbi_fitting(
    config: ExperimentConfig | None = None,
    names: Sequence[str] = ("CA-GrQc", "CA-HepPh", "CA-HepTh", "Caltech"),
    base_scales: dict[str, float] | None = None,
    base_steps: int = 4000,
) -> list[TrajectoryResult]:
    """TbI-driven MCMC trajectories for real graphs and their random twins.

    The shape to reproduce (Figure 4): the chains fitting real graphs climb to
    substantially more triangles than the chains fitting the randomised twins.
    """
    config = config or default_config()
    base_scales = base_scales or {
        "CA-GrQc": 0.08,
        "CA-HepPh": 0.05,
        "CA-HepTh": 0.08,
        "Caltech": 0.25,
    }
    results: list[TrajectoryResult] = []
    for name in names:
        scale = config.scaled_graph(base_scales[name])
        graph, twin = paper_graph_with_twin(name, scale=scale)
        for label, candidate in ((name, graph), (f"Random({name})", twin)):
            results.append(
                run_tbi_synthesis(
                    candidate,
                    label,
                    steps=config.scaled_steps(base_steps),
                    epsilon=config.epsilon,
                    pow_=config.pow_,
                    seed=config.seed,
                )
            )
    return results


# ----------------------------------------------------------------------
# Figure 5: sensitivity to epsilon
# ----------------------------------------------------------------------
def figure5_epsilon_sensitivity(
    config: ExperimentConfig | None = None,
    epsilons: Sequence[float] = (0.01, 0.1, 1.0, 10.0),
    repeats: int = 3,
    base_scale: float = 0.08,
    base_steps: int = 3000,
) -> list[tuple[float, float, float, float]]:
    """Final triangle counts of TbI-driven synthesis across ε values.

    Returns rows ``(epsilon, mean Δ, std Δ, true Δ)`` for the CA-GrQc
    stand-in.  The shape to reproduce (Figure 5): the attained triangle count
    is roughly flat across four orders of magnitude of ε, with variability
    growing as ε shrinks (noisier measurements).
    """
    config = config or default_config()
    scale = config.scaled_graph(base_scale)
    steps = config.scaled_steps(base_steps)
    graph = load_paper_graph("CA-GrQc", scale=scale)
    truth = triangle_count(graph)
    rows: list[tuple[float, float, float, float]] = []
    for epsilon in epsilons:
        finals = []
        for repeat in range(repeats):
            result = run_tbi_synthesis(
                graph,
                f"eps={epsilon}",
                steps=steps,
                epsilon=epsilon,
                pow_=config.pow_,
                seed=config.seed + repeat,
            )
            finals.append(result.final_triangles)
        rows.append((float(epsilon), float(np.mean(finals)), float(np.std(finals)), float(truth)))
    return rows


# ----------------------------------------------------------------------
# Table 3 and Figure 6: Barabási–Albert scalability sweep
# ----------------------------------------------------------------------
def table3_barabasi(
    config: ExperimentConfig | None = None,
    nodes: int = 2500,
    edges_per_node: int = 8,
    betas: Sequence[float] = (0.5, 0.55, 0.6, 0.65, 0.7),
) -> list[tuple[float, int, int, int, int, int]]:
    """Statistics of the Barabási–Albert graphs used for the scaling study.

    Returns rows ``(beta, nodes, edges, dmax, triangles, Σd²)``.  The shape to
    reproduce (Table 3): as the dynamical exponent β grows, the maximum degree,
    the triangle count and Σd² all grow while nodes and edges stay fixed.
    """
    config = config or default_config()
    nodes = max(200, int(round(nodes * config.graph_scale)))
    rows: list[tuple[float, int, int, int, int, int]] = []
    for index, beta in enumerate(betas):
        graph = barabasi_albert(nodes, edges_per_node, beta=beta, rng=config.seed + index)
        stats = summarize(graph)
        rows.append(
            (
                float(beta),
                int(stats["nodes"]),
                int(stats["edges"]),
                int(stats["dmax"]),
                int(stats["triangles"]),
                int(stats["degree_sum_of_squares"]),
            )
        )
    return rows


def figure6_scalability(
    config: ExperimentConfig | None = None,
    nodes: int = 1500,
    edges_per_node: int = 6,
    betas: Sequence[float] = (0.5, 0.6, 0.7),
    base_steps: int = 400,
    include_epinions: bool = True,
    epinions_scale: float = 0.02,
) -> list[dict[str, float]]:
    """Memory and throughput of TbI-driven MCMC as Σd² grows.

    For each Barabási–Albert graph (and optionally the Epinions stand-in) a
    TbI synthesiser is built and run for a few hundred steps while tracking

    * ``state_entries`` — weighted entries held by the incremental operators
      (the platform-independent memory proxy),
    * ``peak_memory_mb`` — tracemalloc peak during construction + run,
    * ``steps_per_second`` — MCMC throughput.

    The shape to reproduce (Figure 6): memory grows and throughput falls as
    Σd² grows.
    """
    config = config or default_config()
    nodes = max(200, int(round(nodes * config.graph_scale)))
    steps = config.scaled_steps(base_steps)
    workloads: list[tuple[str, Graph]] = []
    for index, beta in enumerate(betas):
        workloads.append(
            (
                f"barabasi(beta={beta})",
                barabasi_albert(nodes, edges_per_node, beta=beta, rng=config.seed + index),
            )
        )
    if include_epinions:
        workloads.append(
            ("Epinions", load_paper_graph("Epinions", scale=config.scaled_graph(epinions_scale)))
        )

    results: list[dict[str, float]] = []
    for label, graph in workloads:
        session = PrivacySession(seed=config.seed)
        edges = protect_graph(session, graph)
        measurement = triangles_by_intersect_query(edges).noisy_count(
            config.epsilon, query_name="tbi"
        )
        tracemalloc.start()
        started = time.perf_counter()
        synthesizer = GraphSynthesizer(
            [measurement],
            random_twin(graph, rng=config.seed),
            pow_=config.pow_,
            rng=config.seed,
        )
        build_seconds = time.perf_counter() - started
        run_result = synthesizer.run(steps)
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        results.append(
            {
                "label": label,
                "nodes": float(graph.number_of_nodes()),
                "edges": float(graph.number_of_edges()),
                "degree_sum_of_squares": float(graph.degree_sum_of_squares()),
                "state_entries": float(synthesizer.state_entry_count()),
                "peak_memory_mb": peak_bytes / 1e6,
                "build_seconds": build_seconds,
                "steps_per_second": run_result.steps_per_second,
                "final_triangles": float(synthesizer.triangle_count()),
            }
        )
    return results


# ----------------------------------------------------------------------
# Ablations: bespoke baselines vs wPINQ queries
# ----------------------------------------------------------------------
def jdd_accuracy_ablation(
    config: ExperimentConfig | None = None,
    base_scale: float = 0.1,
    epsilon: float | None = None,
) -> list[tuple[str, float]]:
    """Mean absolute JDD error: Sala et al. versus the wPINQ JDD query.

    Returns rows ``(approach, mean |error| per occupied degree pair)``.  The
    paper's analysis (Section 3.2) predicts the automatic wPINQ query loses a
    factor of roughly two to four to the bespoke (corrected) Sala mechanism —
    the price of a free privacy proof.
    """
    config = config or default_config()
    epsilon = epsilon if epsilon is not None else config.epsilon
    graph = load_paper_graph("CA-GrQc", scale=config.scaled_graph(base_scale))
    noise = LaplaceNoise(config.seed)

    sala = sala_joint_degree_distribution(graph, epsilon, noise=noise)
    sala_error = jdd_error(sala, graph)

    session = PrivacySession(seed=config.seed)
    edges = protect_graph(session, graph)
    # Match total privacy cost: the wPINQ query uses the edge set four times,
    # so measure it at epsilon/4 to spend the same budget as the baseline.
    measurement = measure_joint_degrees(edges, epsilon / 4.0)
    rescaled = rescale_jdd_measurement(measurement)
    wpinq_estimate: dict[tuple[int, int], float] = {}
    for (da, db), value in rescaled.items():
        key = (min(da, db), max(da, db))
        # The wPINQ query sees each undirected edge twice (both directions);
        # average the two directed estimates onto the undirected cell.
        wpinq_estimate[key] = wpinq_estimate.get(key, 0.0) + value / 2.0
    wpinq_error = jdd_error(wpinq_estimate, graph)

    return [
        ("Sala et al. (corrected, bespoke noise)", float(sala_error)),
        ("wPINQ JDD query (automatic)", float(wpinq_error)),
    ]


def combined_measurements_ablation(
    config: ExperimentConfig | None = None,
    base_scale: float = 0.06,
    base_steps: int = 3000,
) -> list[tuple[str, int, int, int]]:
    """Fitting several measurements at once (Section 1.2, benefit #2).

    The posterior combines the constraints of every released measurement, so
    adding the joint-degree-distribution query alongside TbI should produce a
    synthetic graph that fits the triangle statistic at least as well while
    additionally matching second-order degree structure.  Returns rows
    ``(configuration, seed Δ, final Δ, true Δ)`` for the TbI-only and
    TbI + JDD fits of the CA-GrQc stand-in.
    """
    config = config or default_config()
    graph = load_paper_graph("CA-GrQc", scale=config.scaled_graph(base_scale))
    steps = config.scaled_steps(base_steps)
    truth = triangle_count(graph)
    rows: list[tuple[str, int, int, int]] = []

    from ..analyses import joint_degree_query

    for label, include_jdd in (("TbI only", False), ("TbI + JDD", True)):
        session = PrivacySession(seed=config.seed)
        edges = protect_graph(session, graph)
        fit_queries = [
            (triangles_by_intersect_query(edges), config.epsilon, "triangles_by_intersect")
        ]
        if include_jdd:
            fit_queries.append((joint_degree_query(edges), config.epsilon, "joint_degree"))
        outcome = synthesize_graph(
            session,
            edges,
            fit_queries=fit_queries,
            seed_epsilon=config.epsilon,
            mcmc_steps=steps,
            pow_=config.pow_,
            rng=config.seed + 1,
        )
        rows.append((label, outcome.seed_triangles, outcome.synthetic_triangles, truth))
    return rows


def degree_sequence_ablation(
    config: ExperimentConfig | None = None,
    base_scale: float = 0.1,
    epsilon: float | None = None,
) -> list[tuple[str, float]]:
    """Degree-sequence error: Hay et al. versus wPINQ CCDF+sequence path fit.

    Returns rows ``(approach, mean |error| per rank)``.  The shape the paper's
    Section 3.1 claims: the joint fit of the two wPINQ measurements is
    competitive with (or better than) plain isotonic regression, without
    needing the number of nodes to be public.
    """
    config = config or default_config()
    epsilon = epsilon if epsilon is not None else config.epsilon
    graph = load_paper_graph("CA-GrQc", scale=config.scaled_graph(base_scale))
    noise = LaplaceNoise(config.seed)

    hay = hay_degree_sequence(graph, epsilon, noise=noise)
    hay_error = degree_sequence_error(hay, graph)

    session = PrivacySession(seed=config.seed)
    edges = protect_graph(session, graph)
    # Spend the same total budget, split across the two wPINQ measurements.
    from ..analyses import measure_degree_ccdf, measure_degree_sequence

    ccdf = measure_degree_ccdf(edges, epsilon / 2.0)
    sequence = measure_degree_sequence(edges, epsilon / 2.0)
    true_sequence = degree_sequence(graph)
    fitted = fit_degree_sequence(
        sequence,
        ccdf,
        max_rank=graph.number_of_nodes() + 10,
        max_degree=graph.max_degree() + 10,
    )
    wpinq_error = degree_sequence_error([float(v) for v in fitted], graph)

    # A third row isolates the benefit of the joint fit over isotonic
    # regression applied to the wPINQ degree-sequence measurement alone.
    seq_only = [sequence.value(rank) for rank in range(len(true_sequence))]
    iso_only = isotonic_regression(seq_only, increasing=False)
    iso_error = degree_sequence_error(iso_only, graph)

    return [
        ("Hay et al. (public n, isotonic)", float(hay_error)),
        ("wPINQ sequence only + isotonic", float(iso_error)),
        ("wPINQ CCDF + sequence path fit", float(wpinq_error)),
    ]


def smooth_sensitivity_ablation(
    nodes: int = 400,
    epsilon: float = 0.5,
    delta: float = 0.01,
    trials: int = 25,
    seed: int = 1,
) -> list[tuple[str, str, float, float, float]]:
    """Worst-case vs smooth-sensitivity vs weighted triangle counting.

    The paper's Section 1.1 argues that smooth sensitivity adapts to benign
    graphs but still pays for worst-case structure *anywhere* in the graph: on
    the union of Figure 1's left and right graphs it must add Θ(|V|)-scale
    noise, whereas weighted datasets suppress only the (triangle-free) left
    half and measure the right half with constant noise.

    Each mechanism targets the statistic it can actually release — the raw
    triangle count for the worst-case and smooth mechanisms, the weighted
    triangle total (Σ_Δ 1/max degree) for the weighted mechanism — so the
    comparable column is the *relative* error on that target.  Returns rows
    ``(graph, mechanism, target value, noise scale, mean relative error)``.
    """
    from ..baselines import (
        figure1_union_graph,
        smooth_sensitivity_triangle_count,
        weighted_triangle_signal,
    )

    noise = LaplaceNoise(seed)
    graphs = {
        "worst-case (left)": figure1_worst_case_graph(nodes),
        "best-case (right)": figure1_best_case_graph(nodes),
        "union (left + right)": figure1_union_graph(nodes),
    }
    rows: list[tuple[str, str, float, float, float]] = []
    for graph_name, graph in graphs.items():
        true_count = float(triangle_count(graph))
        weighted_target = weighted_triangle_signal(graph)
        for mechanism in ("worst-case noise", "smooth sensitivity", "weighted records"):
            errors = []
            scale = 0.0
            if mechanism == "weighted records":
                target = weighted_target
            else:
                target = true_count
            for _ in range(trials):
                if mechanism == "worst-case noise":
                    scale = max(graph.number_of_nodes() - 2, 1) / epsilon
                    released = worst_case_triangle_count(graph, epsilon, noise=noise)
                elif mechanism == "smooth sensitivity":
                    released, scale = smooth_sensitivity_triangle_count(
                        graph, epsilon, delta=delta, noise=noise
                    )
                else:
                    scale = 1.0 / epsilon
                    released = weighted_target + noise.sample(epsilon)
                errors.append(abs(released - target))
            denominator = max(target, 1.0)
            rows.append(
                (
                    graph_name,
                    mechanism,
                    float(target),
                    float(scale),
                    float(np.mean(errors) / denominator),
                )
            )
    return rows
