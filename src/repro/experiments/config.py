"""Configuration shared by the benchmark harness.

The paper's experiments run on graphs with up to a million edges and MCMC
chains of 5×10⁵–5×10⁶ steps on a 64 GB machine.  The reproduction targets a
laptop/CI budget, so every experiment accepts an :class:`ExperimentConfig`
whose defaults are small, and scales up transparently when the environment
variables below are set:

* ``REPRO_BENCH_SCALE`` — multiplier on graph sizes (default 1.0 applies the
  per-experiment default scale).
* ``REPRO_BENCH_STEPS`` — multiplier on MCMC step counts.
* ``REPRO_BENCH_SEED`` — base random seed.

``EXPERIMENTS.md`` records which settings produced the committed numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "default_config"]


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``graph_scale`` multiplies the per-experiment default stand-in scale, and
    ``step_scale`` multiplies MCMC step counts, so the same benchmark code can
    run as a quick smoke test or as a long faithful reproduction.
    """

    graph_scale: float = 1.0
    step_scale: float = 1.0
    epsilon: float = 0.1
    pow_: float = 10_000.0
    seed: int = 20140506  # the paper's "last updated" date, for determinism

    def scaled_graph(self, base_scale: float) -> float:
        """Apply the global multiplier to an experiment's base graph scale."""
        return base_scale * self.graph_scale

    def scaled_steps(self, base_steps: int) -> int:
        """Apply the global multiplier to an experiment's base step count."""
        return max(1, int(round(base_steps * self.step_scale)))

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **overrides)


def default_config() -> ExperimentConfig:
    """The configuration selected by the current environment variables."""
    return ExperimentConfig(
        graph_scale=_env_float("REPRO_BENCH_SCALE", 1.0),
        step_scale=_env_float("REPRO_BENCH_STEPS", 1.0),
        epsilon=_env_float("REPRO_BENCH_EPSILON", 0.1),
        pow_=_env_float("REPRO_BENCH_POW", 10_000.0),
        seed=_env_int("REPRO_BENCH_SEED", 20140506),
    )
