"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output readable and consistent so
``bench_output.txt`` doubles as the reproduction record summarised in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_series", "format_value"]


def format_value(value: Any) -> str:
    """Render one cell: compact floats, plain ints, str() otherwise."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[tuple[Any, Any]]) -> str:
    """Render an (x, y) series on one line, e.g. an MCMC trajectory."""
    body = ", ".join(f"{format_value(x)}:{format_value(y)}" for x, y in points)
    return f"{name}: {body}"
