"""Experiment harness used by the benchmark suite to regenerate the paper's
tables and figures."""

from .config import ExperimentConfig, default_config
from .report import format_series, format_table, format_value
from .workflows import (
    TrajectoryResult,
    combined_measurements_ablation,
    degree_sequence_ablation,
    figure1_comparison,
    figure3_tbd_bucketing,
    figure4_tbi_fitting,
    figure5_epsilon_sensitivity,
    figure6_scalability,
    jdd_accuracy_ablation,
    run_tbd_synthesis,
    run_tbi_synthesis,
    smooth_sensitivity_ablation,
    table1_graph_statistics,
    table2_tbi_triangles,
    table3_barabasi,
)

__all__ = [
    "ExperimentConfig",
    "default_config",
    "format_table",
    "format_series",
    "format_value",
    "TrajectoryResult",
    "figure1_comparison",
    "table1_graph_statistics",
    "figure3_tbd_bucketing",
    "table2_tbi_triangles",
    "figure4_tbi_fitting",
    "figure5_epsilon_sensitivity",
    "table3_barabasi",
    "figure6_scalability",
    "jdd_accuracy_ablation",
    "degree_sequence_ablation",
    "combined_measurements_ablation",
    "smooth_sensitivity_ablation",
    "run_tbi_synthesis",
    "run_tbd_synthesis",
]
