"""Joint CCDF / degree-sequence fitting via a lowest-cost monotone path.

Section 3.1 of the paper: a non-increasing degree sequence can be drawn as a
monotone staircase on the integer grid, from ``(0, large)`` down to
``(large, 0)``, stepping only right or down.  Given the noisy "vertical"
degree-sequence measurements ``v`` and the noisy "horizontal" CCDF
measurements ``h``, the best consistent staircase minimises::

    Σ_{(x, y) on the path}  |v[x] − y| + |h[y] − x|

which is found as a shortest path on the grid with edge costs

* right step ``(x, y) -> (x+1, y)`` costing ``|v[x] − y|`` (committing to the
  degree value ``y`` for rank ``x``), and
* down  step ``(x, y+1) -> (x, y)`` costing ``|h[y] − x|`` (committing to the
  CCDF value ``x`` at degree ``y``).

Edges are generated lazily and Dijkstra only ever explores the low-cost
"trough" near the true staircase, so the fit takes milliseconds at the scales
used here, as the paper reports.
"""

from __future__ import annotations

import heapq
from typing import Callable, Mapping, Sequence

from ..core.aggregation import NoisyCountResult

__all__ = ["fit_degree_sequence", "staircase_cost"]


def _lookup(measurement, index: int) -> float:
    """Read measurement ``index`` from any of the supported representations.

    Accepts :class:`NoisyCountResult` (lazy noisy zeros for unmeasured
    records), mappings, sequences, or callables.  Missing entries of plain
    containers read as 0.0.
    """
    if isinstance(measurement, NoisyCountResult):
        return float(measurement.value(index))
    if isinstance(measurement, Mapping):
        return float(measurement.get(index, 0.0))
    if callable(measurement):
        return float(measurement(index))
    sequence: Sequence[float] = measurement
    if 0 <= index < len(sequence):
        return float(sequence[index])
    return 0.0


def fit_degree_sequence(
    degree_sequence_measurement,
    ccdf_measurement,
    max_rank: int,
    max_degree: int,
) -> list[int]:
    """Fit a non-increasing integer degree sequence to two noisy views.

    Parameters
    ----------
    degree_sequence_measurement:
        Noisy ``rank -> degree`` measurements (the "vertical" view ``v``).
    ccdf_measurement:
        Noisy ``degree -> count of nodes exceeding it`` measurements (the
        "horizontal" view ``h``).
    max_rank:
        Upper bound on the number of nodes to fit (the staircase's width).
    max_degree:
        Upper bound on the largest degree (the staircase's height).

    Returns
    -------
    list of int
        ``fitted[x]`` is the fitted degree of the ``x``-th highest-degree
        node, for ``x`` in ``range(max_rank)``; trailing zeros are trimmed.
    """
    if max_rank < 1 or max_degree < 0:
        raise ValueError("max_rank must be >= 1 and max_degree >= 0")

    def vertical(rank: int) -> float:
        return _lookup(degree_sequence_measurement, rank)

    def horizontal(degree: int) -> float:
        return _lookup(ccdf_measurement, degree)

    path = _lowest_cost_path(vertical, horizontal, max_rank, max_degree)

    # Convert the staircase into a degree per rank: the degree of rank x is the
    # y-coordinate at which the path takes its horizontal step from x to x+1.
    fitted = [0] * max_rank
    for (x, y), (next_x, next_y) in zip(path, path[1:]):
        if next_x == x + 1 and next_y == y and x < max_rank:
            fitted[x] = y
    while fitted and fitted[-1] == 0:
        fitted.pop()
    return fitted


def _lowest_cost_path(
    vertical: Callable[[int], float],
    horizontal: Callable[[int], float],
    max_rank: int,
    max_degree: int,
) -> list[tuple[int, int]]:
    """Dijkstra from ``(0, max_degree)`` to ``(max_rank, 0)`` on the grid."""
    start = (0, max_degree)
    goal = (max_rank, 0)
    best: dict[tuple[int, int], float] = {start: 0.0}
    previous: dict[tuple[int, int], tuple[int, int]] = {}
    frontier: list[tuple[float, tuple[int, int]]] = [(0.0, start)]
    while frontier:
        cost, position = heapq.heappop(frontier)
        if position == goal:
            break
        if cost > best.get(position, float("inf")):
            continue
        x, y = position
        steps = []
        if x < max_rank:
            steps.append(((x + 1, y), abs(vertical(x) - y)))
        if y > 0:
            steps.append(((x, y - 1), abs(horizontal(y - 1) - x)))
        for neighbour, step_cost in steps:
            candidate = cost + step_cost
            if candidate < best.get(neighbour, float("inf")):
                best[neighbour] = candidate
                previous[neighbour] = position
                heapq.heappush(frontier, (candidate, neighbour))

    # Reconstruct the path (goal is always reachable on a finite grid).
    path = [goal]
    while path[-1] != start:
        path.append(previous[path[-1]])
    path.reverse()
    return path


def staircase_cost(
    degrees: Sequence[int],
    degree_sequence_measurement,
    ccdf_measurement,
) -> float:
    """Objective (2) of the paper evaluated for a candidate degree sequence.

    Useful for comparing post-processing strategies (e.g. plain isotonic
    regression versus the joint path fit) on the same noisy measurements.
    """
    degrees = list(degrees)
    total = 0.0
    # Horizontal steps: rank x committed to degree degrees[x].
    for rank, degree in enumerate(degrees):
        total += abs(_lookup(degree_sequence_measurement, rank) - degree)
    # Vertical steps: at degree y the CCDF commits to the number of ranks
    # whose degree exceeds y.
    max_degree = max(degrees, default=0)
    for degree in range(max_degree):
        ccdf_value = sum(1 for d in degrees if d > degree)
        total += abs(_lookup(ccdf_measurement, degree) - ccdf_value)
    return total
