"""Simple consistency repairs for released measurements (Section 4, purpose 1).

Laplace noise produces values that violate constraints the true statistic is
known to satisfy: counts come back negative or fractional, the total triangle
weight is not a multiple of the per-triangle contribution, a joint degree
distribution is not symmetric.  Removing such "obvious inconsistencies" is
pure post-processing — it touches only released values, so it costs no privacy
budget — and is the first of the three benefits the paper lists for its
inference workflow.  The heavyweight repair is MCMC (``repro.inference``);
the helpers here are the cheap, direct projections.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "clamp_nonnegative",
    "round_to_multiple",
    "project_counts",
    "symmetrize_pairs",
    "consistent_triangle_total",
]


def clamp_nonnegative(values: Mapping[Any, float]) -> dict[Any, float]:
    """Replace negative released values with zero.

    True multiset counts are non-negative; the projection never increases the
    L1 distance to the truth, so accuracy can only improve.
    """
    return {record: max(0.0, float(value)) for record, value in values.items()}


def round_to_multiple(value: float, multiple: float = 1.0) -> float:
    """Round a released value to the nearest non-negative multiple of ``multiple``.

    The paper's example: a noisy triangle count should be a non-negative
    multiple of one (or of six, when every triangle is observed six times by a
    symmetric query).
    """
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    value = max(0.0, float(value))
    return round(value / multiple) * multiple


def project_counts(
    values: Mapping[Any, float],
    nonnegative: bool = True,
    multiple: float | None = None,
    drop_zeros: bool = False,
) -> dict[Any, float]:
    """Project released per-record counts onto their known constraint set.

    ``nonnegative`` clamps below at zero, ``multiple`` snaps each value to the
    nearest multiple (e.g. 1.0 for integer counts), and ``drop_zeros`` removes
    records whose projected value is zero — convenient when the measurement
    was materialised over a large domain that is mostly noise.
    """
    projected: dict[Any, float] = {}
    for record, value in values.items():
        value = float(value)
        if nonnegative:
            value = max(0.0, value)
        if multiple is not None:
            value = round_to_multiple(value, multiple)
        if drop_zeros and value == 0.0:
            continue
        projected[record] = value
    return projected


def symmetrize_pairs(values: Mapping[Any, float]) -> dict[Any, float]:
    """Average the released values of ``(a, b)`` and ``(b, a)``.

    The true joint degree distribution is symmetric; averaging the two noisy
    directed cells halves the noise variance on every pair.  Records that are
    not 2-tuples are passed through unchanged.
    """
    symmetric: dict[Any, float] = {}
    for record, value in values.items():
        if isinstance(record, tuple) and len(record) == 2:
            mirror = (record[1], record[0])
            if mirror in values:
                value = (float(value) + float(values[mirror])) / 2.0
        symmetric[record] = float(value)
    return symmetric


def consistent_triangle_total(value: float, occurrences: float = 1.0) -> float:
    """Repair a noisy triangle total: non-negative and a whole number of triangles.

    ``occurrences`` is how many times the query observes each triangle (six
    for the symmetric-rotation queries of Section 3.3); the released value is
    divided by it, clamped at zero, and rounded to an integer count.
    """
    if occurrences <= 0:
        raise ValueError("occurrences must be positive")
    return round_to_multiple(float(value) / occurrences, 1.0)
