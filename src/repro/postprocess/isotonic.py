"""Isotonic regression (pool-adjacent-violators).

Hay et al.'s degree-distribution technique releases a noisy monotone sequence
and then projects it back onto the monotone cone, which removes most of the
noise at small degrees.  The paper's Section 3.1 post-processing uses the same
idea (before going further and jointly fitting the CCDF).  This module
implements the classic PAVA algorithm for both non-increasing and
non-decreasing targets, under squared error.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["isotonic_regression", "project_to_degree_sequence"]


def isotonic_regression(
    values: Sequence[float],
    increasing: bool = False,
    weights: Sequence[float] | None = None,
) -> list[float]:
    """Least-squares projection of ``values`` onto monotone sequences.

    Parameters
    ----------
    values:
        The (noisy) input sequence.
    increasing:
        If True fit a non-decreasing sequence; the default fits the
        non-increasing sequences used for degree data in this library.
    weights:
        Optional positive weights for the squared-error terms.

    Returns
    -------
    list of float
        The fitted sequence, same length as the input.
    """
    y = np.asarray(list(values), dtype=float)
    if y.size == 0:
        return []
    if weights is None:
        w = np.ones_like(y)
    else:
        w = np.asarray(list(weights), dtype=float)
        if w.shape != y.shape:
            raise ValueError("weights must have the same length as values")
        if np.any(w <= 0):
            raise ValueError("weights must be positive")
    if not increasing:
        # Fit a non-increasing sequence by flipping, fitting non-decreasing,
        # and flipping back.
        return list(reversed(isotonic_regression(list(reversed(y)), increasing=True,
                                                 weights=list(reversed(w)))))

    # Pool adjacent violators for the non-decreasing case: maintain blocks of
    # (weighted mean, total weight, length) and merge while the means violate
    # monotonicity.
    means: list[float] = []
    totals: list[float] = []
    lengths: list[int] = []
    for value, weight in zip(y, w):
        means.append(float(value))
        totals.append(float(weight))
        lengths.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            merged_weight = totals[-2] + totals[-1]
            merged_mean = (means[-2] * totals[-2] + means[-1] * totals[-1]) / merged_weight
            merged_length = lengths[-2] + lengths[-1]
            for stack in (means, totals, lengths):
                stack.pop()
            means[-1] = merged_mean
            totals[-1] = merged_weight
            lengths[-1] = merged_length
    fitted: list[float] = []
    for mean, length in zip(means, lengths):
        fitted.extend([mean] * length)
    return fitted


def project_to_degree_sequence(values: Sequence[float]) -> list[int]:
    """Turn a noisy sequence into a usable non-increasing degree sequence.

    Applies non-increasing isotonic regression, clips at zero, rounds to
    integers and drops the trailing zeros (the noisy measurements continue
    indefinitely with noise around zero; the analyst truncates them).
    """
    fitted = isotonic_regression(values, increasing=False)
    degrees = [int(round(max(0.0, value))) for value in fitted]
    while degrees and degrees[-1] == 0:
        degrees.pop()
    return degrees
