"""Consistency post-processing of released measurements (Section 3.1)."""

from .consistency import (
    clamp_nonnegative,
    consistent_triangle_total,
    project_counts,
    round_to_multiple,
    symmetrize_pairs,
)
from .isotonic import isotonic_regression, project_to_degree_sequence
from .pathfit import fit_degree_sequence, staircase_cost

__all__ = [
    "isotonic_regression",
    "project_to_degree_sequence",
    "fit_degree_sequence",
    "staircase_cost",
    "clamp_nonnegative",
    "round_to_multiple",
    "project_counts",
    "symmetrize_pairs",
    "consistent_triangle_total",
]
