"""Runtime lock-order sanitizer (``REPRO_SANITIZE=1``).

The repository declares a total lock hierarchy: every lock is created
through :func:`ordered_lock` / :func:`ordered_rlock` with a unique name and
an integer *level*, and the matching ``# lock-order: <level>`` comment at
the definition site is what :mod:`repro.lint.concurrency` verifies
statically.  This module is the *empirical* half of that contract: with
``REPRO_SANITIZE=1`` in the environment (or after :func:`enable`), every
lock the factories hand out is wrapped so each acquisition is checked
against a thread-local stack of currently-held locks:

* acquiring a lock whose level is **greater** than every held level is fine
  (that is the hierarchy working);
* re-acquiring a lock already held by this thread is fine when the lock is
  **reentrant** (an ``RLock`` by construction);
* acquiring another instance of the **same** lock at the **same** level is
  fine when the lock is declared ``peers`` — the sorted-name ``ExitStack``
  discipline of ``BudgetLedger.charge`` acquires many sibling budget locks
  at one level (rule R002 checks the sort order statically);
* anything else raises :class:`LockOrderViolation` immediately, naming the
  offending acquisition and the held stack — so a divergence between the
  declared static hierarchy and actual runtime behaviour fails the test
  suite (and the chaos harness) loudly instead of deadlocking rarely.

When the sanitizer is disabled (the default) the factories return plain
``threading`` primitives: zero overhead, no behavioural difference.

The level registry is process-global and first-declaration-wins: declaring
the same name twice with a different level is a programming error and
raises ``ValueError`` eagerly.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

__all__ = [
    "LockOrderViolation",
    "LockSpec",
    "declared_locks",
    "disable",
    "enable",
    "held_locks",
    "is_enabled",
    "ordered_lock",
    "ordered_rlock",
    "reset_registry",
]


class LockOrderViolation(RuntimeError):
    """A runtime lock acquisition contradicted the declared lock hierarchy."""


@dataclass(frozen=True)
class LockSpec:
    """The declared identity of one lock in the hierarchy.

    ``name`` is the hierarchy key (e.g. ``"core.budget"``), shared by every
    instance of the lock (each ``PrivacyBudget`` has its own instance of the
    ``core.budget`` lock).  ``io_ok`` is consumed by the *static* analyzer
    only (it licenses blocking calls under the lock, rule R009); it has no
    runtime effect.
    """

    name: str
    level: int
    reentrant: bool = False
    peers: bool = False
    io_ok: bool = False


#: Process-global registry of declared lock specs, keyed by name.
_REGISTRY: dict[str, LockSpec] = {}
_REGISTRY_LOCK = threading.Lock()  # lock-order: 95 sanitize.registry # leaf: guards only the spec dict

_FORCED: bool | None = None  #: programmatic override of the env switch

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def is_enabled() -> bool:
    """Whether locks created *now* will be sanitized."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


def enable() -> None:
    """Force the sanitizer on for locks created after this call (tests)."""
    global _FORCED
    _FORCED = True


def disable() -> None:
    """Undo :func:`enable`; the environment variable decides again."""
    global _FORCED
    _FORCED = None


def reset_registry() -> None:
    """Forget every declared spec (testing hook; never used in production)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()


def declared_locks() -> dict[str, LockSpec]:
    """A snapshot of every lock spec declared so far in this process."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def _declare(spec: LockSpec) -> LockSpec:
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(spec.name)
        if existing is None:
            _REGISTRY[spec.name] = spec
            return spec
        if existing != spec:
            raise ValueError(
                f"lock {spec.name!r} is already declared as {existing}, "
                f"refusing conflicting re-declaration as {spec}"
            )
        return existing


# ---------------------------------------------------------------------------
# The thread-local held-lock stack
# ---------------------------------------------------------------------------
class _Held:
    """One held-lock entry: which spec, which instance."""

    __slots__ = ("spec", "lock")

    def __init__(self, spec: LockSpec, lock: "_SanitizedLock") -> None:
        self.spec = spec
        self.lock = lock


_local = threading.local()


def _stack() -> list[_Held]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def held_locks() -> list[tuple[str, int]]:
    """The current thread's held sanitized locks as ``(name, level)`` pairs."""
    return [(entry.spec.name, entry.spec.level) for entry in _stack()]


class _SanitizedLock:
    """A lock wrapper that checks every acquisition against the hierarchy.

    Mirrors the ``threading.Lock``/``RLock`` interface the codebase uses
    (``acquire``/``release``/context manager/``locked`` when available).
    """

    __slots__ = ("spec", "_inner")

    def __init__(self, spec: LockSpec, inner) -> None:
        self.spec = spec
        self._inner = inner

    # -- ordering check -------------------------------------------------
    def _check(self) -> None:
        stack = _stack()
        if not stack:
            return
        if self.spec.reentrant and any(entry.lock is self for entry in stack):
            return  # re-entrant re-acquisition of a lock this thread holds
        ceiling = max(entry.spec.level for entry in stack)
        if self.spec.level > ceiling:
            return
        if self.spec.level == ceiling and self.spec.peers:
            peers_only = all(
                entry.spec.name == self.spec.name
                for entry in stack
                if entry.spec.level == ceiling
            )
            if peers_only:
                return  # sibling instances at one level (sorted ExitStack)
        held = " -> ".join(
            f"{entry.spec.name}@{entry.spec.level}" for entry in stack
        )
        raise LockOrderViolation(
            f"thread {threading.current_thread().name!r} acquired lock "
            f"{self.spec.name!r} (level {self.spec.level}) while holding "
            f"[{held}]; the declared hierarchy requires strictly increasing "
            f"levels (see README 'Concurrency model & lock order')"
        )

    # -- lock interface --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _stack().append(_Held(self.spec, self))
        return acquired

    def release(self) -> None:
        stack = _stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock is self:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is None:  # RLock has no locked() before 3.12
            return any(entry.lock is self for entry in _stack())
        return inner_locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<sanitized {self.spec.name}@{self.spec.level} {self._inner!r}>"


# ---------------------------------------------------------------------------
# The factories every repository lock is created through
# ---------------------------------------------------------------------------
def ordered_lock(
    name: str,
    level: int,
    *,
    peers: bool = False,
    io_ok: bool = False,
):
    """A ``threading.Lock`` declared at ``level`` in the lock hierarchy.

    With the sanitizer disabled this *is* a plain ``threading.Lock``.  The
    call site must carry the matching ``# lock-order: <level>`` comment;
    :mod:`repro.lint.concurrency` cross-checks the two.
    """
    spec = _declare(
        LockSpec(name=name, level=int(level), peers=peers, io_ok=io_ok)
    )
    if not is_enabled():
        return threading.Lock()
    return _SanitizedLock(spec, threading.Lock())


def ordered_rlock(
    name: str,
    level: int,
    *,
    peers: bool = False,
    io_ok: bool = False,
):
    """A re-entrant lock declared at ``level`` in the lock hierarchy."""
    spec = _declare(
        LockSpec(
            name=name, level=int(level), reentrant=True, peers=peers, io_ok=io_ok
        )
    )
    if not is_enabled():
        return threading.RLock()
    return _SanitizedLock(spec, threading.RLock())
