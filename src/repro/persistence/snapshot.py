"""Ledger state snapshots and write-ahead-log replay.

Recovery is the composition of two artifacts kept in the same sqlite file
(:mod:`repro.persistence.wal`):

* a **snapshot**: the full budget state (per ``(scope, source)`` totals and
  committed spends) as of some prefix of the write-ahead log, folded into one
  JSON row when the log is compacted; and
* the **write-ahead log tail**: every budget record appended after the
  snapshot was taken — ``register`` rows plus ``intent``/``commit``/``abort``
  rows grouped into charge transactions.

:func:`replay` rebuilds the exact pre-crash ledger state from the pair.  The
soundness-critical rule is how unfinished transactions are treated: an
``intent`` whose transaction has a ``commit`` row is counted as spent; an
intent with an ``abort`` row, or with *no* resolution row at all (the process
died between appending its intents and appending the commit record), is
dropped.  Dropping unresolved intents is exact, not merely safe, because the
durable ledger only acknowledges a charge — and the service only releases the
corresponding noisy answer — strictly *after* the commit record is on disk:
an unresolved intent can never correspond to released information.

Compaction (:meth:`repro.persistence.wal.LedgerStore.snapshot`) folds exactly
the *resolved* prefix of the log into a new snapshot row and deletes the
folded rows, so ``replay(snapshot, remaining rows)`` is an invariant of
compaction: unresolved intents survive in the log until their commit or abort
arrives (possibly from another worker process), no matter how many snapshots
are taken in between.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["BudgetState", "LedgerState", "replay", "state_from_json", "state_to_json"]


@dataclass
class BudgetState:
    """Recovered durable state of one ``(scope, source)`` budget."""

    total: float
    spent: float = 0.0


@dataclass
class LedgerState:
    """Recovered durable state of every budget scope in the store.

    ``budgets`` maps scope (the hosted session name) to a mapping of source
    name to :class:`BudgetState`.
    """

    budgets: dict[str, dict[str, BudgetState]] = field(default_factory=dict)

    def budget(self, scope: str, source: str) -> BudgetState | None:
        """The recovered budget for ``(scope, source)``, if registered."""
        return self.budgets.get(scope, {}).get(source)

    def ensure(self, scope: str, source: str, total: float) -> BudgetState:
        """Fetch-or-create the budget for ``(scope, source)``."""
        sources = self.budgets.setdefault(scope, {})
        budget = sources.get(source)
        if budget is None:
            budget = BudgetState(total=total)
            sources[source] = budget
        return budget

    def report(self) -> dict[str, dict[str, dict[str, float]]]:
        """JSON-friendly summary (scope -> source -> total/spent/remaining)."""
        return {
            scope: {
                source: {
                    "total": budget.total,
                    "spent": budget.spent,
                    "remaining": budget.total - budget.spent,
                }
                for source, budget in sorted(sources.items())
            }
            for scope, sources in sorted(self.budgets.items())
        }


def state_to_json(state: LedgerState) -> str:
    """Serialise a :class:`LedgerState` for the snapshot table.

    ``float('inf')`` totals round-trip through Python's JSON ``Infinity``
    extension, which :func:`json.loads` accepts by default.
    """
    return json.dumps(
        {
            scope: {
                source: {"total": budget.total, "spent": budget.spent}
                for source, budget in sources.items()
            }
            for scope, sources in state.budgets.items()
        },
        sort_keys=True,
    )


def state_from_json(payload: str | None) -> LedgerState:
    """Parse a snapshot row back into a :class:`LedgerState`."""
    state = LedgerState()
    if not payload:
        return state
    decoded = json.loads(payload)
    for scope, sources in decoded.items():
        for source, entry in sources.items():
            state.budgets.setdefault(scope, {})[source] = BudgetState(
                total=float(entry["total"]), spent=float(entry["spent"])
            )
    return state


def replay(
    snapshot: LedgerState,
    rows: Iterable[Mapping[str, Any]],
    unresolved: dict[str, list[Mapping[str, Any]]] | None = None,
) -> LedgerState:
    """Apply write-ahead-log rows on top of a snapshot, in log order.

    ``rows`` are mappings with at least ``kind``/``txn``/``scope``/``source``/
    ``amount`` keys (sqlite rows from the ``wal`` table).  Transactions are
    resolved by their ``commit`` or ``abort`` row; intents of transactions
    that never resolve within ``rows`` are dropped (see the module docstring
    for why that is exact).  When ``unresolved`` is provided, those dropped
    intents are collected into it keyed by transaction id — compaction uses
    this to keep them in the log for a resolution row that may still arrive
    from a concurrent worker.
    """
    state = LedgerState(
        budgets={
            scope: {source: BudgetState(b.total, b.spent) for source, b in sources.items()}
            for scope, sources in snapshot.budgets.items()
        }
    )
    pending: dict[str, list[Mapping[str, Any]]] = {}
    for row in rows:
        kind = row["kind"]
        if kind == "register":
            # First registration wins; re-registration rows are never
            # appended for an existing (scope, source) pair.
            budget = state.budget(row["scope"], row["source"])
            if budget is None:
                state.ensure(row["scope"], row["source"], float(row["amount"]))
        elif kind == "intent":
            pending.setdefault(row["txn"], []).append(row)
        elif kind == "commit":
            for intent in pending.pop(row["txn"], []):
                budget = state.ensure(
                    intent["scope"], intent["source"], float("inf")
                )
                budget.spent += float(intent["amount"])
        elif kind == "abort":
            pending.pop(row["txn"], None)
    if unresolved is not None:
        unresolved.update(pending)
    return state
