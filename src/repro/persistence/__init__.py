"""Durable persistence for the measurement service's privacy state.

In wPINQ the budget ledger *is* the privacy guarantee: every released
measurement is sound only if cumulative ε spend is tracked for the lifetime
of the protected data.  This package makes that tracking survive process
death, and provides the admission controls a durable multi-process service
needs:

:mod:`repro.persistence.wal`
    :class:`LedgerStore` — a WAL-mode sqlite file holding the budget
    write-ahead log (intent/commit charge transactions), snapshots, the
    append-only audit log, released answers, and hosted-session definitions.
    Safe to share between worker processes (serialized write transactions).
:mod:`repro.persistence.snapshot`
    Snapshot state model and :func:`replay` — rebuilds the exact pre-crash
    ledger state from snapshot + log tail, dropping unresolved charge intents
    (which, by the commit protocol, never correspond to released answers).
:mod:`repro.persistence.ledger`
    :class:`DurableLedger` — the drop-in
    :class:`~repro.core.budget.BudgetLedger` that writes through the store,
    recovers spend on registration, and checks affordability against durable
    cross-process state.
:mod:`repro.persistence.ratelimit`
    Per-tenant :class:`TokenBucket`/:class:`RateLimiter` admission control
    and a global :class:`LoadShedder`, layered under the scheduler's
    per-session backpressure.
"""

from .ledger import DurableLedger
from .ratelimit import LoadShedder, RateLimiter, TokenBucket
from .snapshot import BudgetState, LedgerState, replay
from .wal import LedgerStore

__all__ = [
    "BudgetState",
    "DurableLedger",
    "LedgerState",
    "LedgerStore",
    "LoadShedder",
    "RateLimiter",
    "TokenBucket",
    "replay",
]
