"""Per-tenant token-bucket rate limiting and global load shedding.

Backpressure (the bounded per-session queues of
:mod:`repro.service.scheduler`) protects the server once work has been
admitted; these two admission controls decide what gets admitted at all:

* :class:`TokenBucket` / :class:`RateLimiter` — a classic token bucket per
  tenant session: sustained request rate is capped at ``rate`` per second
  with bursts up to ``burst``, so one chatty tenant cannot starve the worker
  pool that every tenant shares.  Refusals raise
  :class:`~repro.exceptions.RateLimitedError` (HTTP 429) carrying a
  ``retry_after`` hint — the time until the bucket holds a token again.
* :class:`LoadShedder` — a global bound on pending work across *all*
  sessions.  Per-session queues bound each tenant individually; with
  thousands of tenants the sum still grows without limit, so beyond
  ``max_total`` pending requests new admissions are shed with
  :class:`~repro.exceptions.ServiceOverloadedError` (HTTP 503, retryable).

Both are time-based on :func:`time.monotonic` and thread-safe; both keep
counters for the stats endpoint.
"""

from __future__ import annotations

import time
from typing import Callable

from ..exceptions import RateLimitedError, ServiceOverloadedError
from ..resilience.policy import seeded_jitter
from ..sanitize import ordered_lock

__all__ = ["LoadShedder", "RateLimiter", "TokenBucket"]

#: Fractional spread applied to retry_after hints: each refusal's hint is
#: scaled by a deterministic factor in [1, 1 + _JITTER), so clients refused
#: in the same instant don't all come back in the same instant.
_JITTER = 0.25


class TokenBucket:
    """One tenant's bucket: ``rate`` tokens/second, capacity ``burst``."""

    def __init__(
        self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns 0.0 on success, else the
        seconds until enough tokens will have accrued (the retry-after hint).

        Not synchronised — :class:`RateLimiter` serialises access.
        """
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


class RateLimiter:
    """Thread-safe map of tenant session name to its :class:`TokenBucket`."""

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2.0 * rate)
        self._clock = clock
        self._seed = int(seed)
        self._lock = ordered_lock("persistence.ratelimit", 24)  # lock-order: 24
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted = 0
        self._limited = 0

    def admit(self, session: str) -> None:
        """Admit one request for ``session`` or raise :class:`RateLimitedError`."""
        with self._lock:
            bucket = self._buckets.get(session)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[session] = bucket
            retry_after = bucket.try_acquire()
            if retry_after > 0.0:
                self._limited += 1
                # Deterministic per-refusal jitter: a burst of clients all
                # refused at once would otherwise share one retry_after and
                # stampede back together.  Keyed on (session, refusal count)
                # so a replay with the same seed reproduces the same hints.
                retry_after *= 1.0 + _JITTER * seeded_jitter(
                    self._seed, session, self._limited
                )
                raise RateLimitedError(
                    f"session {session!r} exceeded its rate limit of "
                    f"{self.rate:g} requests/s (burst {self.burst:g}); retry "
                    f"in {retry_after:.3f}s",
                    retry_after=retry_after,
                )
            self._admitted += 1

    def forget(self, session: str) -> None:
        """Drop a closed session's bucket."""
        with self._lock:
            self._buckets.pop(session, None)

    def stats(self) -> dict[str, float]:
        """Admission counters for the stats endpoint."""
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "admitted": self._admitted,
                "limited": self._limited,
                "sessions": len(self._buckets),
            }


class LoadShedder:
    """Global pending-work bound across every session of one worker."""

    def __init__(self, max_total: int) -> None:
        if max_total < 1:
            raise ValueError("max_total must be a positive integer")
        self.max_total = max_total
        self._lock = ordered_lock("persistence.shedder", 26)  # lock-order: 26
        self._pending = 0
        self._shed = 0

    def admit(self) -> None:
        """Count one pending request or shed it with
        :class:`ServiceOverloadedError`; pair with :meth:`release`."""
        with self._lock:
            if self._pending >= self.max_total:
                self._shed += 1
                raise ServiceOverloadedError(
                    f"service has {self._pending} pending measurements across "
                    f"all sessions (limit {self.max_total}); shedding load — "
                    f"retry with backoff"
                )
            self._pending += 1

    def release(self) -> None:
        """A previously admitted request finished (or failed)."""
        with self._lock:
            if self._pending > 0:
                self._pending -= 1

    def stats(self) -> dict[str, int]:
        """Pending/shed counters for the stats endpoint."""
        with self._lock:
            return {
                "pending": self._pending,
                "shed": self._shed,
                "max_total": self.max_total,
            }
