"""A :class:`~repro.core.budget.BudgetLedger` backed by the durable store.

``DurableLedger`` is a drop-in replacement for the in-memory ledger that a
:class:`~repro.core.queryable.PrivacySession` charges against, with three
additional guarantees:

* **Durability** — every registration and every charge is written to the
  write-ahead log (:mod:`repro.persistence.wal`) *before* it is acknowledged;
  a charge is only applied in memory after its commit record is on disk, so
  the in-memory state is always a replica of durable state, never ahead of it.
* **Crash recovery** — :meth:`register` adopts the spend recovered from the
  store, so re-opening a ledger (or re-creating a hosted session after a
  restart) resumes from the exact committed pre-crash spend: no released ε is
  ever forgotten.
* **Cross-process exactness** — the affordability check of a charge runs
  inside the store's serialized write transaction against *durable* spends,
  so workers in different processes sharing one ledger file can never jointly
  overspend a budget; in-memory copies are re-synced from the store on every
  charge and on :meth:`report`.

The in-memory two-phase locking of the base class is retained for
thread-level atomicity within one process; the store's single-writer
transaction provides the process-level serialization on top.
"""

from __future__ import annotations

from contextlib import ExitStack

from ..core.budget import BudgetLedger, PrivacyBudget
from ..core.laplace import validate_epsilon
from ..exceptions import BudgetExceededError
from .wal import LedgerStore

__all__ = ["DurableLedger"]


class DurableLedger(BudgetLedger):
    """Budget ledger whose source of truth is a :class:`LedgerStore`.

    Parameters
    ----------
    store:
        The durable store (one sqlite file, possibly shared with other
        worker processes).
    scope:
        The namespace of this ledger's budgets inside the store — the hosted
        session name in the measurement service, so distinct tenants' budgets
        never collide even when their protected sources share a name.
    """

    def __init__(self, store: LedgerStore, scope: str) -> None:
        super().__init__()
        self._store = store
        self._scope = scope

    @property
    def store(self) -> LedgerStore:
        """The durable store this ledger writes through."""
        return self._store

    @property
    def scope(self) -> str:
        """This ledger's namespace inside the store."""
        return self._scope

    # ------------------------------------------------------------------
    def register(self, name: str, total_epsilon: float) -> PrivacyBudget:
        """Register a source durably, adopting any recovered spend.

        The durable registration happens first (it also rejects a total that
        conflicts with a previous incarnation's), then the in-memory budget
        is created and synced to the recovered spent ε — which is non-zero
        exactly when this (scope, source) pair spent budget before a restart.
        """
        if total_epsilon != float("inf"):
            total_epsilon = validate_epsilon(total_epsilon)
        total, recovered_spent = self._store.register(
            self._scope, name, total_epsilon
        )
        budget = super().register(name, total)
        if recovered_spent > budget.spent:
            budget._sync_spent(recovered_spent)
            budget._record_charge(
                recovered_spent, "(recovered from durable ledger)"
            )
        return budget

    def charge(self, costs: dict[str, float], description: str = "") -> None:
        """Charge through the write-ahead log, then mirror in memory.

        Order of operations: in-memory pre-check (cheap, catches the common
        refusal without touching disk) → durable intent append → durable
        affordability check + commit record → in-memory debit synced to the
        authoritative durable spends.  On a durable refusal — possible even
        after the pre-check passed, when another worker spent concurrently —
        the in-memory budgets are refreshed so reads reflect the spends that
        caused it, and :class:`BudgetExceededError` propagates with nothing
        charged (an ``abort`` record resolves the intents).
        """
        validated = {name: validate_epsilon(cost) for name, cost in costs.items()}
        budgets = {name: self.budget_for(name) for name in validated}
        with ExitStack() as stack:
            for name in sorted(budgets):
                stack.enter_context(budgets[name].lock)
            for name, cost in validated.items():
                if not budgets[name].can_afford(cost):
                    raise BudgetExceededError(
                        cost, budgets[name].remaining, source=name
                    )
            try:
                # The WAL write happens under the budget locks on purpose:
                # the two-phase durable charge is only atomic if no sibling
                # thread can read or charge these scopes between the store
                # commit and the in-memory sync below.  The sqlite write is
                # a bounded single-row WAL append, and the locks are
                # per-scope, so unrelated tenants are unaffected.
                spent_after = self._store.charge(  # lint: disable=R009
                    self._scope, validated, description
                )
            except BudgetExceededError:
                # Re-sync before surfacing: same atomicity argument.
                self._refresh_locked(budgets)  # lint: disable=R009
                raise
            for name, cost in validated.items():
                budgets[name]._sync_spent(spent_after[name])
                budgets[name]._record_charge(cost, description)

    def report(self) -> dict[str, dict[str, float]]:
        """Budget summary, re-synced from the durable store first.

        The refresh makes the report exact in multi-worker deployments:
        charges committed by sibling processes since this worker's last
        charge become visible.
        """
        self.refresh()
        return super().report()

    def refresh(self) -> None:
        """Re-sync every in-memory budget to the durable committed spends."""
        with self._lock:
            budgets = dict(self._budgets)
        with ExitStack() as stack:
            for name in sorted(budgets):
                stack.enter_context(budgets[name].lock)
            # Reading durable spends under the budget locks keeps the
            # refresh exact: no charge can interleave between the store
            # read and the in-memory sync.  Bounded single-scope read.
            self._refresh_locked(budgets)  # lint: disable=R009

    def _refresh_locked(self, budgets: dict[str, PrivacyBudget]) -> None:
        durable = self._store.spent(self._scope)
        for name, budget in budgets.items():
            spent = durable.get(name)
            if spent is not None and spent != budget.spent:
                budget._sync_spent(spent)
