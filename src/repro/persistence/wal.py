"""The durable store: a WAL-mode sqlite file behind the privacy ledger.

One :class:`LedgerStore` owns one sqlite connection to the service's ledger
file.  Several stores — in other threads, or in other *processes* (the
multi-worker server of :mod:`repro.service.workers`) — may point at the same
file: sqlite's WAL journal plus ``BEGIN IMMEDIATE`` write transactions give a
single serialized writer, which is exactly the concurrency model the privacy
ledger needs, since the affordability check and the commit record of a charge
must be atomic against every other worker's charges.

Tables
------
``wal``
    The budget write-ahead log: ``register`` rows plus charge transactions
    (``intent`` rows, one per involved source, resolved by one ``commit`` or
    ``abort`` row sharing their transaction id).  Compacted into ``snapshots``
    every ``snapshot_every`` commits.
``snapshots``
    Folded ledger state (JSON) as of a log prefix; the latest row wins.
``audit``
    The append-only audit log.  ``seq`` is allocated by sqlite, so events are
    totally ordered across restarts and across worker processes.
``releases``
    Released noisy answers keyed ``(scope, query, ε)`` — the durable half of
    the answer cache, making retries idempotent across restarts and workers.
``sessions``
    Hosted-session definitions (records, total ε, seed, executor, source) so
    a restarted or sibling worker can re-materialise a tenant's session.
``incarnations``
    A monotonic per-scope counter advanced on every re-materialisation: each
    incarnation of a seeded session derives a distinct noise stream, so no
    two released measurements can ever share Laplace draws (sharing a draw
    would let an analyst difference two releases and cancel the noise).

The charge protocol (:meth:`LedgerStore.charge`) is deliberately two
transactions, not one:

1. append every ``intent`` row and commit — the intents are durable;
2. in a second write transaction, re-read the durable spends (which now
   include any charges other workers committed in between), check
   affordability, and append the ``commit`` record — or an ``abort`` record
   when some source cannot afford its cost.

A crash between the two leaves durable intents with no resolution row;
:func:`repro.persistence.snapshot.replay` drops them, which is exact because
the caller is only told the charge succeeded — and only then releases the
noisy answer — after step 2 returns.  ``fault_after_intent`` is a test hook
invoked between the steps so crash-recovery tests can kill the process at
precisely this point.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from typing import Any, Callable, Iterator

from ..exceptions import BudgetExceededError, InvalidEpsilonError
from ..resilience.faults import inject
from ..sanitize import ordered_rlock
from .snapshot import LedgerState, replay, state_from_json, state_to_json

__all__ = ["LedgerStore", "decode_record", "encode_record"]

# Matches PrivacyBudget.can_afford: absorbs float accumulation across charges.
_SLACK = 1e-12

_SCHEMA = """
CREATE TABLE IF NOT EXISTS wal (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    txn TEXT NOT NULL DEFAULT '',
    kind TEXT NOT NULL,
    scope TEXT NOT NULL DEFAULT '',
    source TEXT NOT NULL DEFAULT '',
    amount REAL NOT NULL DEFAULT 0.0,
    description TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS wal_txn ON wal(txn);
CREATE TABLE IF NOT EXISTS snapshots (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    wal_id INTEGER NOT NULL,
    created_at REAL NOT NULL,
    state TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS audit (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    timestamp REAL NOT NULL,
    worker INTEGER NOT NULL DEFAULT 0,
    session TEXT NOT NULL,
    action TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS releases (
    scope TEXT NOT NULL,
    query TEXT NOT NULL,
    epsilon REAL NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (scope, query, epsilon)
);
CREATE TABLE IF NOT EXISTS sessions (
    name TEXT PRIMARY KEY,
    created_at REAL NOT NULL,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS incarnations (
    scope TEXT PRIMARY KEY,
    count INTEGER NOT NULL
);
"""


def encode_record(record: Any) -> Any:
    """JSON-encode one released record (tuples become arrays, recursively)."""
    if isinstance(record, tuple):
        return [encode_record(element) for element in record]
    return record


def decode_record(record: Any) -> Any:
    """Invert :func:`encode_record` (arrays become tuples, recursively).

    Mirrors the HTTP transport's record convention, so a record round-trips
    identically whether it travelled through JSON over the wire or through
    the durable store.
    """
    if isinstance(record, list):
        return tuple(decode_record(element) for element in record)
    return record


class LedgerStore:
    """Durable WAL + snapshot store for budgets, audit, answers and sessions.

    Parameters
    ----------
    path:
        The sqlite file (created if missing).  ``":memory:"`` is rejected —
        an in-memory store would silently defeat the durability guarantee;
        use the plain in-memory service instead.
    snapshot_every:
        Commit count between automatic log compactions.
    timeout:
        Seconds a write transaction waits for another worker's writer lock.
    """

    def __init__(
        self, path: str | os.PathLike, snapshot_every: int = 64, timeout: float = 30.0
    ) -> None:
        path = os.fspath(path)
        if path == ":memory:":
            raise ValueError(
                "LedgerStore requires a file path; an in-memory ledger cannot "
                "survive a restart (use MeasurementService without a ledger "
                "path for ephemeral serving)"
            )
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be a positive integer")
        self.path = path
        self.snapshot_every = snapshot_every
        # Invoked between the intent append and the commit record (tests).
        self.fault_after_intent: Callable[[], None] | None = None
        self._mutex = ordered_rlock("persistence.wal", 70, io_ok=True)  # lock-order: 70 io-ok
        self._commits_since_snapshot = 0
        self._closed = False
        # One connection, shared across threads under ``_mutex``; explicit
        # transaction control (isolation_level=None) because the charge
        # protocol needs precisely-placed BEGIN IMMEDIATE/COMMIT boundaries.
        self._conn = sqlite3.connect(
            path, timeout=timeout, isolation_level=None, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        # FULL makes a COMMIT an fsync barrier: a charge acknowledged to the
        # caller is on disk even across power loss, which is what lets replay
        # treat unresolved intents as exactly-not-released.
        self._conn.execute("PRAGMA synchronous=FULL")
        with self._mutex:
            self._conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Compact the log one final time and close the connection."""
        with self._mutex:
            if self._closed:
                return
            try:
                self.snapshot()
            finally:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "LedgerStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Budget write-ahead log
    # ------------------------------------------------------------------
    def load_state(self) -> LedgerState:
        """Rebuild the current durable ledger state (snapshot + log replay)."""
        with self._mutex:
            snapshot = self._latest_snapshot()
            rows = self._conn.execute("SELECT * FROM wal ORDER BY id").fetchall()
        return replay(snapshot, rows)

    def register(self, scope: str, source: str, total: float) -> tuple[float, float]:
        """Durably register ``(scope, source)`` at ``total`` ε.

        Returns ``(total, spent)`` from the durable state — ``spent`` is
        non-zero when the pair was already registered by a previous
        incarnation (or another worker), which is exactly the crash-recovery
        path: the in-memory budget adopts the recovered spend.  A conflicting
        ``total`` raises :class:`InvalidEpsilonError`, mirroring
        :meth:`repro.core.budget.BudgetLedger.register`.
        """
        with self._mutex:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                state = self._load_state_locked()
                budget = state.budget(scope, source)
                if budget is not None:
                    if budget.total != total:
                        raise InvalidEpsilonError(
                            f"source {source!r} of session {scope!r} is durably "
                            f"registered with total epsilon {budget.total:g}, "
                            f"refusing conflicting re-registration at {total:g}"
                        )
                    self._conn.execute("COMMIT")
                    return budget.total, budget.spent
                self._conn.execute(
                    "INSERT INTO wal (txn, kind, scope, source, amount) "
                    "VALUES ('', 'register', ?, ?, ?)",
                    (scope, source, total),
                )
                self._conn.execute("COMMIT")
                return total, 0.0
            except BaseException:
                self._rollback()
                raise

    def charge(
        self, scope: str, costs: dict[str, float], description: str = ""
    ) -> dict[str, float]:
        """Durably charge every source of ``scope``, or record an abort.

        Implements the two-step intent/commit protocol described in the
        module docstring.  Returns the authoritative per-source ``spent``
        totals *after* the charge (which include spends committed by other
        workers); raises :class:`BudgetExceededError` — after durably
        aborting the transaction — when any source cannot afford its cost
        against the durable state.
        """
        txn = uuid.uuid4().hex
        with self._mutex:
            # Step 1: durable intents.
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for source, amount in sorted(costs.items()):
                    self._conn.execute(
                        "INSERT INTO wal (txn, kind, scope, source, amount, description) "
                        "VALUES (?, 'intent', ?, ?, ?, ?)",
                        (txn, scope, source, amount, description),
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._rollback()
                raise

            if self.fault_after_intent is not None:
                self.fault_after_intent()
            # Crash window the recovery protocol exists for: durable intents,
            # no resolution row yet.  Replay drops them.
            inject("wal.intent_commit")

            # Step 2: affordability against the durable state, then the
            # commit record — one write transaction, so the check and the
            # commit are atomic against every other worker.
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                state = self._load_state_locked()
                refusal: BudgetExceededError | None = None
                for source, amount in sorted(costs.items()):
                    budget = state.budget(scope, source)
                    total = budget.total if budget is not None else float("inf")
                    spent = budget.spent if budget is not None else 0.0
                    if amount > total - spent + _SLACK:
                        refusal = BudgetExceededError(
                            amount, total - spent, source=source
                        )
                        break
                kind = "abort" if refusal is not None else "commit"
                self._conn.execute(
                    "INSERT INTO wal (txn, kind) VALUES (?, ?)", (txn, kind)
                )
                inject("wal.pre_commit")
                self._conn.execute("COMMIT")
                inject("wal.post_commit")
            except BaseException:
                self._rollback()
                raise
            if refusal is not None:
                raise refusal
            self._commits_since_snapshot += 1
            if self._commits_since_snapshot >= self.snapshot_every:
                self.snapshot()
        spent_after: dict[str, float] = {}
        for source, amount in costs.items():
            budget = state.budget(scope, source)
            base = budget.spent if budget is not None else 0.0
            spent_after[source] = base + amount
        return spent_after

    def spent(self, scope: str) -> dict[str, float]:
        """Durable per-source committed spends of one scope."""
        sources = self.load_state().budgets.get(scope, {})
        return {source: budget.spent for source, budget in sources.items()}

    def snapshot(self) -> None:
        """Fold the resolved log prefix into a snapshot row and prune it.

        Unresolved intents (a transaction another worker has started but not
        yet committed or aborted — or that a crashed worker will never
        resolve) are kept in the log: they are not part of the folded state,
        and a commit record arriving later must still find them.
        """
        with self._mutex:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                snapshot = self._latest_snapshot()
                rows = self._conn.execute("SELECT * FROM wal ORDER BY id").fetchall()
                if not rows:
                    self._conn.execute("COMMIT")
                    self._commits_since_snapshot = 0
                    return
                unresolved: dict[str, list[Any]] = {}
                state = replay(snapshot, rows, unresolved)
                keep = {row["id"] for intents in unresolved.values() for row in intents}
                max_id = rows[-1]["id"]
                self._conn.execute(
                    "INSERT INTO snapshots (wal_id, created_at, state) VALUES (?, ?, ?)",
                    (max_id, time.time(), state_to_json(state)),
                )
                if keep:
                    placeholders = ",".join("?" * len(keep))
                    self._conn.execute(
                        f"DELETE FROM wal WHERE id NOT IN ({placeholders})",
                        tuple(keep),
                    )
                else:
                    self._conn.execute("DELETE FROM wal")
                # Only the newest snapshot is ever read; drop the older rows.
                self._conn.execute(
                    "DELETE FROM snapshots WHERE wal_id < ?", (max_id,)
                )
                self._conn.execute("COMMIT")
                self._commits_since_snapshot = 0
            except BaseException:
                self._rollback()
                raise

    # ------------------------------------------------------------------
    # Audit log
    # ------------------------------------------------------------------
    def append_audit(
        self, session: str, action: str, detail: dict[str, Any], worker: int
    ) -> tuple[int, float]:
        """Append one audit event; returns its global ``(sequence, timestamp)``."""
        timestamp = time.time()
        with self._mutex:
            cursor = self._conn.execute(
                "INSERT INTO audit (timestamp, worker, session, action, detail) "
                "VALUES (?, ?, ?, ?, ?)",
                (timestamp, worker, session, action, json.dumps(detail, default=str)),
            )
        return int(cursor.lastrowid), timestamp

    def audit_rows(self, session: str | None = None) -> Iterator[sqlite3.Row]:
        """Audit events in global sequence order (optionally one session's)."""
        with self._mutex:
            if session is None:
                rows = self._conn.execute("SELECT * FROM audit ORDER BY seq").fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM audit WHERE session = ? ORDER BY seq", (session,)
                ).fetchall()
        return iter(rows)

    # ------------------------------------------------------------------
    # Released answers
    # ------------------------------------------------------------------
    def put_release(
        self, scope: str, query: str, epsilon: float, values: list[tuple[Any, float]]
    ) -> None:
        """Persist one released answer (first release wins, like the cache)."""
        payload = json.dumps(
            [[encode_record(record), value] for record, value in values]
        )
        with self._mutex:
            self._conn.execute(
                "INSERT OR IGNORE INTO releases (scope, query, epsilon, payload) "
                "VALUES (?, ?, ?, ?)",
                (scope, query, float(epsilon), payload),
            )

    def get_release(
        self, scope: str, query: str, epsilon: float
    ) -> list[tuple[Any, float]] | None:
        """The persisted released answer for ``(scope, query, ε)``, if any."""
        with self._mutex:
            row = self._conn.execute(
                "SELECT payload FROM releases WHERE scope = ? AND query = ? "
                "AND epsilon = ?",
                (scope, query, float(epsilon)),
            ).fetchone()
        if row is None:
            return None
        return [
            (decode_record(record), float(value))
            for record, value in json.loads(row["payload"])
        ]

    def releases_for(self, scope: str) -> list[tuple[str, float, list[tuple[Any, float]]]]:
        """Every persisted release of one scope (cache warming on restart)."""
        with self._mutex:
            rows = self._conn.execute(
                "SELECT query, epsilon, payload FROM releases WHERE scope = ?",
                (scope,),
            ).fetchall()
        return [
            (
                row["query"],
                float(row["epsilon"]),
                [
                    (decode_record(record), float(value))
                    for record, value in json.loads(row["payload"])
                ],
            )
            for row in rows
        ]

    def drop_releases(self, scope: str) -> None:
        """Delete one scope's persisted releases (its session was closed)."""
        with self._mutex:
            self._conn.execute("DELETE FROM releases WHERE scope = ?", (scope,))

    # ------------------------------------------------------------------
    # Hosted sessions
    # ------------------------------------------------------------------
    def put_session(self, name: str, payload: dict[str, Any]) -> None:
        """Persist a hosted session's definition (records, ε total, seed...).

        A plain INSERT, so two workers racing to create the same session name
        collide here (sqlite3.IntegrityError) and exactly one wins.
        """
        with self._mutex:
            self._conn.execute(
                "INSERT INTO sessions (name, created_at, payload) VALUES (?, ?, ?)",
                (name, time.time(), json.dumps(payload)),
            )

    def next_incarnation(self, scope: str) -> int:
        """Durably allocate the next incarnation number for ``scope`` (≥ 1).

        Every re-materialisation of a persisted session — after a restart, or
        on a sibling worker process — gets a distinct number, from which the
        registry derives a distinct Laplace noise stream.  Restoring the raw
        seed instead would reset the creator's stream to its initial state
        and re-draw noise values already released for earlier measurements —
        two releases sharing a noise draw can be differenced to cancel the
        noise exactly, breaking the ε-DP guarantee the durable ledger exists
        to preserve.
        """
        with self._mutex:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT count FROM incarnations WHERE scope = ?", (scope,)
                ).fetchone()
                count = (int(row["count"]) if row is not None else 0) + 1
                self._conn.execute(
                    "INSERT INTO incarnations (scope, count) VALUES (?, ?) "
                    "ON CONFLICT(scope) DO UPDATE SET count = excluded.count",
                    (scope, count),
                )
                self._conn.execute("COMMIT")
                return count
            except BaseException:
                self._rollback()
                raise

    def get_session(self, name: str) -> dict[str, Any] | None:
        """One persisted session definition, if present."""
        with self._mutex:
            row = self._conn.execute(
                "SELECT payload FROM sessions WHERE name = ?", (name,)
            ).fetchone()
        return None if row is None else json.loads(row["payload"])

    def session_names(self) -> list[str]:
        """Every persisted session name."""
        with self._mutex:
            rows = self._conn.execute("SELECT name FROM sessions ORDER BY name").fetchall()
        return [row["name"] for row in rows]

    def drop_session(self, name: str) -> None:
        """Delete a persisted session definition.

        Deliberately does *not* delete the scope's budget records: spent ε
        is a property of the underlying protected data, so re-creating a
        session under the same name resumes its spend rather than resetting
        it (see README "Durability & operations").
        """
        with self._mutex:
            self._conn.execute("DELETE FROM sessions WHERE name = ?", (name,))

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Row counts for the stats endpoint and tests."""
        with self._mutex:
            counts = {
                table: self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                for table in (
                    "wal", "snapshots", "audit", "releases", "sessions",
                    "incarnations",
                )
            }
        counts["path"] = self.path
        counts["snapshot_every"] = self.snapshot_every
        return counts

    # ------------------------------------------------------------------
    def _latest_snapshot(self) -> LedgerState:
        row = self._conn.execute(
            "SELECT state FROM snapshots ORDER BY id DESC LIMIT 1"
        ).fetchone()
        return state_from_json(row["state"] if row is not None else None)

    def _load_state_locked(self) -> LedgerState:
        snapshot = self._latest_snapshot()
        rows = self._conn.execute("SELECT * FROM wal ORDER BY id").fetchall()
        return replay(snapshot, rows)

    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.OperationalError:  # pragma: no cover - no txn active
            pass
