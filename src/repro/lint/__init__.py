"""Static analysis for privacy invariants.

Two analyzers live here:

* :mod:`repro.lint.plans` — walks a :class:`~repro.core.plan.Plan` DAG and
  derives a static per-source stability bound from the transformation
  constants of :mod:`repro.core.transformations` (every unary transformation
  is 1-stable, binary operators are bounded by the sum of their input
  distances per Theorem 4, ``DownScale`` tightens by its factor), verifies
  that a measurement's charged ε matches the derived sensitivity, and
  detects unportable closures before the shard codec hits them at runtime.
* :mod:`repro.lint.rules` + :mod:`repro.lint.engine` — an AST linter over
  the source tree enforcing the repo-wide privacy/concurrency invariants
  (rules R001–R006; run it with ``repro lint``).
* :mod:`repro.lint.concurrency` — the interprocedural lock-order analysis
  (rules R007–R009): every lock is assigned a level in the declared
  hierarchy via ``# lock-order:`` annotations, the may-hold graph is built
  across function calls, and cycles (potential deadlocks), hierarchy
  violations and blocking calls under non-``io-ok`` locks are reported.
  ``repro lint --concurrency`` runs it; ``repro locks`` prints the
  hierarchy and graph.  :mod:`repro.sanitize` enforces the same hierarchy
  at runtime when ``REPRO_SANITIZE=1``.
* :mod:`repro.lint.flow` — the interprocedural privacy taint analysis
  (rule R010): values derived from protected records/weights are tracked
  through assignments and calls until they die in a sanctioned release
  (``NoisyCountResult``) or reach a sink (logs, exception messages, HTTP
  response bodies, pickled payloads).  ``repro lint --flow`` runs it.

:mod:`repro.lint.portability` is the shared portability analysis: the shard
codec (:mod:`repro.shard.plan`) delegates to it, so the static checker and
the runtime wire format can never disagree about what crosses a process
boundary.
"""

from .concurrency import (
    ConcurrencyAnalysis,
    analyze_concurrency,
    build_concurrency_analysis,
    find_cycles,
    render_lock_report,
)
from .engine import (
    Baseline,
    LintError,
    LintIssue,
    ModuleSource,
    Rule,
    format_issues,
    lint_paths,
)
from .flow import analyze_flow
from .plans import (
    PlanIssue,
    StabilityReport,
    check_portability,
    format_bounds,
    stability_bounds,
    verify_epsilon,
    verify_plan,
)
from .portability import (
    PLAN_PARAMS,
    UnportablePlanError,
    check_portable,
    plan_portability_issues,
    portability_error,
)
from .rules import DEFAULT_RULES, RELEASE_PACKAGES

__all__ = [
    "Baseline",
    "ConcurrencyAnalysis",
    "DEFAULT_RULES",
    "LintError",
    "LintIssue",
    "ModuleSource",
    "PLAN_PARAMS",
    "PlanIssue",
    "RELEASE_PACKAGES",
    "Rule",
    "StabilityReport",
    "UnportablePlanError",
    "analyze_concurrency",
    "analyze_flow",
    "build_concurrency_analysis",
    "check_portability",
    "check_portable",
    "find_cycles",
    "format_bounds",
    "format_issues",
    "lint_paths",
    "render_lock_report",
    "plan_portability_issues",
    "portability_error",
    "stability_bounds",
    "verify_epsilon",
    "verify_plan",
]
