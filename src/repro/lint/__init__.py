"""Static analysis for privacy invariants.

Two analyzers live here:

* :mod:`repro.lint.plans` — walks a :class:`~repro.core.plan.Plan` DAG and
  derives a static per-source stability bound from the transformation
  constants of :mod:`repro.core.transformations` (every unary transformation
  is 1-stable, binary operators are bounded by the sum of their input
  distances per Theorem 4, ``DownScale`` tightens by its factor), verifies
  that a measurement's charged ε matches the derived sensitivity, and
  detects unportable closures before the shard codec hits them at runtime.
* :mod:`repro.lint.rules` + :mod:`repro.lint.engine` — an AST linter over
  the source tree enforcing the repo-wide privacy/concurrency invariants
  (rules R001–R006; run it with ``repro lint``).

:mod:`repro.lint.portability` is the shared portability analysis: the shard
codec (:mod:`repro.shard.plan`) delegates to it, so the static checker and
the runtime wire format can never disagree about what crosses a process
boundary.
"""

from .engine import (
    Baseline,
    LintError,
    LintIssue,
    ModuleSource,
    Rule,
    format_issues,
    lint_paths,
)
from .plans import (
    PlanIssue,
    StabilityReport,
    check_portability,
    format_bounds,
    stability_bounds,
    verify_epsilon,
    verify_plan,
)
from .portability import (
    PLAN_PARAMS,
    UnportablePlanError,
    check_portable,
    plan_portability_issues,
    portability_error,
)
from .rules import DEFAULT_RULES, RELEASE_PACKAGES

__all__ = [
    "Baseline",
    "DEFAULT_RULES",
    "LintError",
    "LintIssue",
    "ModuleSource",
    "PLAN_PARAMS",
    "PlanIssue",
    "RELEASE_PACKAGES",
    "Rule",
    "StabilityReport",
    "UnportablePlanError",
    "check_portability",
    "check_portable",
    "format_bounds",
    "format_issues",
    "lint_paths",
    "plan_portability_issues",
    "portability_error",
    "stability_bounds",
    "verify_epsilon",
    "verify_plan",
]
