"""Static lock-order, deadlock and blocking-under-lock analysis (R007–R009).

This is the whole-repo half of the lock-hierarchy contract whose runtime
half lives in :mod:`repro.sanitize`:

* every lock is *declared* — created through ``ordered_lock`` /
  ``ordered_rlock`` (or, for bootstrap locks, a raw ``threading``
  primitive) with a ``# lock-order: <level> [flags]`` comment at the
  definition site;
* every *acquisition* (``with`` items, ``ExitStack.enter_context``,
  explicit ``.acquire()``) is resolved back to its declaration through the
  :class:`~repro.lint.model.RepoModel` type/alias machinery;
* calls made while a lock is held are resolved interprocedurally, and each
  function's transitive acquisition set and blocking-operation set are
  computed to a fixpoint over the call graph.

Findings:

* **R007 deadlock-cycle** — a cycle in the observed lock-order graph
  (lock B acquired while A is held *and* somewhere else A while B is
  held).  Cycles are potential deadlocks regardless of annotations.
* **R008 lock-hierarchy** — an acquisition that contradicts the declared
  levels (must be strictly increasing inward, with carve-outs for
  re-entrant re-acquisition and declared same-level ``peers``), a lock
  with a missing/ill-formed/contradictory ``# lock-order`` annotation, or
  a lock-like acquisition the analyzer cannot resolve (add an inline
  ``# lock: <key>`` comment to resolve ambiguity).
* **R009 blocking-under-lock** — a blocking operation (sleep, sqlite I/O,
  pipe/socket I/O, pool dispatch, ``wait()`` without timeout, process
  join) performed, directly or via calls, while holding a lock that is
  not declared ``io-ok``.

The annotation grammar, checked at definition sites::

    # lock-order: <level> [<name.with.dot>] [io-ok] [peers] [reentrant]

The explicit dotted name is only needed for raw (non-factory) locks; the
factory's first argument is the name otherwise, and the two must agree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .engine import Baseline, LintIssue, ModuleSource, iter_python_files
from .model import FunctionInfo, RepoModel, TypeEnv, dotted_name

__all__ = [
    "ConcurrencyAnalysis",
    "LockDecl",
    "analyze_concurrency",
    "build_concurrency_analysis",
    "find_cycles",
    "render_lock_report",
]

_ORDER_RE = re.compile(r"#\s*lock-order:\s*([^#]*)")
_INLINE_KEY_RE = re.compile(r"#\s*lock:\s*([A-Za-z0-9_.\-]+)")
_FLAG_TOKENS = frozenset({"io-ok", "peers", "reentrant"})

#: Canonical dotted calls that block (resolved through import bindings).
_BLOCKING_CANONICAL = frozenset(
    {
        "time.sleep",
        "sqlite3.connect",
        "select.select",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)
_BLOCKING_PREFIXES = ("subprocess.", "os.wait")

#: Receiver-name fragments that mark a sqlite/pipe-ish object.
_DB_RECEIVERS = ("conn", "cursor", "db")
_PIPE_RECEIVERS = ("conn", "pipe", "sock")
_PROC_RECEIVERS = ("proc", "process", "thread", "worker")


def _is_lockish_name(name: str) -> bool:
    base = name.lower()
    return (
        base in ("lock", "mutex")
        or base.endswith("_lock")
        or base.endswith("_mutex")
    )


# ---------------------------------------------------------------------------
# Lock declarations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LockDecl:
    """One declared lock in the hierarchy."""

    key: str
    level: int
    reentrant: bool = False
    peers: bool = False
    io_ok: bool = False
    path: str = ""
    line: int = 0
    owner: str | None = None  #: class name, or None for a module global
    attr: str = ""
    kind: str = "Lock"  #: "Lock" | "RLock"
    factory: bool = True  #: created via ordered_lock/ordered_rlock


class StaticLockRegistry:
    """Declared locks plus the indexes acquisition resolution needs."""

    def __init__(self) -> None:
        self.decls: dict[str, LockDecl] = {}
        #: (class name, attribute) -> lock key
        self.attr_index: dict[tuple[str, str], str] = {}
        #: (module relpath, global name) -> lock key
        self.global_index: dict[tuple[str, str], str] = {}
        #: bare attribute/property name -> candidate keys (unique-name fallback)
        self.fallback: dict[str, set[str]] = {}

    def add(self, decl: LockDecl) -> LockDecl | None:
        """Register; returns the conflicting decl if the key is taken."""
        existing = self.decls.get(decl.key)
        if existing is not None and (
            existing.level != decl.level
            or existing.reentrant != decl.reentrant
            or existing.peers != decl.peers
            or existing.io_ok != decl.io_ok
        ):
            return existing
        if existing is None:
            self.decls[decl.key] = decl
        if decl.owner is not None:
            self.attr_index[(decl.owner, decl.attr)] = decl.key
        else:
            self.attr_index.setdefault(("", decl.attr), decl.key)
            self.global_index[(decl.path, decl.attr)] = decl.key
        self.fallback.setdefault(decl.attr, set()).add(decl.key)
        return None


@dataclass
class _ParsedOrder:
    level: int | None = None
    name: str | None = None
    flags: set[str] = field(default_factory=set)
    error: str | None = None


def _parse_order_comment(line_text: str) -> _ParsedOrder | None:
    match = _ORDER_RE.search(line_text)
    if match is None:
        return None
    parsed = _ParsedOrder()
    tokens = match.group(1).split()
    if not tokens:
        parsed.error = "missing level"
        return parsed
    try:
        parsed.level = int(tokens[0])
    except ValueError:
        parsed.error = f"level must be an integer, got {tokens[0]!r}"
        return parsed
    for token in tokens[1:]:
        if token in _FLAG_TOKENS:
            parsed.flags.add(token)
        elif "." in token and parsed.name is None:
            parsed.name = token
        else:
            parsed.error = (
                f"unknown lock-order token {token!r} "
                f"(expected io-ok/peers/reentrant or a dotted lock name)"
            )
            return parsed
    return parsed


def _call_tail(node: ast.AST) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    return dotted.rsplit(".", 1)[-1]


def _const_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_value(node: ast.AST | None):
    if isinstance(node, ast.Constant):
        return node.value
    return None


class _DeclCollector:
    """Extract every lock declaration (and its annotation issues)."""

    def __init__(self, model: RepoModel, registry: StaticLockRegistry) -> None:
        self.model = model
        self.registry = registry
        self.issues: list[LintIssue] = []

    def collect(self) -> None:
        for module in self.model.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    self._check_assignment(module, node)

    # -- helpers --------------------------------------------------------
    def _issue(self, module: ModuleSource, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.issues.append(
            LintIssue(
                rule="R008",
                path=module.relpath,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                text=module.source_line(line),
            )
        )

    def _target_site(
        self, module: ModuleSource, stmt: ast.Assign | ast.AnnAssign
    ) -> tuple[str | None, str] | None:
        """(owner class or None, attribute name), or None for non-decl sites."""
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if len(targets) != 1:
            return None
        target = targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            for ancestor in module.ancestors(stmt):
                if isinstance(ancestor, ast.ClassDef):
                    return ancestor.name, target.attr
            return None
        if isinstance(target, ast.Name):
            for ancestor in module.ancestors(stmt):
                if isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    return None  # a local variable, not a declaration site
                if isinstance(ancestor, ast.ClassDef):
                    return ancestor.name, target.id
            return None, target.id
        return None

    def _check_assignment(
        self, module: ModuleSource, stmt: ast.Assign | ast.AnnAssign
    ) -> None:
        value = stmt.value
        if value is None:
            return
        site = self._target_site(module, stmt)
        if site is None:
            return
        owner, attr = site
        tail = _call_tail(value)
        if tail in ("ordered_lock", "ordered_rlock"):
            self._declare_factory(module, value, owner, attr)  # type: ignore[arg-type]
        elif tail in ("Lock", "RLock") and self._is_threading(module, value):  # type: ignore[arg-type]
            self._declare_raw(module, value, owner, attr)  # type: ignore[arg-type]
        elif tail == "field":
            self._declare_field(module, value, owner, attr)  # type: ignore[arg-type]

    def _is_threading(self, module: ModuleSource, call: ast.Call) -> bool:
        dotted = dotted_name(call.func) or ""
        root = dotted.split(".", 1)[0]
        binding = self.model.bindings[id(module)].get(root, "")
        return binding == "threading" or binding.startswith("threading.") or dotted in (
            "Lock",
            "RLock",
        )

    def _declare_factory(
        self, module: ModuleSource, call: ast.Call, owner: str | None, attr: str
    ) -> None:
        kind = "RLock" if _call_tail(call) == "ordered_rlock" else "Lock"
        args = {kw.arg: kw.value for kw in call.keywords}
        name = _const_str(call.args[0] if call.args else args.get("name"))
        level = _const_value(
            call.args[1] if len(call.args) > 1 else args.get("level")
        )
        if name is None or not isinstance(level, int):
            self._issue(
                module,
                call,
                "ordered_lock()/ordered_rlock() must be called with a literal "
                "name and integer level so the hierarchy is statically known",
            )
            return
        peers = _const_value(args.get("peers")) is True
        io_ok = _const_value(args.get("io_ok")) is True
        parsed = _parse_order_comment(module.source_line(call.lineno))
        if parsed is None:
            self._issue(
                module,
                call,
                f"lock {name!r} is created without a '# lock-order: {level}' "
                f"comment on the definition line (the comment is the "
                f"reviewed source of truth for the hierarchy)",
            )
        elif parsed.error is not None:
            self._issue(module, call, f"bad lock-order annotation: {parsed.error}")
        else:
            if parsed.level != level:
                self._issue(
                    module,
                    call,
                    f"lock-order comment says level {parsed.level} but the "
                    f"factory declares {name!r} at level {level}",
                )
            if parsed.name is not None and parsed.name != name:
                self._issue(
                    module,
                    call,
                    f"lock-order comment names {parsed.name!r} but the "
                    f"factory declares {name!r}",
                )
            comment_flags = {
                "peers": "peers" in parsed.flags,
                "io-ok": "io-ok" in parsed.flags,
            }
            if comment_flags["peers"] != peers or comment_flags["io-ok"] != io_ok:
                self._issue(
                    module,
                    call,
                    f"lock-order comment flags {sorted(parsed.flags)} do not "
                    f"match the factory keywords (peers={peers}, io_ok={io_ok})",
                )
            if "reentrant" in parsed.flags and kind != "RLock":
                self._issue(
                    module,
                    call,
                    "lock-order comment says reentrant but the lock is a "
                    "plain ordered_lock (use ordered_rlock)",
                )
        self._register(
            module,
            call,
            LockDecl(
                key=name,
                level=int(level),
                reentrant=kind == "RLock",
                peers=peers,
                io_ok=io_ok,
                path=module.relpath,
                line=call.lineno,
                owner=owner,
                attr=attr,
                kind=kind,
            ),
        )

    def _declare_raw(
        self, module: ModuleSource, call: ast.Call, owner: str | None, attr: str
    ) -> None:
        kind = "RLock" if _call_tail(call) == "RLock" else "Lock"
        parsed = _parse_order_comment(module.source_line(call.lineno))
        if parsed is None or parsed.error is not None:
            detail = "" if parsed is None else f" ({parsed.error})"
            self._issue(
                module,
                call,
                f"raw threading.{kind}() is not in the declared hierarchy"
                f"{detail}; create it via repro.sanitize.ordered_"
                f"{'r' if kind == 'RLock' else ''}lock or add a "
                f"'# lock-order: <level> <name>' comment",
            )
            return
        key = parsed.name or f"{module.relpath[:-3].replace('/', '.')}.{attr}"
        self._register(
            module,
            call,
            LockDecl(
                key=key,
                level=parsed.level or 0,
                reentrant=kind == "RLock" or "reentrant" in parsed.flags,
                peers="peers" in parsed.flags,
                io_ok="io-ok" in parsed.flags,
                path=module.relpath,
                line=call.lineno,
                owner=owner,
                attr=attr,
                kind=kind,
                factory=False,
            ),
        )

    def _declare_field(
        self, module: ModuleSource, call: ast.Call, owner: str | None, attr: str
    ) -> None:
        factory = next(
            (kw.value for kw in call.keywords if kw.arg == "default_factory"), None
        )
        if factory is None:
            return
        if isinstance(factory, ast.Name):
            helper = self.model.module_function(module, factory.id)
            if helper is not None:
                for node in ast.walk(helper.node):
                    if isinstance(node, ast.Return) and _call_tail(node.value) in (
                        "ordered_lock",
                        "ordered_rlock",
                    ):
                        # The helper's factory call is the declaration site;
                        # re-point its decl at this attribute as well.
                        self._declare_factory(module, node.value, owner, attr)  # type: ignore[arg-type]
                        return
        tail = (
            factory.id
            if isinstance(factory, ast.Name)
            else (dotted_name(factory) or "").rsplit(".", 1)[-1]
        )
        if tail in ("Lock", "RLock") and _is_lockish_name(attr):
            self._issue(
                module,
                call,
                f"dataclass field {attr!r} defaults to a raw threading lock "
                f"outside the declared hierarchy; route it through a module "
                f"helper returning ordered_lock()/ordered_rlock()",
            )

    def _register(
        self, module: ModuleSource, call: ast.Call, decl: LockDecl
    ) -> None:
        conflict = self.registry.add(decl)
        if conflict is not None:
            self._issue(
                module,
                call,
                f"lock {decl.key!r} re-declared with a different spec "
                f"(level {decl.level} vs {conflict.level} at "
                f"{conflict.path}:{conflict.line})",
            )


# ---------------------------------------------------------------------------
# Per-function walk: acquisitions, calls and blocking ops with held context
# ---------------------------------------------------------------------------
_UNRESOLVED = object()


@dataclass
class _Event:
    kind: str  #: "acquire" | "call" | "block"
    held: tuple[LockDecl, ...]
    node: ast.AST
    decl: LockDecl | None = None
    callee: str | None = None  #: callee qualname for "call"
    callee_short: str = ""
    desc: str | None = None  #: blocking-op description for "block"


@dataclass
class _FunctionAnalysis:
    info: FunctionInfo
    events: list[_Event] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)
    acq: set[str] = field(default_factory=set)  #: transitive acquisition keys
    block: set[str] = field(default_factory=set)  #: transitive blocking ops


def _has_timeout(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(
        kw.arg == "timeout" and _const_value(kw.value) is not None
        for kw in call.keywords
    )


def _classify_blocking(call: ast.Call, bindings: dict[str, str]) -> str | None:
    dotted = dotted_name(call.func)
    if dotted is not None:
        root, _, rest = dotted.partition(".")
        canonical = bindings.get(root, root) + (f".{rest}" if rest else "")
        if canonical in _BLOCKING_CANONICAL or canonical.startswith(
            _BLOCKING_PREFIXES
        ):
            return f"{canonical}()"
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    receiver = (dotted_name(call.func.value) or "").lower()
    if attr.lstrip("_") == "sleep":
        return "sleep()"
    if attr in ("execute", "executemany", "executescript", "commit", "rollback"):
        if any(token in receiver for token in _DB_RECEIVERS):
            return f"sqlite {attr}()"
    if attr in ("recv", "recv_bytes", "send", "send_bytes"):
        if any(token in receiver for token in _PIPE_RECEIVERS):
            return f"pipe {attr}()"
    if attr == "join" and not _has_timeout(call):
        if any(token in receiver for token in _PROC_RECEIVERS):
            return "join() without timeout"
    if attr == "wait" and not _has_timeout(call):
        return "wait() without timeout"
    if attr == "result" and not _has_timeout(call):
        if "fut" in receiver:
            return "future result() without timeout"
    if attr == "run_batch":
        return "pool dispatch run_batch()"
    return None


class _Walker:
    """One function's statement walk with the currently-held lock list."""

    def __init__(
        self,
        model: RepoModel,
        registry: StaticLockRegistry,
        analysis: _FunctionAnalysis,
        on_unresolved,
    ) -> None:
        self.model = model
        self.registry = registry
        self.analysis = analysis
        self.module = analysis.info.module
        self.env = TypeEnv(model, analysis.info)
        self.bindings = model.bindings[id(self.module)]
        self.on_unresolved = on_unresolved

    def run(self) -> None:
        held: list[LockDecl] = []
        for stmt in self.analysis.info.node.body:
            self._visit_stmt(stmt, held)

    # -- traversal ------------------------------------------------------
    def _visit_stmt(self, stmt: ast.stmt, held: list[LockDecl]) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested definitions run later, not under these locks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            base = len(held)
            for item in stmt.items:
                decl = self._resolve_lock(item.context_expr)
                if isinstance(decl, LockDecl):
                    self._record_acquire(decl, held, item.context_expr)
                    held.append(decl)
                else:
                    self._scan_expr(item.context_expr, held)
            for child in stmt.body:
                self._visit_stmt(child, held)
            del held[base:]  # releases scoped locks and enter_context ones
            return
        self._visit_children(stmt, held)

    def _visit_children(self, node: ast.AST, held: list[LockDecl]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._visit_stmt(child, held)
            elif isinstance(child, ast.expr):
                self._scan_expr(child, held)
            else:
                self._visit_children(child, held)

    def _scan_expr(self, expr: ast.AST | None, held: list[LockDecl]) -> None:
        if expr is None or isinstance(expr, ast.Lambda):
            return
        if isinstance(expr, ast.Call):
            self._handle_call(expr, held)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held)
            else:
                self._visit_children(child, held)

    # -- events ---------------------------------------------------------
    def _record_acquire(
        self, decl: LockDecl, held: list[LockDecl], node: ast.AST
    ) -> None:
        self.analysis.acq.add(decl.key)
        self.analysis.events.append(
            _Event(kind="acquire", held=tuple(held), node=node, decl=decl)
        )

    def _handle_call(self, call: ast.Call, held: list[LockDecl]) -> None:
        func = call.func
        # ExitStack.enter_context(<lock>) acquires for the rest of the block.
        if isinstance(func, ast.Attribute) and func.attr == "enter_context":
            if call.args:
                decl = self._resolve_lock(call.args[0])
                if isinstance(decl, LockDecl):
                    self._record_acquire(decl, held, call.args[0])
                    held.append(decl)
                    return
        # Explicit lock.acquire()/lock.release().
        if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
            decl = self._resolve_lock(func.value, lockish_only=True)
            if isinstance(decl, LockDecl):
                if func.attr == "acquire":
                    self._record_acquire(decl, held, call)
                    held.append(decl)
                else:
                    for index in range(len(held) - 1, -1, -1):
                        if held[index].key == decl.key:
                            del held[index]
                            break
                return
        desc = _classify_blocking(call, self.bindings)
        if desc is not None:
            self.analysis.block.add(desc)
            self.analysis.events.append(
                _Event(kind="block", held=tuple(held), node=call, desc=desc)
            )
        resolved = self.env.resolve_call(call)
        if resolved is not None and isinstance(
            resolved.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            self.analysis.calls.add(resolved.qualname)
            self.analysis.events.append(
                _Event(
                    kind="call",
                    held=tuple(held),
                    node=call,
                    callee=resolved.qualname,
                    callee_short=resolved.short,
                )
            )

    # -- lock resolution ------------------------------------------------
    def _resolve_lock(self, expr: ast.AST, lockish_only: bool = False):
        """A LockDecl, None (not a lock), or _UNRESOLVED (lock-ish, unknown)."""
        if isinstance(expr, ast.Name):
            key = self.registry.global_index.get((self.module.relpath, expr.id))
            if key is not None:
                return self.registry.decls[key]
            if not _is_lockish_name(expr.id):
                return None
            return self._fallback(expr.id, expr)
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            receiver = self.env.infer(expr.value)
            info = self.model.class_info(receiver)
            if info is not None:
                for cls in self.model.mro(info):
                    key = self.registry.attr_index.get((cls.name, attr))
                    if key is not None:
                        return self.registry.decls[key]
                    alias = cls.properties.get(attr)
                    if alias is not None:
                        key = self.registry.attr_index.get((cls.name, alias))
                        if key is not None:
                            return self.registry.decls[key]
            if not _is_lockish_name(attr):
                return None
            return self._fallback(attr, expr)
        return None

    def _fallback(self, name: str, node: ast.AST):
        line_text = self.module.source_line(getattr(node, "lineno", 0))
        match = _INLINE_KEY_RE.search(line_text)
        if match is not None and match.group(1) in self.registry.decls:
            return self.registry.decls[match.group(1)]
        candidates = self.registry.fallback.get(name)
        if candidates is not None and len(candidates) == 1:
            return self.registry.decls[next(iter(candidates))]
        # Property names that alias a uniquely-declared attribute.
        alias_hits = {
            self.registry.attr_index[(cls_name, aliased)]
            for infos in self.model.classes.values()
            for info in infos
            for cls_name, aliased in [(info.name, info.properties.get(name, ""))]
            if aliased and (cls_name, aliased) in self.registry.attr_index
        }
        if len(alias_hits) == 1:
            return self.registry.decls[next(iter(alias_hits))]
        self.on_unresolved(self.module, node, name)
        return _UNRESOLVED


# ---------------------------------------------------------------------------
# Cycle detection (pure; property-tested with random DAGs)
# ---------------------------------------------------------------------------
def find_cycles(adjacency: dict[str, Iterable[str]]) -> list[list[str]]:
    """Every elementary lock-order cycle, as node lists (first node smallest).

    Tarjan SCC over the directed graph; each SCC of size > 1 is reported as
    one cycle (a deterministic walk around the component), and a self-loop
    is a cycle of length 1.  A DAG yields ``[]``.
    """
    graph = {node: sorted(set(targets)) for node, targets in adjacency.items()}
    for targets in list(graph.values()):
        for target in targets:
            graph.setdefault(target, [])
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        # Iterative Tarjan: (node, iterator position) frames.
        work = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            targets = graph[node]
            for offset in range(pos, len(targets)):
                target = targets[offset]
                if target not in index:
                    work.append((node, offset + 1))
                    work.append((target, 0))
                    recurse = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph[node]:
                    components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sorted(components)


# ---------------------------------------------------------------------------
# The whole-repo analysis
# ---------------------------------------------------------------------------
@dataclass
class ConcurrencyAnalysis:
    """Everything the CLI needs: issues, the registry, and the order graph."""

    model: RepoModel
    registry: StaticLockRegistry
    issues: list[LintIssue]  #: post-suppression, pre-baseline
    edges: dict[str, dict[str, str]]  #: held key -> acquired key -> first site


def _order_violation(
    held: tuple[LockDecl, ...], decl: LockDecl
) -> str | None:
    """Why acquiring ``decl`` while holding ``held`` breaks the hierarchy."""
    if not held:
        return None
    if any(entry.key == decl.key for entry in held):
        if decl.reentrant:
            return None
        return (
            f"non-reentrant lock {decl.key!r} re-acquired while already "
            f"held (self-deadlock)"
        )
    ceiling = max(entry.level for entry in held)
    if decl.level > ceiling:
        return None
    if decl.level == ceiling and decl.peers:
        if all(entry.key == decl.key for entry in held if entry.level == ceiling):
            return None
    chain = " -> ".join(f"{entry.key}@{entry.level}" for entry in held)
    return (
        f"lock {decl.key!r} (level {decl.level}) acquired while holding "
        f"[{chain}]; the hierarchy requires strictly increasing levels"
    )


def build_concurrency_analysis(
    paths: Iterable[Path], root: Path, model: RepoModel | None = None
) -> ConcurrencyAnalysis:
    """Run the R007–R009 analysis; suppression comments are honoured."""
    if model is None:
        modules = []
        for path in iter_python_files(paths):
            try:
                modules.append(ModuleSource.load(path, root))
            except SyntaxError:
                continue  # lint_paths reports E001 for unparseable files
        model = RepoModel(modules)
    registry = StaticLockRegistry()
    collector = _DeclCollector(model, registry)
    collector.collect()
    issues = list(collector.issues)

    unresolved_sites: set[tuple[str, int]] = set()

    def on_unresolved(module: ModuleSource, node: ast.AST, name: str) -> None:
        line = getattr(node, "lineno", 1)
        if (module.relpath, line) in unresolved_sites:
            return
        unresolved_sites.add((module.relpath, line))
        issues.append(
            LintIssue(
                rule="R008",
                path=module.relpath,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=(
                    f"cannot resolve lock-like acquisition {name!r} to a "
                    f"declared lock; declare it via ordered_lock() or add an "
                    f"inline '# lock: <key>' comment"
                ),
                text=module.source_line(line),
            )
        )

    analyses: dict[str, _FunctionAnalysis] = {}
    for functions in (model.functions, model.methods):
        for infos in functions.values():
            for info in infos:
                if info.qualname in analyses:
                    continue
                analysis = _FunctionAnalysis(info=info)
                analyses[info.qualname] = analysis
                _Walker(model, registry, analysis, on_unresolved).run()

    # Fixpoint: transitive acquisition and blocking-op summaries.
    changed = True
    while changed:
        changed = False
        for analysis in analyses.values():
            for callee in analysis.calls:
                summary = analyses.get(callee)
                if summary is None:
                    continue
                if not summary.acq <= analysis.acq:
                    analysis.acq |= summary.acq
                    changed = True
                if not summary.block <= analysis.block:
                    analysis.block |= summary.block
                    changed = True

    edges: dict[str, dict[str, str]] = {}

    def add_edge(held: LockDecl, acquired_key: str, site: str) -> None:
        if held.key == acquired_key:
            return
        edges.setdefault(held.key, {}).setdefault(acquired_key, site)

    def emit(module: ModuleSource, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        issues.append(
            LintIssue(
                rule=rule,
                path=module.relpath,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                text=module.source_line(line),
            )
        )

    for analysis in analyses.values():
        module = analysis.info.module
        for event in analysis.events:
            if not event.held:
                continue
            site = f"{module.relpath}:{getattr(event.node, 'lineno', 1)}"
            not_io_ok = [entry for entry in event.held if not entry.io_ok]
            if event.kind == "acquire" and event.decl is not None:
                reason = _order_violation(event.held, event.decl)
                if reason is not None:
                    emit(module, event.node, "R008", reason)
                for entry in event.held:
                    add_edge(entry, event.decl.key, site)
            elif event.kind == "block" and event.desc is not None:
                if not_io_ok:
                    names = ", ".join(
                        sorted({entry.key for entry in not_io_ok})
                    )
                    emit(
                        module,
                        event.node,
                        "R009",
                        f"blocking call {event.desc} while holding "
                        f"lock(s) [{names}] not declared io-ok",
                    )
            elif event.kind == "call" and event.callee is not None:
                summary = analyses.get(event.callee)
                if summary is None:
                    continue
                for key in sorted(summary.acq):
                    decl = registry.decls.get(key)
                    if decl is None:
                        continue
                    reason = _order_violation(event.held, decl)
                    if reason is not None:
                        emit(
                            module,
                            event.node,
                            "R008",
                            f"{reason} (acquired via call to "
                            f"{event.callee_short}())",
                        )
                    for entry in event.held:
                        add_edge(entry, key, site)
                if summary.block and not_io_ok:
                    names = ", ".join(sorted({entry.key for entry in not_io_ok}))
                    ops = ", ".join(sorted(summary.block)[:3])
                    emit(
                        module,
                        event.node,
                        "R009",
                        f"call to {event.callee_short}() may block ({ops}) "
                        f"while holding lock(s) [{names}] not declared io-ok",
                    )

    # R007: cycles in the observed lock-order graph.
    adjacency = {held: set(targets) for held, targets in edges.items()}
    for cycle in find_cycles(adjacency):
        if len(cycle) == 1:
            decl = registry.decls.get(cycle[0])
            if decl is not None and (decl.reentrant or decl.peers):
                continue
        sites = []
        ring = [*cycle, cycle[0]]
        for source, target in zip(ring, ring[1:]):
            site = edges.get(source, {}).get(target)
            if site is not None:
                sites.append(f"{source}->{target} at {site}")
        anchor = edges.get(cycle[0], {})
        first_site = next(iter(anchor.values()), "")
        path_str, _, line_str = first_site.rpartition(":")
        issues.append(
            LintIssue(
                rule="R007",
                path=path_str or (registry.decls[cycle[0]].path if cycle[0] in registry.decls else ""),
                line=int(line_str) if line_str.isdigit() else 1,
                col=1,
                message=(
                    f"potential deadlock: lock-order cycle "
                    f"{' -> '.join(ring)} ({'; '.join(sites)})"
                ),
            )
        )

    module_by_path = {module.relpath: module for module in model.modules}
    surviving = []
    for issue in issues:
        module = module_by_path.get(issue.path)
        if module is not None and module.suppressed(issue.line, issue.rule):
            continue
        surviving.append(issue)
    surviving.sort(key=lambda issue: (issue.path, issue.line, issue.col, issue.rule))
    return ConcurrencyAnalysis(
        model=model, registry=registry, issues=surviving, edges=edges
    )


def analyze_concurrency(
    paths: Iterable[Path],
    root: Path,
    baseline: Baseline | None = None,
    model: RepoModel | None = None,
) -> list[LintIssue]:
    """The R007–R009 issues for ``paths`` (suppressions + baseline applied)."""
    analysis = build_concurrency_analysis(paths, root, model=model)
    if baseline is None:
        return analysis.issues
    return [issue for issue in analysis.issues if not baseline.contains(issue)]


def render_lock_report(analysis: ConcurrencyAnalysis) -> str:
    """The ``repro locks`` output: hierarchy table + observed order graph."""
    lines: list[str] = []
    decls = sorted(
        analysis.registry.decls.values(), key=lambda decl: (decl.level, decl.key)
    )
    lines.append(f"Lock hierarchy ({len(decls)} declared locks)")
    lines.append(f"{'level':>5}  {'key':<24} {'kind':<6} {'flags':<18} declared at")
    for decl in decls:
        flags = " ".join(
            flag
            for flag, on in (
                ("reentrant", decl.reentrant),
                ("peers", decl.peers),
                ("io-ok", decl.io_ok),
            )
            if on
        )
        owner = f"{decl.owner}." if decl.owner else ""
        lines.append(
            f"{decl.level:>5}  {decl.key:<24} {decl.kind:<6} {flags:<18} "
            f"{decl.path}:{decl.line} ({owner}{decl.attr})"
        )
    lines.append("")
    edge_count = sum(len(targets) for targets in analysis.edges.values())
    lines.append(f"Observed acquisition-order edges ({edge_count})")
    for source in sorted(analysis.edges):
        source_decl = analysis.registry.decls.get(source)
        source_level = source_decl.level if source_decl else "?"
        for target, site in sorted(analysis.edges[source].items()):
            target_decl = analysis.registry.decls.get(target)
            target_level = target_decl.level if target_decl else "?"
            lines.append(
                f"  {source}@{source_level} -> {target}@{target_level}"
                f"  [{site}]"
            )
    cycles = find_cycles(
        {held: set(targets) for held, targets in analysis.edges.items()}
    )
    cycles = [
        cycle
        for cycle in cycles
        if len(cycle) > 1
        or not (
            (decl := analysis.registry.decls.get(cycle[0])) is not None
            and (decl.reentrant or decl.peers)
        )
    ]
    lines.append("")
    if cycles:
        lines.append(f"CYCLES ({len(cycles)}) — potential deadlocks:")
        for cycle in cycles:
            lines.append("  " + " -> ".join([*cycle, cycle[0]]))
    else:
        lines.append("No cycles: the observed order graph is a DAG.")
    return "\n".join(lines)
