"""Interprocedural privacy taint analysis (R010).

R004 pattern-matches *names*: a weight-ish identifier inside a log call.
This pass tracks *values*.  A taint origin is protected data — the record
keys and weight values held by ``WeightedDataset`` (``core/dataset.py``)
and ``ColumnarDataset`` (``columnar/dataset.py``) — and taint propagates
through assignments, arithmetic, f-strings, containers and calls until it
either dies in a **sanctioned release** or reaches a **sink**:

* logging / ``print`` (the R004 sinks, now reached through any number of
  intermediate variables);
* exception messages (``raise E(tainted)``) — tracebacks end up in logs
  and HTTP 500 bodies;
* HTTP response bodies (``wfile.write``-ish receivers in
  ``service/http.py``);
* pickled payloads (``pickle.dumps``/``dump`` — ``shard/plan.py`` sends
  these across process boundaries).

Sanctioned releases kill taint: ``NoisyCountResult`` (the Laplace release
object), ``noisy_sum`` (the noise mechanism itself), ``from_released``
(replay of an already-released answer), and the cardinality-free builtins
``len``/``bool``/``type``/``id``/``isinstance``.

The analysis is interprocedural via function summaries computed to a
fixpoint: each function records which taint origins its return value
carries (the source, or specific parameters) and which parameters flow
into a sink inside it — so ``self._reply(payload)`` is flagged at the
call site when ``payload`` is tainted and ``_reply`` writes its argument
to the response stream.  Unresolvable calls propagate taint through their
result conservatively but are never sinks themselves.  Findings are
limited to the release packages, matching R001/R004.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .engine import Baseline, LintIssue, ModuleSource, iter_python_files
from .model import (
    FunctionInfo,
    RepoModel,
    TypeEnv,
    annotation_identifiers,
    dotted_name,
)
from .rules import RELEASE_PACKAGES

__all__ = ["analyze_flow"]

#: The protected classes and what on them constitutes raw protected data.
_SOURCE_TYPES = frozenset({"WeightedDataset", "ColumnarDataset"})
_SOURCE_ATTRS = frozenset({"_weights", "weights", "columns"})
_SOURCE_METHODS = frozenset(
    {
        "items",
        "records",
        "to_dict",
        "weight",
        "weights_for",
        "weights_for_codes",
        "record_codes",
        "total_weight",
        "distance",
    }
)

#: Calls whose result is sanctioned for release (taint dies here).
_SANCTIONERS = frozenset(
    {
        "NoisyCountResult",
        "from_released",
        "noisy_sum",
        "len",
        "bool",
        "type",
        "id",
        "isinstance",
    }
)

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

_SRC = "SRC"


def _in_release_package(parts: tuple[str, ...]) -> bool:
    return any(part in RELEASE_PACKAGES for part in parts[:-1])


@dataclass
class _Summary:
    """What one function does with taint, for its callers."""

    returns: set[str] = field(default_factory=set)  #: SRC and/or P<i>
    leaks: dict[int, str] = field(default_factory=dict)  #: param -> sink desc

    def snapshot(self) -> tuple:
        return (frozenset(self.returns), tuple(sorted(self.leaks.items())))


class _FunctionTaint:
    """One ordered taint pass over a function body."""

    def __init__(
        self,
        model: RepoModel,
        info: FunctionInfo,
        summaries: dict[str, _Summary],
        sink_here: bool,
        emit,
    ) -> None:
        self.model = model
        self.info = info
        self.module = info.module
        self.env = TypeEnv(model, info)
        self.bindings = model.bindings[id(info.module)]
        self.summaries = summaries
        self.summary = summaries[info.qualname]
        self.sink_here = sink_here  #: module is in a release package
        self.emit = emit
        self.state: dict[str, frozenset[str]] = {
            name: frozenset({f"P{index}"})
            for index, name in enumerate(info.param_names)
        }
        # A parameter annotated with a protected type is a source even when
        # the class body itself is outside the analyzed path set (partial
        # runs, fixtures): seed the type environment so receiver checks hit.
        for param, annotation in info.annotations.items():
            if param in self.env.locals:
                continue
            for ident in annotation_identifiers(annotation):
                if ident in _SOURCE_TYPES:
                    self.env.locals[param] = ident
                    break

    def run(self) -> None:
        for stmt in self.info.node.body:
            self._visit(stmt)

    # -- statements -----------------------------------------------------
    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(stmt, ast.Assign):
            taint = self._taint(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._taint(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            extra = self._taint(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.state.get(stmt.target.id, frozenset())
                self.state[stmt.target.id] = current | extra
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self._taint(stmt.iter))
            for child in [*stmt.body, *stmt.orelse]:
                self._visit(child)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._taint(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint)
            for child in stmt.body:
                self._visit(child)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.summary.returns |= self._taint(stmt.value)
            return
        if isinstance(stmt, ast.Raise):
            self._check_raise(stmt)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._visit(child)
            elif isinstance(child, ast.expr):
                self._taint(child)
            else:
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._visit(sub)
                    elif isinstance(sub, ast.expr):
                        self._taint(sub)

    def _assign(self, target: ast.expr, taint: frozenset[str]) -> None:
        if isinstance(target, ast.Name):
            self.state[target.id] = taint  # strong update
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint)

    # -- expressions ----------------------------------------------------
    def _taint(self, expr: ast.expr | None) -> frozenset[str]:
        if expr is None or isinstance(expr, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(expr, ast.Name):
            return self.state.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            taint = self._taint(expr.value)
            receiver = self.env.infer(expr.value)
            if receiver in _SOURCE_TYPES and expr.attr in _SOURCE_ATTRS:
                taint = taint | {_SRC}
            return taint
        if isinstance(expr, ast.Call):
            return self._call_taint(expr)
        # Structural recursion (not ast.walk): a sanctioned call nested in
        # an f-string or container must kill the taint of its operands.
        taint: frozenset[str] = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taint = taint | self._taint(child)
            else:
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        taint = taint | self._taint(sub)
        return taint

    def _call_taint(self, call: ast.Call) -> frozenset[str]:
        tail = (dotted_name(call.func) or "").rsplit(".", 1)[-1]
        operands = [*call.args, *[kw.value for kw in call.keywords]]
        if tail in _SANCTIONERS:
            for operand in operands:
                self._taint(operand)  # still walk for nested sinks
            return frozenset()
        arg_taint = frozenset().union(
            *[self._taint(operand) for operand in operands]
        ) if operands else frozenset()
        receiver_taint: frozenset[str] = frozenset()
        source_hit = False
        if isinstance(call.func, ast.Attribute):
            receiver_taint = self._taint(call.func.value)
            receiver = self.env.infer(call.func.value)
            if receiver in _SOURCE_TYPES and call.func.attr in _SOURCE_METHODS:
                source_hit = True
        self._check_sink_call(call, arg_taint)
        resolved = self.env.resolve_call(call)
        summary = (
            self.summaries.get(resolved.qualname) if resolved is not None else None
        )
        if resolved is not None and summary is not None:
            actuals = self._bind_actuals(call, resolved)
            result: set[str] = set()
            if source_hit:
                result.add(_SRC)
            for origin in summary.returns:
                if origin == _SRC:
                    result.add(_SRC)
                else:
                    actual = actuals.get(int(origin[1:]))
                    if actual is not None:
                        result |= self._taint(actual)
            for index, desc in summary.leaks.items():
                actual = actuals.get(index)
                if actual is None:
                    continue
                taint = self._taint(actual)
                if _SRC in taint and self.sink_here:
                    self.emit(
                        self.module,
                        call,
                        f"value derived from protected records/weights is "
                        f"passed to {resolved.short}(), which leaks its "
                        f"argument to {desc}; release it via NoisyCountResult "
                        f"or drop the value",
                    )
                for origin in taint:
                    if origin != _SRC:
                        self.summary.leaks.setdefault(
                            int(origin[1:]), f"{desc} (via {resolved.short}())"
                        )
            return frozenset(result)
        # Unresolved call: propagate conservatively, never a sink.
        taint = arg_taint | receiver_taint
        if source_hit:
            taint = taint | {_SRC}
        return taint

    def _bind_actuals(
        self, call: ast.Call, resolved: FunctionInfo
    ) -> dict[int, ast.expr]:
        actuals: dict[int, ast.expr] = {}
        offset = 0
        if (
            isinstance(call.func, ast.Attribute)
            and resolved.cls is not None
            and resolved.param_names
            and resolved.param_names[0] == "self"
        ):
            actuals[0] = call.func.value
            offset = 1
        for position, argument in enumerate(call.args):
            actuals[position + offset] = argument
        names = {name: index for index, name in enumerate(resolved.param_names)}
        for keyword in call.keywords:
            if keyword.arg in names:
                actuals[names[keyword.arg]] = keyword.value
        return actuals

    # -- sinks ----------------------------------------------------------
    def _record_sink(
        self, node: ast.AST, taint: frozenset[str], desc: str
    ) -> None:
        if _SRC in taint and self.sink_here:
            self.emit(
                self.module,
                node,
                f"value derived from protected records/weights reaches "
                f"{desc}; only NoisyCountResult releases may leave the "
                f"privacy boundary",
            )
        for origin in taint:
            if origin != _SRC:
                self.summary.leaks.setdefault(int(origin[1:]), desc)

    def _check_sink_call(self, call: ast.Call, arg_taint: frozenset[str]) -> None:
        func = call.func
        # A protected dataset handed to a sink *as an object* (its repr
        # previews records) is a leak even though the object carries no
        # value taint.
        for operand in [*call.args, *[kw.value for kw in call.keywords]]:
            if self.env.infer(operand) in _SOURCE_TYPES:
                arg_taint = arg_taint | {_SRC}
                break
        if isinstance(func, ast.Name) and func.id == "print":
            self._record_sink(call, arg_taint, "print()")
            return
        dotted = dotted_name(func) or ""
        root, _, rest = dotted.partition(".")
        canonical = self.bindings.get(root, root) + (f".{rest}" if rest else "")
        if canonical in ("pickle.dumps", "pickle.dump"):
            self._record_sink(call, arg_taint, "a pickled payload")
            return
        if isinstance(func, ast.Attribute):
            receiver = (dotted_name(func.value) or "").lower()
            if func.attr in _LOG_METHODS and "log" in receiver:
                self._record_sink(call, arg_taint, f"{receiver}.{func.attr}()")
            elif func.attr == "write" and "wfile" in receiver:
                self._record_sink(call, arg_taint, "the HTTP response body")

    def _check_raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is None:
            return
        if isinstance(stmt.exc, ast.Call):
            operands = [*stmt.exc.args, *[kw.value for kw in stmt.exc.keywords]]
            taint = frozenset().union(
                *[self._taint(operand) for operand in operands]
            ) if operands else frozenset()
            for operand in operands:
                if self.env.infer(operand) in _SOURCE_TYPES:
                    taint = taint | {_SRC}
                    break
        else:
            taint = self._taint(stmt.exc)
        self._record_sink(stmt, taint, "an exception message")


def analyze_flow(
    paths: Iterable[Path],
    root: Path,
    baseline: Baseline | None = None,
    model: RepoModel | None = None,
) -> list[LintIssue]:
    """The R010 issues for ``paths`` (suppressions + baseline applied)."""
    if model is None:
        modules = []
        for path in iter_python_files(paths):
            try:
                modules.append(ModuleSource.load(path, root))
            except SyntaxError:
                continue  # lint_paths reports E001 for unparseable files
        model = RepoModel(modules)

    functions: list[FunctionInfo] = []
    seen: set[str] = set()
    for group in (model.functions, model.methods):
        for infos in group.values():
            for info in infos:
                if info.qualname not in seen:
                    seen.add(info.qualname)
                    functions.append(info)
    summaries = {info.qualname: _Summary() for info in functions}

    issues: list[LintIssue] = []

    def emit(module: ModuleSource, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        issues.append(
            LintIssue(
                rule="R010",
                path=module.relpath,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                text=module.source_line(line),
            )
        )

    # Fixpoint: summaries grow monotonically; issues are collected fresh on
    # each round and the final round's set is reported.
    for _ in range(12):
        issues.clear()
        before = {name: summary.snapshot() for name, summary in summaries.items()}
        for info in functions:
            _FunctionTaint(
                model,
                info,
                summaries,
                sink_here=_in_release_package(info.module.parts),
                emit=emit,
            ).run()
        if all(
            summaries[name].snapshot() == before[name] for name in summaries
        ):
            break

    module_by_path = {module.relpath: module for module in model.modules}
    surviving = []
    seen_sites: set[tuple[str, int, str]] = set()
    for issue in issues:
        module = module_by_path.get(issue.path)
        if module is not None and module.suppressed(issue.line, issue.rule):
            continue
        if baseline is not None and baseline.contains(issue):
            continue
        site = (issue.path, issue.line, issue.message)
        if site in seen_sites:
            continue
        seen_sites.add(site)
        surviving.append(issue)
    surviving.sort(key=lambda issue: (issue.path, issue.line, issue.col, issue.rule))
    return surviving
