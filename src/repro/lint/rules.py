"""The privacy-invariant lint rules (R001–R006).

Each rule enforces an invariant the platform's privacy or concurrency
guarantees depend on but python cannot:

* **R001 seeded-rng** — release paths must not draw from unseeded or
  hidden-global-state RNGs.  Reproducible noise is a *correctness* property
  here: the shard workers, the persistence replay and the multi-backend
  bit-identity tests all assume a measurement's noise stream is a pure
  function of the session seed.
* **R002 lock-order** — budget locks are only ever acquired through
  ``ExitStack`` over ``sorted(...)`` names (the ``BudgetLedger.charge``
  discipline); ad-hoc nesting or multi-item ``with`` acquisitions are how
  lock-order inversions (and deadlocks under the service's concurrency)
  get introduced.
* **R003 check-then-act** — reading ``can_afford``/``remaining``/``spent``
  and then charging outside one held lock re-introduces the budget race
  fixed in PR 4: two racing measurements could both pass the check and
  overspend ε.
* **R004 weight-leak** — protected dataset weights must not be printed,
  logged or interpolated into strings in release packages.  The weights
  *are* the protected data; anything that writes them to a log defeats the
  Laplace noise entirely.  Sanctioned debug affordances carry an explicit
  ``# lint: disable=R004``.
* **R005 module-level-specs** — record functions handed to plan builders
  must be structural specs or module-level functions.  Lambdas and
  closures break :class:`~repro.shard.plan.PortablePlan` at encode time
  and are opaque to the vectorized backend.
* **R006 unused-import** — PR 4's one-off sweep, made permanent.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import LintIssue, ModuleSource, Rule

__all__ = [
    "DEFAULT_RULES",
    "RELEASE_PACKAGES",
    "CheckThenActRule",
    "LockOrderRule",
    "ModuleLevelSpecRule",
    "UnseededRandomRule",
    "UnusedImportRule",
    "WeightLeakRule",
]

#: Packages whose code runs in the release path of a measurement — the
#: rules with privacy consequences (R001, R004) apply only there.
RELEASE_PACKAGES = frozenset(
    {"core", "columnar", "service", "persistence", "shard", "resilience"}
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _in_release_package(parts: tuple[str, ...]) -> bool:
    """True when any *directory* component names a release package.

    The lint root may be the ``repro`` package itself (components like
    ``core/plan.py``) or a directory above it (``repro/core/plan.py``);
    either way the package directory appears as a path component.
    """
    return any(part in RELEASE_PACKAGES for part in parts[:-1])


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_bindings(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted path they import."""
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    bindings[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return bindings


def _canonical_call(node: ast.Call, bindings: dict[str, str]) -> str | None:
    """Resolve a call's dotted name through the module's imports.

    Returns ``None`` when the call root is not an imported name — a local
    variable called ``random`` must not trip the RNG rule.
    """
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    canonical_root = bindings.get(root)
    if canonical_root is None:
        return None
    return f"{canonical_root}.{rest}" if rest else canonical_root


def _is_lock_expr(node: ast.AST) -> bool:
    """An expression that acquires a lock by convention of this codebase."""
    if isinstance(node, ast.Attribute):
        return node.attr == "lock" or node.attr.endswith("_lock")
    if isinstance(node, ast.Name):
        return node.id == "lock" or node.id.endswith("_lock")
    return False


def _is_function(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))


def _mentions_weight(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "weight" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "weight" in sub.attr.lower():
            return True
    return False


class UnseededRandomRule(Rule):
    code = "R001"
    name = "seeded-rng"
    description = (
        "release paths must not draw from unseeded default_rng(), "
        "module-level random.*, or legacy numpy.random global state"
    )

    _LOG_SEEDED_OK = "pass an explicit seed so releases are reproducible"

    def check(self, module: ModuleSource) -> Iterator[LintIssue]:
        if not _in_release_package(module.parts):
            return
        bindings = _import_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, bindings)
            if canonical is None:
                continue
            if canonical == "numpy.random.default_rng":
                if self._unseeded(node):
                    yield self.issue(
                        module,
                        node,
                        f"unseeded default_rng() in a release path; "
                        f"{self._LOG_SEEDED_OK}",
                    )
            elif canonical.startswith("random.") or canonical == "random.Random":
                function = canonical.split(".", 1)[1]
                if function == "Random" and not self._unseeded(node):
                    continue
                yield self.issue(
                    module,
                    node,
                    f"random.{function}() uses the process-global random state "
                    f"in a release path; use a seeded numpy Generator",
                )
            elif canonical.startswith("numpy.random."):
                function = canonical.rsplit(".", 1)[1]
                if function[:1].isupper() and not self._unseeded(node):
                    continue  # PCG64(seed), SeedSequence(entropy), Generator(bg)
                yield self.issue(
                    module,
                    node,
                    f"numpy.random.{function}() uses legacy global (or unseeded) "
                    f"random state in a release path; {self._LOG_SEEDED_OK}",
                )

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        if node.args and isinstance(node.args[0], ast.Constant) and node.args[0].value is None:
            return True
        for keyword in node.keywords:
            if keyword.arg == "seed" and isinstance(keyword.value, ast.Constant):
                if keyword.value.value is None:
                    return True
        return False


class LockOrderRule(Rule):
    code = "R002"
    name = "lock-order"
    description = (
        "budget locks are acquired via ExitStack over sorted names; "
        "never nested ad hoc or multi-item"
    )

    def check(self, module: ModuleSource) -> Iterator[LintIssue]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                yield from self._check_with(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_enter_context(module, node)

    def _check_with(
        self, module: ModuleSource, node: ast.With | ast.AsyncWith
    ) -> Iterator[LintIssue]:
        lock_items = [
            item for item in node.items if _is_lock_expr(item.context_expr)
        ]
        if len(lock_items) >= 2:
            yield self.issue(
                module,
                node,
                "multiple locks acquired in one with-statement; acquire them "
                "via ExitStack over sorted(names) like BudgetLedger.charge",
            )
        if not lock_items:
            return
        for ancestor in module.ancestors(node):
            if _is_function(ancestor):
                break
            if isinstance(ancestor, (ast.With, ast.AsyncWith)) and any(
                _is_lock_expr(item.context_expr) for item in ancestor.items
            ):
                yield self.issue(
                    module,
                    node,
                    "lock acquired while another lock is held in the same "
                    "function; nested ad-hoc acquisition risks lock-order "
                    "inversion — use ExitStack over sorted(names)",
                )
                break

    def _check_enter_context(
        self, module: ModuleSource, node: ast.Call
    ) -> Iterator[LintIssue]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "enter_context"):
            return
        if not (node.args and _is_lock_expr(node.args[0])):
            return
        for ancestor in module.ancestors(node):
            if _is_function(ancestor):
                break
            if isinstance(ancestor, (ast.For, ast.AsyncFor)):
                iterator = ancestor.iter
                sorted_iter = (
                    isinstance(iterator, ast.Call)
                    and isinstance(iterator.func, ast.Name)
                    and iterator.func.id == "sorted"
                )
                if not sorted_iter:
                    yield self.issue(
                        module,
                        node,
                        "enter_context(<lock>) inside a loop that does not "
                        "iterate sorted(...) names; unordered multi-lock "
                        "acquisition can deadlock",
                    )
                break


class CheckThenActRule(Rule):
    code = "R003"
    name = "check-then-act"
    description = (
        "no check-then-act on PrivacyBudget state (can_afford/remaining/"
        "spent) outside a held lock"
    )

    _STATE_ATTRS = frozenset({"can_afford", "remaining", "spent"})
    _CHARGE_ATTRS = frozenset({"charge"})

    def check(self, module: ModuleSource) -> Iterator[LintIssue]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.If):
                continue
            if not self._reads_budget_state(node.test):
                continue
            function = self._enclosing_function(module, node)
            if function is None or not self._charges(function):
                continue
            if self._under_lock(module, node):
                continue
            yield self.issue(
                module,
                node,
                "budget state is checked here and charged in the same "
                "function without holding the budget lock across both; "
                "racing callers can both pass the check and overspend",
            )

    def _reads_budget_state(self, test: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Attribute) and sub.attr in self._STATE_ATTRS
            for sub in ast.walk(test)
        )

    def _charges(self, function: ast.AST) -> bool:
        for sub in ast.walk(function):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in self._CHARGE_ATTRS
            ):
                return True
            if isinstance(sub, ast.AugAssign) and _mentions_spent(sub.target):
                return True
        return False

    @staticmethod
    def _enclosing_function(module: ModuleSource, node: ast.AST) -> ast.AST | None:
        for ancestor in module.ancestors(node):
            if _is_function(ancestor):
                return ancestor
        return None

    def _under_lock(self, module: ModuleSource, node: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if _is_function(ancestor):
                return False
            if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
                continue
            if any(_is_lock_expr(item.context_expr) for item in ancestor.items):
                return True
            if self._is_exitstack_with_locks(ancestor):
                return True
        return False

    @staticmethod
    def _is_exitstack_with_locks(node: ast.With | ast.AsyncWith) -> bool:
        holds_stack = any(
            isinstance(item.context_expr, ast.Call)
            and (_dotted_name(item.context_expr.func) or "").endswith("ExitStack")
            for item in node.items
        )
        if not holds_stack:
            return False
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "enter_context"
                and sub.args
                and _is_lock_expr(sub.args[0])
            ):
                return True
        return False


def _mentions_spent(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and "spent" in sub.attr
        for sub in ast.walk(node)
    )


class WeightLeakRule(Rule):
    code = "R004"
    name = "weight-leak"
    description = (
        "protected dataset weights must not be printed, logged or "
        "string-interpolated in release packages"
    )

    _LOG_METHODS = frozenset(
        {"debug", "info", "warning", "error", "exception", "critical", "log"}
    )

    def check(self, module: ModuleSource) -> Iterator[LintIssue]:
        if not _in_release_package(module.parts):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.JoinedStr):
                yield from self._check_fstring(module, node)

    def _check_call(self, module: ModuleSource, node: ast.Call) -> Iterator[LintIssue]:
        sink = None
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            sink = "print"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._LOG_METHODS
        ):
            receiver = _dotted_name(node.func.value) or ""
            if "log" in receiver.lower():
                sink = f"{receiver}.{node.func.attr}"
        if sink is None:
            return
        for argument in [*node.args, *[kw.value for kw in node.keywords]]:
            # f-string arguments are flagged by _check_fstring already.
            if not isinstance(argument, ast.JoinedStr) and _mentions_weight(argument):
                yield self.issue(
                    module,
                    argument,
                    f"protected weight value passed to {sink}(); weights are "
                    f"the protected data — remove or aggregate before release",
                )

    def _check_fstring(
        self, module: ModuleSource, node: ast.JoinedStr
    ) -> Iterator[LintIssue]:
        for value in node.values:
            if isinstance(value, ast.FormattedValue) and _mentions_weight(value.value):
                yield self.issue(
                    module,
                    node,
                    "f-string interpolates a protected weight value; weights "
                    "must not leak into messages, logs or exceptions in "
                    "release packages",
                )
                return


class ModuleLevelSpecRule(Rule):
    code = "R005"
    name = "module-level-specs"
    description = (
        "record functions handed to plan builders must be structural specs "
        "or module-level functions, never lambdas/closures"
    )

    _PLAN_METHODS = frozenset(
        {"select", "where", "select_many", "group_by", "join", "shave"}
    )
    _PLAN_CTORS = frozenset(
        {
            "SelectPlan",
            "WherePlan",
            "SelectManyPlan",
            "GroupByPlan",
            "JoinPlan",
            "ShavePlan",
        }
    )

    def check(self, module: ModuleSource) -> Iterator[LintIssue]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            builder = self._builder_name(node)
            if builder is None:
                continue
            for argument in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(argument, ast.Lambda):
                    yield self.issue(
                        module,
                        argument,
                        f"lambda passed to {builder}(); lambdas break "
                        f"PortablePlan and are opaque to the vectorized "
                        f"backend — use a spec from repro.columnar.specs or "
                        f"a module-level function",
                    )

    def _builder_name(self, node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in self._PLAN_METHODS:
            return node.func.attr
        dotted = _dotted_name(node.func)
        if dotted is not None and dotted.rsplit(".", 1)[-1] in self._PLAN_CTORS:
            return dotted.rsplit(".", 1)[-1]
        return None


class UnusedImportRule(Rule):
    code = "R006"
    name = "unused-import"
    description = "imported names must be used (or re-exported via __all__)"

    def check(self, module: ModuleSource) -> Iterator[LintIssue]:
        bindings: list[tuple[str, ast.AST]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bindings.append((alias.asname or alias.name.split(".")[0], node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bindings.append((alias.asname or alias.name, node))
        if not bindings:
            return
        used = self._used_names(module.tree)
        for name, node in bindings:
            if name not in used:
                yield self.issue(module, node, f"unused import: {name}")

    @staticmethod
    def _used_names(tree: ast.Module) -> set[str]:
        used: set[str] = set()
        string_scopes: list[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
                used.add(node.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if any(
                    isinstance(target, ast.Name) and target.id == "__all__"
                    for target in targets
                ):
                    string_scopes.append(node.value)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for argument in [
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                    *filter(None, (arguments.vararg, arguments.kwarg)),
                ]:
                    if argument.annotation is not None:
                        string_scopes.append(argument.annotation)
                if node.returns is not None:
                    string_scopes.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                string_scopes.append(node.annotation)
        # Names exported via __all__ count as used (re-export modules), and
        # so do names inside quoted annotations (TYPE_CHECKING imports).
        for scope in string_scopes:
            for sub in ast.walk(scope):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    used.update(_IDENTIFIER_RE.findall(sub.value))
        return used


#: The rule set ``repro lint`` runs by default.
DEFAULT_RULES: tuple[Rule, ...] = (
    UnseededRandomRule(),
    LockOrderRule(),
    CheckThenActRule(),
    WeightLeakRule(),
    ModuleLevelSpecRule(),
    UnusedImportRule(),
)
