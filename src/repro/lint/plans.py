"""Static stability and sensitivity verification for plan DAGs.

Every transformation in :mod:`repro.core.transformations` is *stable* in the
sense of Definition 2: unary operators satisfy ``‖T(A) − T(A')‖ ≤ ‖A − A'‖``
(Select/Where/SelectMany 1-stable by construction, GroupBy by Theorem 5,
Shave/Distinct 1-Lipschitz per record, DownScale contracting by its factor),
and binary operators are bounded by the *sum* of their input distances
(Join by Theorem 4; Union/Intersect/Concat/Except element-wise 1-Lipschitz
in each argument).  Stability composes (Theorem 1), so a whole plan DAG has
a static per-source bound computed bottom-up:

* a source leaf is distance 1 from itself,
* every other node combines its children's bounds — unary nodes pass them
  through, ``DownScale`` multiplies them by its factor, binary nodes add
  them element-wise (a source reached through both operands of a self-join
  counts twice, matching Section 2.3's path-counting multiplicity).

The derived bound is what a measurement's ε must be multiplied by for the
release to be ``bound·ε``-differentially private with respect to each
source.  :func:`verify_epsilon` checks the charge actually levied by the
budget machinery against that requirement: a charge *below* the bound is a
privacy violation (noise calibrated too low), a charge above it is sound
but wasteful (possible when ``DownScale`` tightens the bound below the raw
path count the runtime charges by).

:func:`verify_plan` bundles the bound, the per-node annotations consumed by
``explain_plan(..., verify=True)``, the ε check, and the shared portability
analysis (:mod:`repro.lint.portability`) into one report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.partition import PartitionPlan
from ..core.plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
)
from ..exceptions import PlanError
from .portability import plan_portability_issues

__all__ = [
    "PlanIssue",
    "StabilityReport",
    "check_portability",
    "format_bounds",
    "node_stability_bounds",
    "stability_bounds",
    "verify_epsilon",
    "verify_plan",
]

#: Tolerance for comparing charged against required ε (floating point only —
#: the bounds themselves are exact sums and products of plan constants).
EPSILON_TOLERANCE = 1e-9

#: Unary nodes that pass their child's bound through unchanged (1-stable).
_UNIT_UNARY = (
    SelectPlan,
    WherePlan,
    SelectManyPlan,
    GroupByPlan,
    ShavePlan,
    DistinctPlan,
    PartitionPlan,
)

#: Binary nodes bounded by the sum of their operands' distances.
_SUM_BINARY = (JoinPlan, UnionPlan, IntersectPlan, ConcatPlan, ExceptPlan)


@dataclass(frozen=True)
class PlanIssue:
    """One problem found by the static plan checker."""

    kind: str  #: "epsilon-mismatch" | "epsilon-overcharge" | "unportable"
    node: str  #: label of the offending plan node (or source name)
    message: str
    severity: str = "error"  #: "error" | "warning"


@dataclass
class StabilityReport:
    """Everything the static checker derives about one plan."""

    #: Per-source stability bound of the root: a measurement at ε is
    #: ``bounds[s]·ε``-DP with respect to source ``s``.
    bounds: dict[str, float]
    #: Per-node bounds keyed by ``id(node)`` (for explain annotations).
    node_bounds: dict[int, dict[str, float]]
    issues: list[PlanIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return not any(issue.severity == "error" for issue in self.issues)


def node_stability_bounds(plan: Plan) -> dict[int, dict[str, float]]:
    """Compute the static stability bound of every node in a plan DAG.

    Returns ``id(node) -> {source name -> bound}``; shared sub-plans are
    computed once.  Raises :class:`~repro.exceptions.PlanError` for a node
    type without a proven stability constant — an unknown node could amplify
    distances arbitrarily, so the checker refuses to guess.
    """
    bounds: dict[int, dict[str, float]] = {}

    def visit(node: Plan) -> dict[str, float]:
        key = id(node)
        cached = bounds.get(key)
        if cached is not None:
            return cached
        if isinstance(node, SourcePlan):
            bound = {node.name: 1.0}
        elif isinstance(node, DownScalePlan):
            child = visit(node.child)
            bound = {name: value * node.factor for name, value in child.items()}
        elif isinstance(node, _UNIT_UNARY):
            bound = dict(visit(node.children[0]))
        elif isinstance(node, _SUM_BINARY):
            bound = dict(visit(node.left))
            for name, value in visit(node.right).items():
                bound[name] = bound.get(name, 0.0) + value
        else:
            raise PlanError(
                f"no static stability bound is known for plan node "
                f"{type(node).__name__}"
            )
        bounds[key] = bound
        return bound

    visit(plan)
    return bounds


def stability_bounds(plan: Plan) -> dict[str, float]:
    """The root's per-source stability bound (see :func:`node_stability_bounds`)."""
    return node_stability_bounds(plan)[id(plan)]


def format_bounds(bounds: dict[str, float]) -> str:
    """Render ``{"edges": 9.0}`` as ``"edges<=9"`` (sorted, comma-joined)."""
    return ", ".join(f"{name}<={value:g}" for name, value in sorted(bounds.items()))


def verify_epsilon(
    plan: Plan,
    epsilon: float,
    charged: dict[str, float] | None = None,
    tolerance: float = EPSILON_TOLERANCE,
) -> list[PlanIssue]:
    """Check a measurement's per-source charge against the derived bound.

    ``charged`` maps source name to the ε actually levied; when omitted it
    defaults to what the budget machinery charges — ``multiplicity · ε``
    per Section 2.3 (see ``execute_batch``).  A charge below ``bound · ε``
    is reported as an error (the Laplace noise at ε would under-protect the
    source); a charge above it as a warning (sound, but the ``DownScale``
    tightening is being left on the table).  Partition-group max-accounting
    charges are intentionally *not* modelled here — pass the group's
    ``charged`` mapping explicitly to check those.
    """
    bounds = stability_bounds(plan)
    if charged is None:
        charged = {
            name: uses * epsilon
            for name, uses in plan.source_multiplicities().items()
        }
    issues: list[PlanIssue] = []
    for name, bound in sorted(bounds.items()):
        required = bound * epsilon
        actual = charged.get(name, 0.0)
        if actual < required - tolerance:
            issues.append(
                PlanIssue(
                    kind="epsilon-mismatch",
                    node=name,
                    message=(
                        f"source {name!r} is charged {actual:g} but the plan's "
                        f"static stability bound requires at least "
                        f"{bound:g}*eps = {required:g}: the release would be "
                        f"under-protected"
                    ),
                )
            )
        elif actual > required + tolerance:
            issues.append(
                PlanIssue(
                    kind="epsilon-overcharge",
                    node=name,
                    message=(
                        f"source {name!r} is charged {actual:g} but the plan's "
                        f"static stability bound only requires {required:g} "
                        f"(sound, but over-conservative)"
                    ),
                    severity="warning",
                )
            )
    for name in sorted(set(charged) - set(bounds)):
        issues.append(
            PlanIssue(
                kind="epsilon-mismatch",
                node=name,
                message=(
                    f"source {name!r} is charged {charged[name]:g} but does "
                    f"not appear in the plan"
                ),
                severity="warning",
            )
        )
    return issues


def check_portability(plan: Plan) -> list[PlanIssue]:
    """Wrap the shared portability analysis as checker issues."""
    return [
        PlanIssue(kind="unportable", node=f"{node} {role}", message=message)
        for node, role, message in plan_portability_issues(plan)
    ]


def verify_plan(
    plan: Plan,
    epsilon: float | None = None,
    charged: dict[str, float] | None = None,
) -> StabilityReport:
    """Run the full static analysis over one plan.

    Always derives the stability bounds and the portability issues; when
    ``epsilon`` is supplied the charge check of :func:`verify_epsilon` is
    included as well.
    """
    node_bounds = node_stability_bounds(plan)
    issues = check_portability(plan)
    if epsilon is not None:
        issues.extend(verify_epsilon(plan, epsilon, charged))
    return StabilityReport(
        bounds=dict(node_bounds[id(plan)]),
        node_bounds=node_bounds,
        issues=issues,
    )
