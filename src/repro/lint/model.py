"""A lightweight whole-repo static model shared by the flow analyzers.

:mod:`repro.lint.concurrency` (lock-order/deadlock verification) and
:mod:`repro.lint.flow` (privacy taint tracking) both need to answer the same
interprocedural questions: *which function does this call resolve to?* and
*what type does this expression have?*  This module builds the minimal model
that makes those answers reliable for this codebase's idioms:

* every class with its methods, base classes, and the types of its
  ``self.<attr>`` attributes — inferred from ``self.x = SomeClass(...)``
  constructor assignments, from ``self.x = param`` where the parameter is
  annotated (string annotations like ``"LedgerStore | None"`` included), and
  from ``self.x: T`` annotated assignments;
* property aliases (``@property def lock(self): return self._lock``), so an
  acquisition through the public property resolves to the declared lock;
* function parameter and return annotations, so ``registry.get(name)`` is
  known to produce a ``HostedSession`` and attribute chains like
  ``hosted.session.measure_lock`` resolve end to end;
* dict-comprehension value types, so ``budgets[name].lock`` (the sorted
  ``ExitStack`` idiom of ``BudgetLedger.charge``) resolves through the
  comprehension that built ``budgets``.

The model is deliberately *unsound where python is dynamic* — an unresolved
call is simply skipped by the analyzers — but every lock-relevant idiom used
in this repository resolves, which the fixture suite pins down.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from .engine import ModuleSource

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "RepoModel",
    "TypeEnv",
    "annotation_identifiers",
    "dotted_name",
    "import_bindings",
]

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_bindings(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted path they import.

    Unlike the per-rule helper in :mod:`repro.lint.rules`, relative imports
    are kept (``from ..sanitize import ordered_lock`` binds ``ordered_lock``
    to ``sanitize.ordered_lock``): the analyzers only ever match on dotted
    *suffixes*, so the anchor package is irrelevant.
    """
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    bindings[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = (node.module or "").lstrip(".")
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{module}.{alias.name}" if module else alias.name
                bindings[alias.asname or alias.name] = target
    return bindings


def annotation_identifiers(node: ast.AST | None) -> list[str]:
    """Every identifier mentioned by an annotation (quoted forms included)."""
    if node is None:
        return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.extend(_IDENTIFIER_RE.findall(sub.value))
    return names


@dataclass
class FunctionInfo:
    """One function or method with its resolved annotations."""

    module: ModuleSource
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassInfo | None"
    name: str
    qualname: str  #: ``path.py:Class.method`` or ``path.py:function``
    param_names: list[str] = field(default_factory=list)
    annotations: dict[str, ast.AST | None] = field(default_factory=dict)
    returns: ast.AST | None = None

    @property
    def short(self) -> str:
        owner = f"{self.cls.name}." if self.cls is not None else ""
        return f"{owner}{self.name}"


@dataclass
class ClassInfo:
    """One class: methods, bases, attribute types, property aliases."""

    module: ModuleSource
    node: ast.ClassDef
    name: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.attr`` -> inferred type name (class name, or ``dict:<V>``).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: property name -> the ``self._attr`` it returns.
    properties: dict[str, str] = field(default_factory=dict)


class RepoModel:
    """The classes and functions of every module handed to the analyzers."""

    def __init__(self, modules: list[ModuleSource]) -> None:
        self.modules = modules
        self.classes: dict[str, list[ClassInfo]] = {}
        self.functions: dict[str, list[FunctionInfo]] = {}
        self.methods: dict[str, list[FunctionInfo]] = {}
        self.bindings: dict[int, dict[str, str]] = {}
        for module in modules:
            self._collect(module)
        for infos in self.classes.values():
            for info in infos:
                self._infer_attr_types(info)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self, module: ModuleSource) -> None:
        self.bindings[id(module)] = import_bindings(module.tree)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function(module, node, None)
                self.functions.setdefault(node.name, []).append(info)

    def _collect_class(self, module: ModuleSource, node: ast.ClassDef) -> None:
        info = ClassInfo(
            module=module,
            node=node,
            name=node.name,
            bases=[name for base in node.bases if (name := dotted_name(base))],
        )
        for child in node.body:
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method = self._function(module, child, info)
            info.methods[child.name] = method
            self.methods.setdefault(child.name, []).append(method)
            alias = self._property_alias(child)
            if alias is not None:
                info.properties[child.name] = alias
        self.classes.setdefault(node.name, []).append(info)

    def _function(
        self,
        module: ModuleSource,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
    ) -> FunctionInfo:
        owner = f"{cls.name}." if cls is not None else ""
        arguments = node.args
        params = [
            argument.arg
            for argument in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]
        ]
        annotations = {
            argument.arg: argument.annotation
            for argument in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]
        }
        return FunctionInfo(
            module=module,
            node=node,
            cls=cls,
            name=node.name,
            qualname=f"{module.relpath}:{owner}{node.name}",
            param_names=params,
            annotations=annotations,
            returns=node.returns,
        )

    @staticmethod
    def _property_alias(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
        decorated = any(
            isinstance(dec, ast.Name) and dec.id == "property"
            for dec in node.decorator_list
        )
        if not decorated:
            return None
        for stmt in node.body:
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Attribute):
                value = stmt.value
                if isinstance(value.value, ast.Name) and value.value.id == "self":
                    return value.attr
        return None

    # ------------------------------------------------------------------
    # Attribute-type inference
    # ------------------------------------------------------------------
    def _infer_attr_types(self, info: ClassInfo) -> None:
        for method in info.methods.values():
            annotations = method.annotations
            for stmt in ast.walk(method.node):
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if attr in info.attr_types:
                    continue
                declared = None
                if isinstance(stmt, ast.AnnAssign):
                    declared = self.annotation_type(stmt.annotation)
                if declared is None and isinstance(value, ast.Call):
                    callee = dotted_name(value.func)
                    if callee is not None:
                        tail = callee.rsplit(".", 1)[-1]
                        if tail in self.classes:
                            declared = tail
                if declared is None and isinstance(value, ast.Name):
                    declared = self.annotation_type(annotations.get(value.id))
                if declared is not None:
                    info.attr_types[attr] = declared

    def _first_known_class(self, names: list[str]) -> str | None:
        for name in names:
            if name in self.classes:
                return name
        return None

    _DICT_BASES = frozenset(
        {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "OrderedDict"}
    )

    def annotation_type(self, node: ast.AST | None) -> str | None:
        """The type an annotation names: a class, or ``dict:<V>`` for maps."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                return self.annotation_type(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            base = (dotted_name(node.value) or "").rsplit(".", 1)[-1]
            if base in self._DICT_BASES:
                inner = self._first_known_class(annotation_identifiers(node.slice))
                if inner is not None:
                    return f"dict:{inner}"
        return self._first_known_class(annotation_identifiers(node))

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def class_info(self, name: str | None) -> ClassInfo | None:
        if name is None:
            return None
        infos = self.classes.get(name)
        return infos[0] if infos else None

    def mro(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """The class and its repo-local base classes (by name, breadth-first)."""
        seen = {info.name}
        queue = [info]
        while queue:
            current = queue.pop(0)
            yield current
            for base in current.bases:
                base_info = self.class_info(base.rsplit(".", 1)[-1])
                if base_info is not None and base_info.name not in seen:
                    seen.add(base_info.name)
                    queue.append(base_info)

    def find_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        for candidate in self.mro(cls):
            if name in candidate.methods:
                return candidate.methods[name]
        return None

    def unique_method(self, name: str) -> FunctionInfo | None:
        """The only method in the repo with ``name``, if unambiguous."""
        candidates = self.methods.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def module_function(
        self, module: ModuleSource, name: str
    ) -> FunctionInfo | None:
        for candidate in self.functions.get(name, []):
            if candidate.module is module:
                return candidate
        return None


class TypeEnv:
    """Best-effort expression typing inside one function."""

    def __init__(self, model: RepoModel, function: FunctionInfo) -> None:
        self.model = model
        self.function = function
        self.locals: dict[str, str] = {}
        for param, annotation in function.annotations.items():
            declared = model.annotation_type(annotation)
            if declared is not None:
                self.locals[param] = declared
        # One ordered pass over assignments: good enough for straight-line
        # construction code, which is where typed locals get bound.
        assigns = [
            node
            for node in ast.walk(function.node)
            if isinstance(node, (ast.Assign, ast.AnnAssign))
        ]
        for node in sorted(assigns, key=lambda item: item.lineno):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if len(targets) != 1 or not isinstance(targets[0], ast.Name):
                continue
            name = targets[0].id
            inferred = None
            if isinstance(node, ast.AnnAssign):
                inferred = model.annotation_type(node.annotation)
            if inferred is None and node.value is not None:
                inferred = self.infer(node.value)
            if inferred is not None:
                self.locals[name] = inferred

    def infer(self, expr: ast.AST) -> str | None:
        """The type name of ``expr`` (or ``dict:<V>``), else ``None``."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.function.cls is not None:
                return self.function.cls.name
            if expr.id in self.locals:
                return self.locals[expr.id]
            binding = self.model.bindings[id(self.function.module)].get(expr.id)
            if binding is not None:
                tail = binding.rsplit(".", 1)[-1]
                if tail in self.model.classes:
                    return tail
            return None
        if isinstance(expr, ast.Attribute):
            base = self.infer(expr.value)
            info = self.model.class_info(base)
            if info is None:
                return None
            for candidate in self.model.mro(info):
                if expr.attr in candidate.attr_types:
                    return candidate.attr_types[expr.attr]
                alias = candidate.properties.get(expr.attr)
                if alias is not None and alias in candidate.attr_types:
                    return candidate.attr_types[alias]
            return None
        if isinstance(expr, ast.Call):
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id == "dict"
                and len(expr.args) == 1
            ):
                return self.infer(expr.args[0])  # dict(x) is a shallow copy
            resolved = self.resolve_call(expr)
            if resolved is not None:
                if resolved.name == "__init__" and resolved.cls is not None:
                    return resolved.cls.name
                return self.model.annotation_type(resolved.returns)
            callee = dotted_name(expr.func)
            if callee is not None:
                tail = callee.rsplit(".", 1)[-1]
                if tail in self.model.classes:
                    return tail
            return None
        if isinstance(expr, ast.Subscript):
            base = self.infer(expr.value)
            if base is not None and base.startswith("dict:"):
                return base.split(":", 1)[1]
            return None
        if isinstance(expr, ast.DictComp):
            value = self.infer(expr.value)
            return f"dict:{value}" if value is not None else None
        if isinstance(expr, ast.IfExp):
            return self.infer(expr.body) or self.infer(expr.orelse)
        if isinstance(expr, ast.Await):
            return self.infer(expr.value)
        return None

    def resolve_call(self, call: ast.Call) -> FunctionInfo | None:
        """The repo function/method a call resolves to, if determinable."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self.model.module_function(self.function.module, func.id)
            if local is not None:
                return local
            binding = self.model.bindings[id(self.function.module)].get(func.id)
            tail = (binding or func.id).rsplit(".", 1)[-1]
            candidates = self.model.functions.get(tail, [])
            if len(candidates) == 1:
                return candidates[0]
            if candidates:
                return None  # ambiguous across modules
            info = self.model.class_info(tail)
            if info is not None:
                ctor = self.model.find_method(info, "__init__")
                if ctor is not None:
                    return ctor
                # A class with no __init__ of its own still types as itself.
                return FunctionInfo(
                    module=info.module,
                    node=info.node,  # type: ignore[arg-type]
                    cls=info,
                    name="__init__",
                    qualname=f"{info.module.relpath}:{info.name}.__init__",
                )
            return None
        if isinstance(func, ast.Attribute):
            receiver = self.infer(func.value)
            info = self.model.class_info(receiver)
            if info is not None:
                method = self.model.find_method(info, func.attr)
                if method is not None:
                    return method
                return None
            dotted = dotted_name(func)
            if dotted is not None:
                binding = self.model.bindings[id(self.function.module)].get(
                    dotted.split(".", 1)[0]
                )
                if binding is not None:
                    # An imported module attribute: try module-level functions.
                    candidates = self.model.functions.get(func.attr, [])
                    if len(candidates) == 1:
                        return candidates[0]
            if func.attr in _GENERIC_METHOD_NAMES:
                return None  # dict.clear() must not hit a repo method
            return self.model.unique_method(func.attr)
        return None


#: Method names shared with the builtin collections/IO types: an attribute
#: call on an *untyped* receiver must never resolve to a repo method by
#: name-uniqueness alone for these, or ``some_dict.clear()`` binds to
#: whatever repo class happens to define ``clear``.
_GENERIC_METHOD_NAMES = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "discard",
        "extend", "get", "index", "insert", "items", "join", "keys", "open",
        "pop", "popitem", "put", "read", "recv", "remove", "send",
        "setdefault", "sort", "update", "values", "write",
    }
)
