"""Shared portability analysis for plan parameters.

A plan parameter is *portable* when it can cross a process boundary intact:
a structural :class:`~repro.columnar.specs.ColumnarSpec` (pickled by value),
a module-level function (pickled by reference), or a plain picklable value
(shave slice weights, caps, factors, source names).  Lambdas, closures and
bound methods are not — they either fail to pickle outright or drag
unpicklable state with them.

This module is the single source of truth for that judgement.  The shard
wire codec (:mod:`repro.shard.plan`) calls :func:`check_portable` at encode
time; the static plan checker (:mod:`repro.lint.plans`) calls
:func:`plan_portability_issues` to surface the same findings *before* a plan
ever reaches a worker.  Both read :data:`PLAN_PARAMS` for the per-node
parameter lists, so the checker and the codec cannot drift apart.
"""

from __future__ import annotations

import pickle
from typing import Any

from ..columnar.specs import ColumnarSpec
from ..core.plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
)
from ..exceptions import PlanError

__all__ = [
    "PLAN_PARAMS",
    "UnportablePlanError",
    "check_portable",
    "plan_portability_issues",
    "portability_error",
]


class UnportablePlanError(PlanError):
    """A plan parameter cannot cross a process boundary."""


#: Plan node type -> the attribute names of its wire parameters, in
#: constructor order after the children.  The shard codec encodes exactly
#: these attributes and the static checker validates exactly these
#: attributes; extending a plan node means extending this table once.
PLAN_PARAMS: dict[type, tuple[str, ...]] = {
    SourcePlan: ("name",),
    SelectPlan: ("mapper",),
    WherePlan: ("predicate",),
    SelectManyPlan: ("mapper",),
    GroupByPlan: ("key", "reducer"),
    ShavePlan: ("slice_weights",),
    DistinctPlan: ("cap",),
    DownScalePlan: ("factor",),
    JoinPlan: ("left_key", "right_key", "result_selector"),
    UnionPlan: (),
    IntersectPlan: (),
    ConcatPlan: (),
    ExceptPlan: (),
}


def portability_error(value: Any, node: str, role: str) -> str | None:
    """Explain why one plan parameter cannot cross the wire, or ``None``.

    Specs are value objects and always portable.  Other callables must
    round-trip through pickle *by reference* (module-level functions,
    builtins); a lambda or closure fails here with a named error.
    Non-callable parameters (shave slice weights, caps, factors) must simply
    pickle.
    """
    if isinstance(value, ColumnarSpec):
        return None
    try:
        pickle.loads(pickle.dumps(value))
    except Exception:
        kind = "callable" if callable(value) else "value"
        return (
            f"{node} {role} is not portable: the {kind} {value!r} cannot be "
            f"pickled for a worker process. Use a structural spec from "
            f"repro.columnar.specs or a module-level function."
        )
    return None


def check_portable(value: Any, node: str, role: str) -> Any:
    """Validate one plan parameter for the wire; returns it unchanged.

    Raises :class:`UnportablePlanError` with the offending node and role
    named — the error the shard codec surfaces at encode time instead of a
    cryptic pickling failure inside a worker.
    """
    message = portability_error(value, node, role)
    if message is not None:
        raise UnportablePlanError(message)
    return value


def plan_portability_issues(plan: Plan) -> list[tuple[str, str, str]]:
    """Collect every portability problem in a plan DAG.

    Returns ``(node label, parameter role, message)`` triples in first-visit
    order, one per offending parameter.  Unlike :func:`check_portable` this
    does not stop at the first failure — the static checker reports them
    all.  Shared sub-plans are visited once (plan identity), matching the
    codec's flattening.  A node type outside :data:`PLAN_PARAMS` (for
    example a :class:`~repro.core.partition.PartitionPlan`, whose closure
    predicate never ships to workers) is itself reported as unportable.
    """
    issues: list[tuple[str, str, str]] = []
    seen: set[int] = set()

    def visit(node: Plan) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            visit(child)
        attributes = PLAN_PARAMS.get(type(node))
        if attributes is None:
            issues.append(
                (
                    node._label(),
                    "node",
                    f"plan node {type(node).__name__} has no portable encoding",
                )
            )
            return
        for attribute in attributes:
            message = portability_error(getattr(node, attribute), node._label(), attribute)
            if message is not None:
                issues.append((node._label(), attribute, message))

    visit(plan)
    return issues
