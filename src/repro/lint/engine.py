"""AST lint engine: module loading, suppression, baselines, reporting.

The engine is deliberately small: a :class:`ModuleSource` parses one file
and precomputes what every rule needs (AST, parent links, per-line
suppression comments), a :class:`Rule` yields :class:`LintIssue` objects,
and :func:`lint_paths` drives the two over a file tree.  Rules themselves
live in :mod:`repro.lint.rules`.

Suppression: a finding is silenced by a comment on the flagged line —
``# lint: disable=R004`` (comma-separate several codes, or use ``all``).
Suppressions are per-line and per-rule so they double as documentation of
the sanctioned exception.

Baselines: ``repro lint --write-baseline`` records current findings keyed
by ``(rule, path, stripped source line)`` — not line numbers, so unrelated
edits don't invalidate the baseline — and ``--baseline FILE`` filters them
out of later runs, letting a new rule land strict while grandfathering
known debt.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Baseline",
    "LintError",
    "LintIssue",
    "ModuleSource",
    "Rule",
    "format_issues",
    "iter_python_files",
    "lint_paths",
]

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


class LintError(Exception):
    """The linter itself could not run (unreadable file, bad baseline)."""


@dataclass(frozen=True)
class LintIssue:
    """One finding: a rule violated at a location."""

    rule: str
    path: str  #: posix path relative to the lint root
    line: int
    col: int
    message: str
    severity: str = "error"  #: "error" | "warning"
    text: str = ""  #: stripped source line, used for baseline matching

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.text)


class ModuleSource:
    """One parsed python file plus the per-rule conveniences."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._suppressed: dict[int, set[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                self._suppressed[number] = {
                    code.strip() for code in match.group(1).split(",") if code.strip()
                }

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleSource":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return cls(path, relpath, text)

    # ------------------------------------------------------------------
    @property
    def parts(self) -> tuple[str, ...]:
        """Path components of the module relative to the lint root."""
        return tuple(self.relpath.split("/"))

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from a node's parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed(self, line: int, rule: str) -> bool:
        codes = self._suppressed.get(line)
        return bool(codes) and (rule in codes or "all" in codes)


class Rule:
    """Base class for lint rules; subclasses yield issues from ``check``."""

    code: str = "R000"
    name: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[LintIssue]:
        raise NotImplementedError

    def issue(
        self,
        module: ModuleSource,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> LintIssue:
        line = getattr(node, "lineno", 1)
        return LintIssue(
            rule=self.code,
            path=module.relpath,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=severity,
            text=module.source_line(line),
        )


@dataclass
class Baseline:
    """Grandfathered findings, matched by (rule, path, source-line text)."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
            entries = {
                (entry["rule"], entry["path"], entry["text"]) for entry in raw["issues"]
            }
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise LintError(f"cannot load baseline {path}: {exc}") from exc
        return cls(entries)

    def save(self, path: Path, issues: Iterable[LintIssue]) -> bool:
        """Write the baseline for ``issues``; returns True if the file changed.

        The payload is stable-sorted, and an up-to-date file is left
        untouched — so re-running ``--write-baseline`` never churns
        timestamps or version control.
        """
        payload = {
            "issues": sorted(
                (
                    {"rule": rule, "path": rel, "text": text}
                    for rule, rel, text in {issue.baseline_key() for issue in issues}
                ),
                key=lambda entry: (entry["path"], entry["rule"], entry["text"]),
            )
        }
        text = json.dumps(payload, indent=2) + "\n"
        try:
            if path.read_text(encoding="utf-8") == text:
                return False
        except OSError:
            pass
        path.write_text(text, encoding="utf-8")
        return True

    def contains(self, issue: LintIssue) -> bool:
        return issue.baseline_key() in self.entries

    def stale_entries(
        self, issues: Iterable[LintIssue]
    ) -> list[tuple[str, str, str]]:
        """Baseline entries that no current (pre-baseline) issue matches.

        A non-empty result means grandfathered findings have been fixed and
        the baseline should be refreshed with ``--write-baseline`` so it
        cannot mask a future regression at the same site.
        """
        current = {issue.baseline_key() for issue in issues}
        return sorted(self.entries - current)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise LintError(f"not a python file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Iterable[Path],
    rules: Iterable[Rule],
    root: Path,
    baseline: Baseline | None = None,
) -> list[LintIssue]:
    """Run every rule over every file; returns surviving issues, sorted.

    Per-line suppression comments and baseline entries are applied here so
    individual rules stay oblivious to both.  A file that fails to parse
    yields a single ``E001`` issue rather than aborting the run.
    """
    rules = list(rules)
    issues: list[LintIssue] = []
    for path in iter_python_files(paths):
        try:
            module = ModuleSource.load(path, root)
        except SyntaxError as exc:
            relpath = path.as_posix()
            issues.append(
                LintIssue(
                    rule="E001",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            for issue in rule.check(module):
                if module.suppressed(issue.line, issue.rule):
                    continue
                if baseline is not None and baseline.contains(issue):
                    continue
                issues.append(issue)
    issues.sort(key=lambda issue: (issue.path, issue.line, issue.col, issue.rule))
    return issues


def format_issues(issues: Iterable[LintIssue]) -> str:
    return "\n".join(issue.render() for issue in issues)
