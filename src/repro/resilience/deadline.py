"""End-to-end request deadlines.

A :class:`Deadline` is an absolute point on the monotonic clock, carried from
the HTTP header (``X-Repro-Deadline-Ms``) through scheduler admission,
executor evaluation, and pool task timeouts via a :mod:`contextvars` context
variable — the scheduler's drain thread calls ``session.measure`` in the same
thread as executor evaluation, so the scope set around the measure call is
visible everywhere below it.

Budget-safety contract: deadlines are only *enforced* before the atomic
budget charge (scheduler admission, drain-time shedding, and the pre-charge
check in ``PrivacySession.measure``).  Once a charge commits, evaluation runs
to completion and the answer is cached and durably released, so a client
whose deadline expired mid-flight retries for free — the answer cache serves
it without a second charge.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from ..exceptions import DeadlineExceededError

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "check_deadline",
]


class Deadline:
    """An absolute expiry on the monotonic clock."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds, clock=time.monotonic):
        """Deadline ``seconds`` from now.  Non-positive means already expired."""
        return cls(clock() + float(seconds))

    def remaining(self, clock=time.monotonic):
        """Seconds until expiry; never negative."""
        return max(0.0, self.expires_at - clock())

    def expired(self, clock=time.monotonic):
        return clock() >= self.expires_at

    def check(self, where, clock=time.monotonic):
        """Raise :class:`DeadlineExceededError` if expired."""
        if self.expired(clock):
            raise DeadlineExceededError(f"deadline exceeded at {where}")

    def __repr__(self):
        return f"Deadline(remaining={self.remaining():.3f}s)"


_current: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline():
    """The deadline governing the current context, or ``None``."""
    return _current.get()


@contextmanager
def deadline_scope(deadline):
    """Bind ``deadline`` (possibly ``None``) for the duration of the block."""
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def check_deadline(where):
    """Raise if the context deadline (if any) has expired.  Free when unset."""
    deadline = _current.get()
    if deadline is not None:
        deadline.check(where)
