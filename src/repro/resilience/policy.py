"""Retry and circuit-breaking policies.

Everything here is deterministic under a seed.  Jitter comes from a
``blake2b`` hash of ``(seed, key, attempt)`` rather than a shared RNG, so two
clients retrying the same failure desynchronise (thundering-herd fix) while a
replay with the same seed reproduces the exact sleep schedule —
``PYTHONHASHSEED``-independent, thread-interleaving-independent.

:class:`RetryBudget` caps retry *amplification*: retries withdraw from a
token bucket that only first-attempts refill, so when a backend is hard-down
the retry rate decays to a trickle instead of multiplying the overload.
:class:`CircuitBreaker` is the fail-fast complement — after ``threshold``
consecutive failures it refuses work outright for ``reset_after`` seconds,
then lets a single half-open probe through.
"""

from __future__ import annotations

import hashlib
import time

from ..exceptions import CircuitOpenError
from ..sanitize import ordered_lock

__all__ = [
    "seeded_jitter",
    "RetryBudget",
    "RetryPolicy",
    "CircuitBreaker",
]


def seeded_jitter(seed, *key):
    """Deterministic uniform in [0, 1) keyed on ``(seed, *key)``."""
    material = ":".join(str(part) for part in (seed, *key))
    digest = hashlib.blake2b(material.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class RetryBudget:
    """Token bucket limiting how many retries recent first-attempts earn.

    Each first attempt deposits ``deposit`` tokens (capped at ``capacity``);
    each retry withdraws one.  An empty bucket means the failure rate has
    outrun the request rate and further retries would only amplify load.
    """

    def __init__(self, capacity=10.0, deposit=0.1):
        self.capacity = float(capacity)
        self.deposit = float(deposit)
        self._tokens = float(capacity)
        self._lock = ordered_lock("resilience.retry_budget", 85)  # lock-order: 85

    def record_attempt(self):
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.deposit)

    def try_withdraw(self):
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    @property
    def tokens(self):
        with self._lock:
            return self._tokens


def _default_retryable(exc):
    return bool(getattr(exc, "retryable", False))


class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``call(fn)`` runs ``fn`` up to ``1 + retries`` times.  A failure is
    retried only if ``retryable(exc)`` holds (default: the exception's own
    ``retryable`` flag), the optional :class:`RetryBudget` grants a token,
    and the context deadline (if any) leaves room for the backoff sleep.
    Sleep before attempt ``n`` (1-based retry index) is::

        min(max_delay, base_delay * multiplier**(n-1)) * (1 - jitter/2 + jitter*u)

    with ``u = seeded_jitter(seed, key, n)``.
    """

    def __init__(
        self,
        retries=3,
        base_delay=0.05,
        max_delay=2.0,
        multiplier=2.0,
        jitter=0.5,
        seed=0,
        budget=None,
        sleep=time.sleep,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = int(retries)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.budget = budget
        self._sleep = sleep

    def backoff(self, attempt, key=""):
        """Backoff (seconds) before retry ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0:
            u = seeded_jitter(self.seed, key, attempt)
            delay *= 1.0 - self.jitter / 2.0 + self.jitter * u
        return delay

    def call(self, fn, retryable=None, key="", on_retry=None):
        from .deadline import current_deadline

        is_retryable = _default_retryable if retryable is None else retryable
        if self.budget is not None:
            self.budget.record_attempt()
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                attempt += 1
                if attempt > self.retries or not is_retryable(exc):
                    raise
                if self.budget is not None and not self.budget.try_withdraw():
                    raise
                delay = self.backoff(attempt, key=key)
                deadline = current_deadline()
                if deadline is not None and deadline.remaining() <= delay:
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt, delay)
                if delay > 0.0:
                    self._sleep(delay)


class CircuitBreaker:
    """Three-state (closed / open / half-open) failure breaker.

    ``threshold`` consecutive failures open the circuit for ``reset_after``
    seconds; while open, :meth:`allow` is ``False`` and :meth:`check` raises
    :class:`CircuitOpenError` with the remaining window as ``retry_after``.
    After the window one probe is admitted (half-open); its success closes
    the circuit, its failure re-opens the full window.
    """

    def __init__(self, threshold=5, reset_after=5.0, clock=time.monotonic, name=""):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.reset_after = float(reset_after)
        self.name = name
        self._clock = clock
        self._lock = ordered_lock("resilience.breaker", 20)  # lock-order: 20
        self._failures = 0
        self._opened_at = None
        self._probing = False
        self._opened_total = 0

    @property
    def state(self):
        with self._lock:
            return self._state_locked()

    def _state_locked(self):
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half-open"
        if self._clock() - self._opened_at >= self.reset_after:
            return "half-open"
        return "open"

    def allow(self):
        """Whether a request may proceed.  Claims the half-open probe slot."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                return True
            return False

    def retry_after(self):
        with self._lock:
            if self._opened_at is None:
                return 0.0
            return max(0.0, self.reset_after - (self._clock() - self._opened_at))

    def check(self):
        """Like :meth:`allow` but raises :class:`CircuitOpenError` on refusal."""
        if not self.allow():
            label = f" ({self.name})" if self.name else ""
            raise CircuitOpenError(
                f"circuit breaker open{label}", retry_after=self.retry_after()
            )

    def record_success(self):
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self):
        """Record a dependency failure; returns True if this call opened it."""
        with self._lock:
            was_open = self._opened_at is not None
            self._failures += 1
            self._probing = False
            if was_open:
                # Failed half-open probe: restart the full open window.
                self._opened_at = self._clock()
                return False
            if self._failures >= self.threshold:
                self._opened_at = self._clock()
                self._opened_total += 1
                return True
            return False

    def stats(self):
        with self._lock:
            return {
                "name": self.name,
                "state": self._state_locked(),
                "failures": self._failures,
                "opened_total": self._opened_total,
                "retry_after": 0.0
                if self._opened_at is None
                else max(
                    0.0, self.reset_after - (self._clock() - self._opened_at)
                ),
            }
