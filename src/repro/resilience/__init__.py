"""Cross-cutting robustness layer: fault injection, deadlines, retry, chaos.

Importing this package installs any fault plan named by the ``REPRO_FAULTS``
environment variable, so subprocesses (forked serve workers, spawned pool
workers) self-arm the schedule their parent exported.
"""

from __future__ import annotations

from .chaos import ChaosReport, run_chaos
from .deadline import Deadline, check_deadline, current_deadline, deadline_scope
from .faults import (
    INJECTION_POINTS,
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    current_plan,
    deactivate,
    inject,
    install_from_env,
    parse_plan,
)
from .policy import CircuitBreaker, RetryBudget, RetryPolicy, seeded_jitter

__all__ = [
    "ChaosReport",
    "run_chaos",
    "INJECTION_POINTS",
    "FaultPlan",
    "FaultRule",
    "inject",
    "active_plan",
    "activate",
    "deactivate",
    "current_plan",
    "parse_plan",
    "install_from_env",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "check_deadline",
    "CircuitBreaker",
    "RetryBudget",
    "RetryPolicy",
    "seeded_jitter",
]

install_from_env()
