"""Deterministic, seed-driven fault injection.

The production code is threaded with *injection points* — named call sites
(``inject("wal.pre_commit")``) at the places where real deployments fail:
around fsyncs, between the ledger's intent and commit transactions, in the
shard pool's dispatch/heartbeat/worker paths, around shared-memory attach and
unlink, and on HTTP socket reads/writes.  With no plan installed an injection
point is a single module-global load plus a ``None`` check — free on hot
paths.

A :class:`FaultPlan` maps points to :class:`FaultRule` schedules.  Every
decision is a pure function of ``(seed, point, hit_index)`` via ``blake2b``,
so a schedule replays identically regardless of thread interleaving or
``PYTHONHASHSEED`` — the property the chaos harness relies on to reproduce a
failing run from its seed alone.

Plans activate three ways:

* ``with active_plan(plan): ...`` — scoped, for tests;
* :func:`install_from_env` — reads ``REPRO_FAULTS`` at import time, so
  subprocesses (forked serve workers, spawned pool workers) inherit the
  schedule through their environment;
* :func:`activate` / :func:`deactivate` — explicit, for the chaos driver.

``REPRO_FAULTS`` grammar (entries joined by ``;``)::

    seed=42;wal.intent_commit:kill@after=2;http.write:fail@p=0.2,limit=3
    pool.dispatch:delay:0.05@every=4

Each entry is ``point:action[:value][@opt,opt...]`` with actions ``fail``
(raise :class:`FaultInjectedError`), ``delay`` (sleep ``value`` seconds) and
``kill`` (``SIGKILL`` the current process — the crash-recovery hammer).
Options: ``after=N`` (fire only from the N-th hit on, 1-based), ``every=N``
(fire on every N-th hit), ``p=F`` (fire with probability ``F`` per hit,
decided deterministically from the seed), ``limit=N`` (fire at most N times).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..exceptions import FaultInjectedError
from ..sanitize import ordered_lock

__all__ = [
    "INJECTION_POINTS",
    "FaultRule",
    "FaultPlan",
    "inject",
    "active_plan",
    "activate",
    "deactivate",
    "current_plan",
    "parse_plan",
    "install_from_env",
]

ENV_VAR = "REPRO_FAULTS"

#: Canonical registry of injection points threaded through the stack.  Plans
#: may only name points listed here — a typo'd point is a configuration error,
#: not a silently dead schedule.
INJECTION_POINTS = {
    "wal.intent_commit": "between the ledger intent and commit transactions",
    "wal.pre_commit": "before the commit transaction's fsync",
    "wal.post_commit": "after the commit transaction's fsync",
    "pool.dispatch": "before a task frame is written to a pool worker",
    "pool.heartbeat": "before a heartbeat ping is sent to a worker",
    "pool.worker": "inside the worker loop, before executing a task",
    "shm.attach": "before a worker attaches a shared-memory segment",
    "shm.unlink": "before the owner unlinks a shared-memory segment",
    "http.read": "while reading an HTTP request body",
    "http.write": "while writing an HTTP response",
}

_ACTIONS = ("fail", "delay", "kill")


def _decision(seed, point, hit):
    """Deterministic uniform in [0, 1) for the ``hit``-th arrival at ``point``.

    Hash-based rather than drawn from a shared RNG so concurrent threads
    hitting different points cannot perturb each other's schedules.
    """
    digest = hashlib.blake2b(
        f"{seed}:{point}:{hit}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


@dataclass
class FaultRule:
    """Schedule for one injection point."""

    point: str
    action: str
    value: float = 0.0
    after: int = 1
    every: int = 1
    probability: float = 1.0
    limit: int | None = None

    def __post_init__(self):
        if self.point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {self.point!r}")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.action == "delay" and self.value <= 0.0:
            raise ValueError("delay faults need a positive duration")

    def should_fire(self, seed, hit):
        """Whether the ``hit``-th arrival (1-based) fires this rule."""
        if hit < self.after:
            return False
        if (hit - self.after) % self.every != 0:
            return False
        if self.probability < 1.0:
            return _decision(seed, self.point, hit) < self.probability
        return True

    def spec(self):
        parts = [self.point, self.action]
        if self.action == "delay":
            parts.append(f"{self.value:g}")
        opts = []
        if self.after != 1:
            opts.append(f"after={self.after}")
        if self.every != 1:
            opts.append(f"every={self.every}")
        if self.probability < 1.0:
            opts.append(f"p={self.probability:g}")
        if self.limit is not None:
            opts.append(f"limit={self.limit}")
        text = ":".join(parts)
        return text + ("@" + ",".join(opts) if opts else "")


class FaultPlan:
    """A seed plus a set of per-point rules, with hit/fire accounting."""

    def __init__(self, seed=0, rules=()):
        self.seed = int(seed)
        self._rules = {}
        for rule in rules:
            self.add(rule)
        self._lock = ordered_lock("resilience.faults", 90)  # lock-order: 90
        self._hits = {}
        self._fired = {}

    def add(self, rule):
        self._rules[rule.point] = rule
        return self

    @property
    def rules(self):
        return dict(self._rules)

    def on_hit(self, point):
        """Record an arrival at ``point``; return the action to take or None.

        Returns ``None`` (no-op), or a ``(action, value)`` pair.  Counting and
        firing decisions happen under the plan lock so concurrent threads see
        a consistent hit sequence.
        """
        rule = self._rules.get(point)
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            if rule is None:
                return None
            fired = self._fired.get(point, 0)
            if rule.limit is not None and fired >= rule.limit:
                return None
            if not rule.should_fire(self.seed, hit):
                return None
            self._fired[point] = fired + 1
        return (rule.action, rule.value)

    def stats(self):
        with self._lock:
            return {
                "seed": self.seed,
                "hits": dict(self._hits),
                "fired": dict(self._fired),
            }

    def to_env(self):
        """Serialise to the ``REPRO_FAULTS`` grammar (for subprocesses)."""
        entries = [f"seed={self.seed}"]
        entries.extend(rule.spec() for rule in self._rules.values())
        return ";".join(entries)


def parse_plan(text):
    """Parse the ``REPRO_FAULTS`` grammar into a :class:`FaultPlan`."""
    seed = 0
    rules = []
    for raw in text.split(";"):
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("seed="):
            seed = int(entry[5:])
            continue
        spec, _, opt_text = entry.partition("@")
        parts = spec.split(":")
        if len(parts) < 2:
            raise ValueError(f"malformed fault entry {entry!r}")
        point, action = parts[0], parts[1]
        value = float(parts[2]) if len(parts) > 2 else 0.0
        opts = {}
        if opt_text:
            for opt in opt_text.split(","):
                key, _, val = opt.partition("=")
                opts[key.strip()] = val.strip()
        rules.append(
            FaultRule(
                point=point,
                action=action,
                value=value,
                after=int(opts.get("after", 1)),
                every=int(opts.get("every", 1)),
                probability=float(opts.get("p", 1.0)),
                limit=int(opts["limit"]) if "limit" in opts else None,
            )
        )
    return FaultPlan(seed=seed, rules=rules)


# The single module-global consulted by inject().  ``None`` means injection
# is disabled and inject() is one attribute load + comparison.
_active: FaultPlan | None = None


def inject(point):
    """Injection point.  No-op unless a plan is active and targets ``point``."""
    plan = _active
    if plan is None:
        return
    outcome = plan.on_hit(point)
    if outcome is None:
        return
    action, value = outcome
    if action == "fail":
        raise FaultInjectedError(point)
    if action == "delay":
        time.sleep(value)
        return
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def current_plan():
    return _active


def activate(plan):
    global _active
    _active = plan
    return plan


def deactivate():
    global _active
    _active = None


@contextmanager
def active_plan(plan):
    """Scoped activation for tests.  Not re-entrant across different plans."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def install_from_env(environ=None):
    """Activate the plan named by ``REPRO_FAULTS``, if any.

    Called at package import so spawned/forked subprocesses self-install the
    schedule their parent exported.  Returns the installed plan or ``None``.
    """
    env = os.environ if environ is None else environ
    text = env.get(ENV_VAR)
    if not text:
        return None
    return activate(parse_plan(text))
