"""Randomized chaos harness for the serve/shard/persistence stack.

``run_chaos`` drives a durable measurement service through many steps, each
under a *different* randomized (but seed-deterministic) fault schedule, and
checks the four resilience invariants after every run:

1. **No lost or phantom ε** — after the final ledger replay, the durable
   spend of every protected source lies in
   ``[Σ acknowledged charges, Σ acknowledged + Σ failed-attempt charges]``:
   every answer the client acknowledged is durably paid for, and no failed
   attempt can have charged more than once.
2. **No orphaned shared memory** — the set of ``/dev/shm`` segments after
   shutdown equals the set before the run started.
3. **No stuck scheduler or pool** — every operation completes (successfully
   or with an error) within a liveness bound.
4. **Bit-identical replay** — after reopening the ledger, every acknowledged
   ``(query, ε)`` measurement replays the exact released values from the
   answer cache with ``charged == False`` and zero additional spend.

Two modes:

* **in-process** (``workers <= 1``): a :class:`MeasurementService` is driven
  directly, one fresh random :class:`~repro.resilience.faults.FaultPlan` per
  step (``fail``/``delay`` only — never ``kill``, which would take the test
  process with it, and never ``fail`` on ``shm.unlink``, which orphans a
  segment *by construction*).
* **subprocess kill-cycles** (``workers >= 2``): ``repro serve --workers N
  --ledger`` is spawned with a randomized ``REPRO_FAULTS`` schedule that may
  include ``kill`` actions inside the WAL charge window; the driver measures
  over HTTP, SIGKILLs the whole process group between cycles, restarts on
  the same ledger, and verifies the same invariants at the end.

Shell entry point: ``python -m repro chaos --seed 1234 --steps 50``
(non-zero exit status when any invariant is violated).
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from ..exceptions import ChaosInvariantError, ReproError
from .deadline import Deadline
from .faults import ENV_VAR, FaultPlan, FaultRule, active_plan

__all__ = ["ChaosReport", "run_chaos"]

#: Queries driven by the harness (all hosted by default on edge sessions);
#: kept to the cheap ones so a 50-step run stays fast.
_QUERIES = ("node-count", "degree-ccdf", "wedges")
_EPSILONS = (0.05, 0.1, 0.2)

#: Error codes that are raised *before* admission ever reaches the budget
#: ledger — they cannot possibly have charged, so they add no accounting
#: slack to the phantom-ε upper bound.
_NO_CHARGE_CODES = {
    "circuit_open",
    "rate_limited",
    "overloaded",
    "deadline_exceeded",
    "invalid_epsilon",
    "invalid_plan",
    "service_error",
    "session_exists",
}

#: Fault points an in-process schedule may draw from, with the actions that
#: are safe there.  ``kill`` is reserved for subprocess mode (an in-process
#: SIGKILL takes the harness with it) and ``shm.unlink`` only gets ``delay``
#: (a ``fail`` there leaks the segment by construction — that scenario is
#: covered deterministically by the unit tests instead).
_INPROCESS_POINTS = {
    "wal.intent_commit": ("fail", "delay"),
    "wal.pre_commit": ("fail", "delay"),
    "wal.post_commit": ("fail", "delay"),
    "pool.dispatch": ("fail", "delay"),
    "pool.heartbeat": ("fail",),
    "pool.worker": ("fail", "delay"),
    "shm.attach": ("fail",),
    "shm.unlink": ("delay",),
}

#: Per-operation liveness bound (invariant 3): generous enough for a cold
#: sharded pool boot under injected delays, far below a real deadlock.
_LIVENESS_TIMEOUT = 60.0


@dataclass
class ChaosReport:
    """Outcome of one chaos run: counters plus any invariant violations."""

    seed: int
    steps: int
    mode: str
    ops: int = 0
    acked: int = 0
    failed: int = 0
    refused: int = 0
    cached_hits: int = 0
    restarts: int = 0
    violations: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        """Raise :class:`ChaosInvariantError` when any invariant failed."""
        if self.violations:
            raise ChaosInvariantError(self.summary())

    def summary(self) -> str:
        lines = [
            f"chaos {self.mode}: seed={self.seed} steps={self.steps} "
            f"ops={self.ops} acked={self.acked} failed={self.failed} "
            f"refused={self.refused} cached={self.cached_hits} "
            f"restarts={self.restarts}"
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {violation}" for violation in self.violations)
        else:
            lines.append(
                "all invariants held: ledger bounds, shm cleanliness, "
                "liveness, bit-identical replay"
            )
        return "\n".join(lines)


def _shm_segments() -> set[str]:
    """Names of the POSIX shared-memory segments currently alive."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _random_plan(rng: random.Random, plan_seed: int) -> FaultPlan:
    """One randomized in-process fault schedule (fail/delay only)."""
    rules = []
    for point, actions in _INPROCESS_POINTS.items():
        if not actions or rng.random() < 0.55:
            continue
        action = rng.choice(actions)
        value = rng.uniform(0.001, 0.02) if action == "delay" else 0.0
        rules.append(
            FaultRule(
                point=point,
                action=action,
                value=value,
                after=rng.randint(1, 2),
                every=rng.randint(1, 3),
                limit=rng.randint(1, 4),
            )
        )
    return FaultPlan(seed=plan_seed, rules=rules)


def _chaos_edges(nodes: int = 40) -> list[tuple[int, int]]:
    """A small fixed ring-with-chords graph: enough structure to exercise
    every default query, small enough that 50 steps stay quick."""
    edges = [(index, (index + 1) % nodes) for index in range(nodes)]
    edges.extend((index, (index + 2) % nodes) for index in range(nodes))
    return edges


class _Accounting:
    """Tracks the ε-accounting bounds and acknowledged answers of a run."""

    def __init__(self, unit_costs: dict[str, dict[str, float]]) -> None:
        self._unit_costs = unit_costs
        self.charged_lower: dict[str, float] = {}
        self.failed_slack: dict[str, float] = {}
        self.answers: dict[tuple[str, float], list] = {}

    def _add(self, bucket: dict[str, float], query: str, epsilon: float) -> None:
        for source, unit in self._unit_costs[query].items():
            bucket[source] = bucket.get(source, 0.0) + unit * epsilon

    def record_ack(self, query: str, epsilon: float, charged: bool) -> None:
        if charged:
            self._add(self.charged_lower, query, epsilon)

    def record_failure(self, query: str, epsilon: float) -> None:
        """A failed (or unknown-outcome) attempt: at most one durable charge."""
        self._add(self.failed_slack, query, epsilon)

    def check_bounds(
        self, spent: dict[str, float], report: ChaosReport, where: str
    ) -> None:
        sources = set(spent) | set(self.charged_lower) | set(self.failed_slack)
        for source in sorted(sources):
            lower = self.charged_lower.get(source, 0.0)
            upper = lower + self.failed_slack.get(source, 0.0)
            actual = spent.get(source, 0.0)
            if actual < lower - 1e-6:
                report.violations.append(
                    f"lost ε ({where}): source {source!r} durably spent "
                    f"{actual:.6f} < acknowledged charges {lower:.6f}"
                )
            if actual > upper + 1e-6:
                report.violations.append(
                    f"phantom ε ({where}): source {source!r} durably spent "
                    f"{actual:.6f} > acknowledged {lower:.6f} + "
                    f"failed-attempt slack {upper - lower:.6f}"
                )


def _spent_by_source(budget: dict[str, dict[str, float]]) -> dict[str, float]:
    return {source: row.get("spent", 0.0) for source, row in budget.items()}


# ----------------------------------------------------------------------
# In-process mode
# ----------------------------------------------------------------------
def _run_inprocess(
    seed: int, steps: int, executor: str, verbose: bool
) -> ChaosReport:
    from ..service.core import MeasurementService

    report = ChaosReport(seed=seed, steps=steps, mode=f"in-process[{executor}]")
    rng = random.Random(seed)
    shm_before = _shm_segments()
    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-")
    saved_env = {
        key: os.environ.get(key)
        for key in (ENV_VAR, "REPRO_SHARD_MIN_ROWS", "REPRO_SHARD_PROCESSES")
    }
    service = None
    try:
        if executor == "sharded":
            # Tiny inputs must still shard, with a small worker pool; arm the
            # spawned workers themselves with an occasional worker-side fault
            # (they self-install from the environment at import).
            os.environ["REPRO_SHARD_MIN_ROWS"] = "1"
            os.environ["REPRO_SHARD_PROCESSES"] = "2"
            worker_plan = FaultPlan(
                seed=seed,
                rules=[FaultRule("pool.worker", "fail", after=3, every=5, limit=4)],
            )
            os.environ[ENV_VAR] = worker_plan.to_env()
        ledger = os.path.join(tmpdir, "chaos-ledger.db")
        service = MeasurementService(
            workers=2,
            ledger_path=ledger,
            breaker_threshold=3,
            breaker_reset=0.2,
        )
        service.create_session(
            "chaos",
            _chaos_edges(),
            total_epsilon=1e9,
            seed=seed,
            executor=executor,
        )
        unit_costs = {
            query: service.session("chaos").queryable(query).privacy_cost(1.0)
            for query in _QUERIES
        }
        accounting = _Accounting(unit_costs)

        for step in range(steps):
            plan = _random_plan(rng, plan_seed=seed * 1_000_003 + step)
            query = rng.choice(_QUERIES)
            epsilon = rng.choice(_EPSILONS)
            deadline = None
            if rng.random() < 0.1:
                # Occasionally submit an already-expired deadline: it must be
                # refused at admission without charging anything.
                deadline = Deadline.after(0.0)
            report.ops += 1
            with active_plan(plan):
                try:
                    answer = service.measure(
                        "chaos",
                        query,
                        epsilon,
                        timeout=_LIVENESS_TIMEOUT,
                        deadline=deadline,
                    )
                except TimeoutError:
                    report.failed += 1
                    accounting.record_failure(query, epsilon)
                    report.violations.append(
                        f"liveness: step {step} ({query}, ε={epsilon}) did not "
                        f"resolve within {_LIVENESS_TIMEOUT:g}s — stuck "
                        f"scheduler or pool"
                    )
                    break
                except ReproError as exc:
                    code = getattr(exc, "code", None)
                    if code in _NO_CHARGE_CODES:
                        report.refused += 1
                        if deadline is not None and code != "deadline_exceeded":
                            report.notes.append(
                                f"step {step}: expired deadline surfaced as "
                                f"{code} (expected deadline_exceeded)"
                            )
                    else:
                        report.failed += 1
                        accounting.record_failure(query, epsilon)
                    continue
            if deadline is not None:
                report.violations.append(
                    f"deadline: step {step} ({query}, ε={epsilon}) was "
                    f"admitted despite an already-expired deadline"
                )
            key = (query, epsilon)
            values = list(answer.result.items())
            if key in accounting.answers:
                report.cached_hits += 1
                if values != accounting.answers[key]:
                    report.violations.append(
                        f"replay: step {step} ({query}, ε={epsilon}) returned "
                        f"different values than the acknowledged release"
                    )
                if answer.charged:
                    report.violations.append(
                        f"phantom ε: step {step} re-charged the already "
                        f"released ({query}, ε={epsilon})"
                    )
            else:
                accounting.answers[key] = values
                report.acked += 1
            accounting.record_ack(query, epsilon, answer.charged)
            if verbose:
                print(
                    f"chaos step {step}: {query} ε={epsilon} "
                    f"charged={answer.charged} cached={answer.cached} "
                    f"faults={plan.stats()}",
                    file=sys.stderr,
                )

        service.shutdown()
        service = None

        # Reopen: the WAL replay must drop unresolved intents, keep every
        # committed charge, and warm the answer cache from persisted
        # releases.
        reopened = MeasurementService(workers=2, ledger_path=ledger)
        service = reopened
        budget = reopened.session("chaos").budget_report()
        accounting.check_bounds(
            _spent_by_source(budget), report, "after ledger replay"
        )
        for (query, epsilon), values in accounting.answers.items():
            answer = reopened.measure(
                "chaos", query, epsilon, timeout=_LIVENESS_TIMEOUT
            )
            if list(answer.result.items()) != values:
                report.violations.append(
                    f"replay: ({query}, ε={epsilon}) not bit-identical after "
                    f"ledger reopen"
                )
            if answer.charged:
                report.violations.append(
                    f"phantom ε: replay of ({query}, ε={epsilon}) charged "
                    f"again after ledger reopen"
                )
        budget_after = reopened.session("chaos").budget_report()
        if _spent_by_source(budget_after) != _spent_by_source(budget):
            report.violations.append(
                "phantom ε: replaying acknowledged answers changed the "
                "durable spend"
            )
        reopened.shutdown()
        service = None
    finally:
        if service is not None:
            try:
                service.shutdown()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(tmpdir, ignore_errors=True)

    leaked = _shm_segments() - shm_before
    if leaked:
        report.violations.append(
            f"shm: {len(leaked)} orphaned /dev/shm segment(s) after "
            f"shutdown: {sorted(leaked)}"
        )
    return report


# ----------------------------------------------------------------------
# Subprocess kill-cycle mode
# ----------------------------------------------------------------------
def _spawn_serve(
    ledger: str, workers: int, faults: str | None
) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve`` in its own process group; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path
        for path in [
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env.get("PYTHONPATH", ""),
        ]
        if path
    )
    if faults:
        env[ENV_VAR] = faults
    else:
        env.pop(ENV_VAR, None)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--ledger",
            ledger,
            "--workers",
            str(workers),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        start_new_session=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if "http://" not in line:
        raise RuntimeError(f"repro serve failed to start: {line!r}")
    url = "http://" + line.split("http://", 1)[1].split()[0].rstrip("/),")
    return proc, url


def _kill_group(proc: subprocess.Popen) -> None:
    """SIGKILL the serve process and every forked worker in its group."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover - defensive
        pass


def _subprocess_faults(rng: random.Random, cycle_seed: int) -> str:
    """A randomized ``REPRO_FAULTS`` value for one serve incarnation.

    May include a ``kill`` inside the WAL charge window — the sharpest
    crash-consistency probe there is — plus transient WAL failures and a
    dropped HTTP response (charge committed, ack lost)."""
    rules = []
    if rng.random() < 0.5:
        point = rng.choice(["wal.intent_commit", "wal.pre_commit"])
        rules.append(
            FaultRule(point, "kill", after=rng.randint(4, 10), every=1, limit=1)
        )
    if rng.random() < 0.6:
        point = rng.choice(["wal.intent_commit", "wal.pre_commit"])
        rules.append(
            FaultRule(
                point, "fail", after=rng.randint(1, 3), every=rng.randint(2, 4),
                limit=rng.randint(1, 3),
            )
        )
    if rng.random() < 0.5:
        rules.append(
            FaultRule(
                "http.write", "fail", after=rng.randint(2, 5),
                every=rng.randint(3, 5), limit=rng.randint(1, 2),
            )
        )
    return FaultPlan(seed=cycle_seed, rules=rules).to_env()


def _run_subprocess(
    seed: int, steps: int, workers: int, verbose: bool
) -> ChaosReport:
    from urllib.error import URLError

    from ..service.http import ServiceClient
    from ..service.registry import default_query_builders

    report = ChaosReport(
        seed=seed, steps=steps, mode=f"subprocess[workers={workers}]"
    )
    rng = random.Random(seed)
    shm_before = _shm_segments()
    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-")
    ledger = os.path.join(tmpdir, "chaos-ledger.db")

    # Unit ε costs are data-independent: derive them from a throwaway
    # session over an empty dataset.
    from ..core import PrivacySession

    throwaway = PrivacySession()
    empty = throwaway.protect("edges", [])
    builders = default_query_builders()
    unit_costs = {
        query: builders[query](empty).privacy_cost(1.0) for query in _QUERIES
    }
    accounting = _Accounting(unit_costs)

    connection_errors = (URLError, ConnectionError, TimeoutError, OSError)
    cycles = max(2, min(4, steps // 10))
    per_cycle = -(-steps // cycles)
    proc = None
    try:
        edges = [list(edge) for edge in _chaos_edges()]
        done = 0
        for cycle in range(cycles):
            faults = _subprocess_faults(rng, cycle_seed=seed * 7919 + cycle)
            proc, url = _spawn_serve(ledger, workers, faults)
            if cycle > 0:
                report.restarts += 1
            client = ServiceClient(url, timeout=_LIVENESS_TIMEOUT)
            if cycle == 0:
                from ..exceptions import SessionExistsError

                for attempt in range(5):
                    try:
                        client.create_session(
                            "chaos", edges, total_epsilon=1e9, seed=seed
                        )
                        break
                    except SessionExistsError:
                        break
                    except connection_errors:
                        if attempt == 4:
                            raise
                        time.sleep(0.2)
            server_alive = True
            while server_alive and done < min(steps, (cycle + 1) * per_cycle):
                query = rng.choice(_QUERIES)
                epsilon = rng.choice(_EPSILONS)
                report.ops += 1
                done += 1
                start = time.monotonic()
                while True:
                    try:
                        payload = client.measure("chaos", query, epsilon)
                    except connection_errors:
                        # The serve fleet died (kill schedule fired) or the
                        # response was dropped after the work was done: the
                        # outcome of this attempt is unknown — bound it as a
                        # possible single charge and move to the next cycle.
                        report.failed += 1
                        accounting.record_failure(query, epsilon)
                        if proc.poll() is not None:
                            server_alive = False
                            break
                        if time.monotonic() - start > _LIVENESS_TIMEOUT:
                            report.violations.append(
                                f"liveness: op {done} ({query}, ε={epsilon}) "
                                f"kept failing for {_LIVENESS_TIMEOUT:g}s "
                                f"while the server stayed up"
                            )
                            server_alive = False
                            break
                        time.sleep(0.05)
                        continue
                    except ReproError as exc:
                        code = getattr(exc, "code", None)
                        if code in _NO_CHARGE_CODES:
                            report.refused += 1
                        else:
                            report.failed += 1
                            accounting.record_failure(query, epsilon)
                        break
                    key = (query, epsilon)
                    values = payload["values"]
                    if key in accounting.answers:
                        report.cached_hits += 1
                        if values != accounting.answers[key]:
                            report.violations.append(
                                f"replay: op {done} ({query}, ε={epsilon}) "
                                f"differs from the acknowledged release"
                            )
                        if payload["charged"]:
                            report.violations.append(
                                f"phantom ε: op {done} re-charged the "
                                f"released ({query}, ε={epsilon})"
                            )
                    else:
                        accounting.answers[key] = values
                        report.acked += 1
                    accounting.record_ack(query, epsilon, payload["charged"])
                    break
                if verbose and done % 10 == 0:
                    print(
                        f"chaos cycle {cycle}: {done}/{steps} ops",
                        file=sys.stderr,
                    )
            _kill_group(proc)
            proc = None

        # Final incarnation, faults off: replay + accounting verification.
        proc, url = _spawn_serve(ledger, workers, faults=None)
        report.restarts += 1
        client = ServiceClient(url, timeout=_LIVENESS_TIMEOUT)
        budget = client.budget("chaos")
        accounting.check_bounds(
            _spent_by_source(budget), report, "after kill-cycle recovery"
        )
        for (query, epsilon), values in accounting.answers.items():
            payload = client.measure("chaos", query, epsilon)
            if payload["values"] != values:
                report.violations.append(
                    f"replay: ({query}, ε={epsilon}) not bit-identical after "
                    f"crash recovery"
                )
            if payload["charged"]:
                report.violations.append(
                    f"phantom ε: replay of ({query}, ε={epsilon}) charged "
                    f"again after crash recovery"
                )
        budget_after = client.budget("chaos")
        if _spent_by_source(budget_after) != _spent_by_source(budget):
            report.violations.append(
                "phantom ε: replaying acknowledged answers changed the "
                "durable spend"
            )
        # Graceful shutdown this time: SIGTERM drains and snapshots.
        try:
            os.killpg(proc.pid, signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            pass
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            _kill_group(proc)
            report.violations.append(
                "liveness: graceful shutdown (SIGTERM) did not complete "
                "within 30s"
            )
        proc = None
    finally:
        if proc is not None:
            _kill_group(proc)
        shutil.rmtree(tmpdir, ignore_errors=True)

    leaked = _shm_segments() - shm_before
    if leaked:
        report.violations.append(
            f"shm: {len(leaked)} orphaned /dev/shm segment(s) after "
            f"shutdown: {sorted(leaked)}"
        )
    return report


# ----------------------------------------------------------------------
def run_chaos(
    seed: int = 0,
    steps: int = 50,
    workers: int = 1,
    executor: str = "eager",
    verbose: bool = False,
) -> ChaosReport:
    """Run one chaos campaign and return its :class:`ChaosReport`.

    ``workers >= 2`` selects the subprocess kill-cycle mode (a real
    ``repro serve --workers N`` fleet, SIGKILLed between cycles); otherwise
    the service is driven in-process with per-step fault schedules.
    ``executor`` applies to the in-process session (``"sharded"`` exercises
    the pool/shm fault points and the inline degrade path).
    """
    if steps < 1:
        raise ValueError("chaos needs at least 1 step")
    if workers >= 2:
        return _run_subprocess(seed, steps, workers, verbose)
    return _run_inprocess(seed, steps, executor, verbose)
