"""A small undirected simple-graph type used throughout the reproduction.

The protected inputs to every graph analysis in the paper are *edge sets*: the
dataset ``edges`` contains each directed edge ``(a, b)`` with weight 1.0, and
symmetric graphs carry both ``(a, b)`` and ``(b, a)``.  :class:`Graph` is the
in-memory representation the rest of the library builds those edge records
from, and the state the Metropolis–Hastings random walk mutates.

Only the operations the platform needs are implemented — adjacency queries,
degree bookkeeping, edge swaps, conversion to/from edge records — with the
heavier statistics (triangles, assortativity, joint degree distribution)
living in :mod:`repro.graph.statistics`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..exceptions import GraphError

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph (no self-loops, no parallel edges)."""

    def __init__(self, edges: Iterable[tuple[Any, Any]] | None = None) -> None:
        self._adjacency: dict[Any, set] = {}
        self._edge_count = 0
        if edges is not None:
            for a, b in edges:
                self.add_edge(a, b)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Any, Any]]) -> "Graph":
        """Build a graph from an iterable of (possibly repeated) edges."""
        return cls(edges)

    @classmethod
    def from_edge_records(cls, records: Iterable[tuple[Any, Any]]) -> "Graph":
        """Build a graph from directed edge records (both directions present).

        This is the inverse of :meth:`to_edge_records`: duplicate and reversed
        records collapse onto a single undirected edge.
        """
        return cls(records)

    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        clone = Graph()
        clone._adjacency = {node: set(neighbors) for node, neighbors in self._adjacency.items()}
        clone._edge_count = self._edge_count
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Any) -> None:
        """Ensure ``node`` exists (possibly with degree zero)."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, a: Any, b: Any) -> bool:
        """Add the undirected edge ``{a, b}``; returns False if it existed.

        Self-loops are rejected because none of the paper's analyses allow
        them (length-two cycles are explicitly filtered out of path queries).
        """
        if a == b:
            raise GraphError(f"self-loops are not allowed (node {a!r})")
        self.add_node(a)
        self.add_node(b)
        if b in self._adjacency[a]:
            return False
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._edge_count += 1
        return True

    def remove_edge(self, a: Any, b: Any) -> None:
        """Remove the undirected edge ``{a, b}``; raises if absent."""
        if not self.has_edge(a, b):
            raise GraphError(f"edge ({a!r}, {b!r}) is not in the graph")
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        self._edge_count -= 1

    def swap_edges(self, a: Any, b: Any, c: Any, d: Any) -> None:
        """Replace edges ``(a, b)`` and ``(c, d)`` by ``(a, d)`` and ``(c, b)``.

        This is the degree-preserving move used by the MCMC random walk
        (Section 5.1).  The caller is responsible for checking
        :meth:`can_swap` first; invalid swaps raise :class:`GraphError` and
        leave the graph unchanged.
        """
        if not self.can_swap(a, b, c, d):
            raise GraphError(f"cannot swap ({a!r},{b!r}) and ({c!r},{d!r})")
        self.remove_edge(a, b)
        self.remove_edge(c, d)
        self.add_edge(a, d)
        self.add_edge(c, b)

    def can_swap(self, a: Any, b: Any, c: Any, d: Any) -> bool:
        """True if swapping ``(a,b),(c,d) -> (a,d),(c,b)`` keeps the graph simple."""
        if len({a, b, c, d}) != 4:
            return False
        if not (self.has_edge(a, b) and self.has_edge(c, d)):
            return False
        if self.has_edge(a, d) or self.has_edge(c, b):
            return False
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Any) -> bool:
        """True if ``node`` is in the graph."""
        return node in self._adjacency

    def has_edge(self, a: Any, b: Any) -> bool:
        """True if the undirected edge ``{a, b}`` is present."""
        return a in self._adjacency and b in self._adjacency[a]

    def nodes(self) -> list:
        """All nodes (including isolated ones)."""
        return list(self._adjacency)

    def neighbors(self, node: Any) -> set:
        """The neighbour set of ``node``."""
        try:
            return set(self._adjacency[node])
        except KeyError as exc:
            raise GraphError(f"node {node!r} is not in the graph") from exc

    def degree(self, node: Any) -> int:
        """Degree of ``node`` (zero if absent)."""
        return len(self._adjacency.get(node, ()))

    def degrees(self) -> dict[Any, int]:
        """Mapping of every node to its degree."""
        return {node: len(neighbors) for node, neighbors in self._adjacency.items()}

    def max_degree(self) -> int:
        """The maximum degree, or zero for an empty graph."""
        if not self._adjacency:
            return 0
        return max(len(neighbors) for neighbors in self._adjacency.values())

    def number_of_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def edges(self) -> Iterator[tuple[Any, Any]]:
        """Iterate over each undirected edge exactly once."""
        seen = set()
        for node, neighbors in self._adjacency.items():
            for other in neighbors:
                key = (node, other) if repr(node) <= repr(other) else (other, node)
                if key not in seen:
                    seen.add(key)
                    yield key

    def edge_list(self) -> list[tuple[Any, Any]]:
        """All undirected edges, in a canonical (repr-sorted) order.

        Iterating the adjacency sets directly would expose their internal
        order — an artifact of insertion history that does not survive
        pickling, so a random walk seeded from it diverges between a
        coordinator and a worker process holding the *same* graph.  Sorting
        by ``repr`` makes the list a pure function of the graph's content —
        the same canonicalisation measurement noise applies to records
        (:mod:`repro.core.aggregation`) — so seeded trajectories are
        identical across threads, processes and pickle round-trips.
        """
        return sorted(self.edges(), key=repr)

    def degree_sum_of_squares(self) -> int:
        """``Σ_v d_v²`` — the scaling quantity of Figure 6."""
        return sum(len(neighbors) ** 2 for neighbors in self._adjacency.values())

    # ------------------------------------------------------------------
    # Conversion to wPINQ edge records
    # ------------------------------------------------------------------
    def to_edge_records(self, symmetric: bool = True) -> list[tuple[Any, Any]]:
        """The graph as directed edge records, the paper's protected input.

        With ``symmetric=True`` (the form used in every experiment of
        Section 5) both ``(a, b)`` and ``(b, a)`` appear, so the dataset size
        is ``2·|E|``.
        """
        records: list[tuple[Any, Any]] = []
        for a, b in self.edges():
            records.append((a, b))
            if symmetric:
                records.append((b, a))
        return records

    def __repr__(self) -> str:
        return (
            f"Graph(nodes={self.number_of_nodes()}, edges={self.number_of_edges()}, "
            f"dmax={self.max_degree()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result
