"""Exact graph statistics.

These are the *ground truth* quantities of the paper's evaluation: the number
of triangles Δ, the assortativity coefficient r, degree distributions and
their derivatives (CCDF, joint degree distribution), counts of triangles and
squares broken down by the degrees of their corners, and the Σ d² scaling
quantity.  They are computed exactly, without privacy, and are used (a) to
populate Table 1/Table 3 style summaries, (b) to validate the weights produced
by the wPINQ queries, and (c) to monitor the progress of MCMC synthesis.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Iterator

from .graph import Graph

__all__ = [
    "degree_histogram",
    "degree_sequence",
    "degree_ccdf",
    "joint_degree_distribution",
    "iter_triangles",
    "triangle_count",
    "triangles_by_degree",
    "square_count",
    "squares_by_degree",
    "assortativity",
    "average_clustering",
    "summarize",
]


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map each degree value to the number of nodes with that degree."""
    histogram: Counter = Counter(graph.degrees().values())
    return dict(histogram)


def degree_sequence(graph: Graph) -> list[int]:
    """The non-increasing sequence of node degrees (the paper's convention)."""
    return sorted(graph.degrees().values(), reverse=True)


def degree_ccdf(graph: Graph) -> list[int]:
    """``ccdf[i]`` = number of nodes with degree strictly greater than ``i``.

    This is the functional inverse of the non-increasing degree sequence
    (Section 3.1): swapping the x- and y-axes of one yields the other.  The
    list extends up to the maximum degree (exclusive), i.e. it stops at the
    last non-zero entry.
    """
    degrees = list(graph.degrees().values())
    max_degree = max(degrees, default=0)
    return [sum(1 for d in degrees if d > i) for i in range(max_degree)]


def joint_degree_distribution(graph: Graph) -> dict[tuple[int, int], int]:
    """Number of edges whose endpoints have degrees ``(d_a, d_b)``.

    Degree pairs are reported with ``d_a <= d_b`` so each undirected edge is
    counted exactly once, matching Sala et al.'s formulation.
    """
    degrees = graph.degrees()
    jdd: Counter = Counter()
    for a, b in graph.edges():
        da, db = degrees[a], degrees[b]
        jdd[(min(da, db), max(da, db))] += 1
    return dict(jdd)


def iter_triangles(graph: Graph) -> Iterator[tuple[Any, Any, Any]]:
    """Yield each triangle exactly once as a canonically ordered triple."""
    order = {node: index for index, node in enumerate(sorted(graph.nodes(), key=repr))}
    for a in graph.nodes():
        neighbors_a = [n for n in graph.neighbors(a) if order[n] > order[a]]
        neighbors_a.sort(key=lambda n: order[n])
        for i, b in enumerate(neighbors_a):
            neighbors_b = graph.neighbors(b)
            for c in neighbors_a[i + 1 :]:
                if c in neighbors_b:
                    yield (a, b, c)


def triangle_count(graph: Graph) -> int:
    """The total number of triangles Δ."""
    return sum(1 for _ in iter_triangles(graph))


def triangles_by_degree(
    graph: Graph, bucket: int = 1
) -> dict[tuple[int, int, int], int]:
    """Count triangles keyed by the sorted degrees of their corners.

    ``bucket > 1`` applies the bucketing remedy of Section 5.2: each degree is
    replaced by ``degree // bucket`` before sorting, mirroring the
    ``l.Count()/k`` modification of the TbD query.
    """
    if bucket < 1:
        raise ValueError("bucket must be a positive integer")
    degrees = graph.degrees()
    counts: Counter = Counter()
    for a, b, c in iter_triangles(graph):
        triple = tuple(sorted(degrees[v] // bucket for v in (a, b, c)))
        counts[triple] += 1
    return dict(counts)


def _common_neighbour_counts(graph: Graph) -> Counter:
    """For every unordered node pair, the number of common neighbours.

    Computed by iterating over wedges (length-two paths), so the cost is
    ``Σ_v C(d_v, 2)`` rather than quadratic in the number of nodes.  Only
    pairs with at least one common neighbour appear in the result.
    """
    order = {node: index for index, node in enumerate(sorted(graph.nodes(), key=repr))}
    counts: Counter = Counter()
    for center in graph.nodes():
        neighbors = sorted(graph.neighbors(center), key=lambda n: order[n])
        for i, a in enumerate(neighbors):
            for c in neighbors[i + 1 :]:
                counts[(a, c)] += 1
    return counts


def square_count(graph: Graph) -> int:
    """The number of 4-cycles (squares) in the graph.

    Every unordered node pair with ``c`` common neighbours is the pair of
    *opposite* corners of ``C(c, 2)`` squares; summing over all pairs counts
    every square exactly twice (once per opposite-corner pair), so the sum is
    halved.
    """
    total = 0
    for common in _common_neighbour_counts(graph).values():
        total += common * (common - 1) // 2
    return total // 2


def squares_by_degree(graph: Graph) -> dict[tuple[int, int, int, int], int]:
    """Count 4-cycles keyed by the sorted degrees of their corners.

    Each square ``a-b-c-d-a`` has two opposite-corner pairs ``{a, c}`` and
    ``{b, d}``; the square is attributed to the lexicographically smaller pair
    so it is counted exactly once.  Intended for the modest graph sizes used
    to validate the SbD query; the total equals :func:`square_count`.
    """
    degrees = graph.degrees()
    order = {node: index for index, node in enumerate(sorted(graph.nodes(), key=repr))}
    counts: Counter = Counter()
    for (a, c) in _common_neighbour_counts(graph):
        common = sorted(graph.neighbors(a) & graph.neighbors(c), key=lambda n: order[n])
        pair_ac = (order[a], order[c])
        for i, b in enumerate(common):
            for d in common[i + 1 :]:
                pair_bd = (min(order[b], order[d]), max(order[b], order[d]))
                if pair_ac < pair_bd:
                    quad = tuple(sorted(degrees[v] for v in (a, b, c, d)))
                    counts[quad] += 1
    return dict(counts)


def assortativity(graph: Graph) -> float:
    """Degree assortativity coefficient r (Pearson correlation over edges).

    Computed over the directed edge set (both orientations of every edge),
    which is the standard Newman definition.  Returns 0.0 for graphs where the
    correlation is undefined (e.g. regular graphs, empty graphs).
    """
    degrees = graph.degrees()
    xs: list[float] = []
    ys: list[float] = []
    for a, b in graph.edges():
        xs.extend((degrees[a], degrees[b]))
        ys.extend((degrees[b], degrees[a]))
    if not xs:
        return 0.0
    n = float(len(xs))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / n
    var_x = sum((x - mean_x) ** 2 for x in xs) / n
    var_y = sum((y - mean_y) ** 2 for y in ys) / n
    denominator = math.sqrt(var_x * var_y)
    if denominator <= 1e-12:
        return 0.0
    return cov / denominator


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all nodes."""
    nodes = graph.nodes()
    if not nodes:
        return 0.0
    total = 0.0
    for node in nodes:
        neighbors = list(graph.neighbors(node))
        k = len(neighbors)
        if k < 2:
            continue
        links = 0
        for i, u in enumerate(neighbors):
            links += sum(1 for v in neighbors[i + 1 :] if graph.has_edge(u, v))
        total += 2.0 * links / (k * (k - 1))
    return total / len(nodes)


def summarize(graph: Graph) -> dict[str, float]:
    """The Table 1 / Table 3 row for a graph.

    Returns nodes, edges, maximum degree, triangle count Δ, assortativity r
    and Σ d² — every column the paper reports for its evaluation graphs.
    """
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "dmax": graph.max_degree(),
        "triangles": triangle_count(graph),
        "assortativity": assortativity(graph),
        "degree_sum_of_squares": graph.degree_sum_of_squares(),
    }
