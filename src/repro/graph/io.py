"""Reading and writing edge-list files.

The paper's datasets (SNAP collaboration graphs, Epinions, Facebook100) ship
as whitespace-separated edge lists, one edge per line, with ``#`` comment
lines.  These helpers read and write that format so users with access to the
original files can run the full pipeline on the real data, while the offline
reproduction falls back to the synthetic stand-ins in
:mod:`repro.graph.datasets`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..exceptions import GraphError
from .graph import Graph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_lines"]


def parse_edge_lines(lines: Iterable[str]) -> Graph:
    """Parse an iterable of edge-list lines into a :class:`Graph`.

    Lines starting with ``#`` or ``%`` and blank lines are ignored.  Node
    identifiers are kept as integers when possible and strings otherwise.
    Self-loops (present in some raw SNAP exports) are silently skipped, as the
    paper's analyses operate on simple graphs.
    """
    graph = Graph()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected two columns, got {line!r}")
        a, b = _coerce(parts[0]), _coerce(parts[1])
        if a == b:
            continue
        graph.add_edge(a, b)
    return graph


def read_edge_list(path: str | Path) -> Graph:
    """Read a whitespace-separated edge list file into a :class:`Graph`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_edge_lines(handle)


def write_edge_list(graph: Graph, path: str | Path, header: str = "") -> None:
    """Write a graph as a ``#``-commented, tab-separated edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.number_of_nodes()} edges: {graph.number_of_edges()}\n")
        for a, b in sorted(graph.edges(), key=repr):
            handle.write(f"{a}\t{b}\n")


def _coerce(token: str):
    """Interpret a node token as an int when possible, else keep the string."""
    try:
        return int(token)
    except ValueError:
        return token
