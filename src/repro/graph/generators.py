"""Random graph generators.

The paper's evaluation needs several kinds of graphs:

* **Barabási–Albert graphs with a tunable "dynamical exponent" β**
  (Table 3 / Figure 6).  Varying β changes how heavy the degree tail is and
  therefore Σ d², the quantity that drives the incremental engine's memory
  and per-step cost.
* **Degree-preserving random twins** ("Random(GrQc)" etc. in Table 1): random
  graphs with exactly the degree distribution of a given graph but none of
  its clustering, obtained by edge-swap randomisation.
* **Seed graphs for MCMC** (Section 5.1, Phase 1): a simple graph matching a
  (noisy, post-processed) degree sequence, built with a Havel–Hakimi style
  construction followed by randomising swaps.
* **Stand-ins for the paper's real-world datasets** (see
  :mod:`repro.graph.datasets`): a clique-overlap "collaboration network"
  generator and a triadic-closure "social network" generator that reproduce
  the qualitative features (heavy tails, many triangles, positive or
  near-zero assortativity) the experiments depend on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import GraphError
from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "graph_from_degree_sequence",
    "degree_preserving_rewire",
    "random_twin",
    "collaboration_graph",
    "social_graph",
]


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def erdos_renyi(nodes: int, edges: int, rng: np.random.Generator | int | None = None) -> Graph:
    """A G(n, m) random graph with ``nodes`` nodes and ``edges`` distinct edges."""
    if nodes < 2:
        raise GraphError("erdos_renyi needs at least two nodes")
    max_edges = nodes * (nodes - 1) // 2
    if edges > max_edges:
        raise GraphError(f"cannot place {edges} edges on {nodes} nodes (max {max_edges})")
    rng = _as_rng(rng)
    graph = Graph()
    for node in range(nodes):
        graph.add_node(node)
    while graph.number_of_edges() < edges:
        a = int(rng.integers(0, nodes))
        b = int(rng.integers(0, nodes))
        if a != b:
            graph.add_edge(a, b)
    return graph


def barabasi_albert(
    nodes: int,
    edges_per_node: int,
    beta: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Preferential attachment with a tunable dynamical exponent β.

    β = 0.5 is classic (linear) Barabási–Albert growth, where a node arriving
    at time ``t_i`` grows as ``(t/t_i)^0.5``.  Larger β corresponds to
    super-linear attachment and produces heavier tails / larger maximum
    degrees, which is exactly how the paper scales the difficulty of its
    Figure 6 graphs.  We realise β through attachment probabilities
    proportional to ``degree^θ`` with ``θ = 2 − 1/(2β)`` (θ = 1 at β = 0.5).

    Parameters
    ----------
    nodes:
        Total number of nodes.
    edges_per_node:
        Number of edges each arriving node creates (the paper's graphs have
        2M edges over 100K nodes, i.e. 20 edges per node).
    beta:
        Dynamical exponent in (0, 1).
    """
    if nodes <= edges_per_node:
        raise GraphError("nodes must exceed edges_per_node")
    if not 0.0 < beta < 1.0:
        raise GraphError("beta must lie strictly between 0 and 1")
    rng = _as_rng(rng)
    theta = 2.0 - 1.0 / (2.0 * beta)
    graph = Graph()
    # Start from a small clique so the first arrivals have targets to attach to.
    core = edges_per_node + 1
    for a in range(core):
        for b in range(a + 1, core):
            graph.add_edge(a, b)
    degrees = np.zeros(nodes, dtype=float)
    for node in range(core):
        degrees[node] = graph.degree(node)
    for node in range(core, nodes):
        existing = node
        weights = np.power(np.maximum(degrees[:existing], 1e-9), theta)
        probabilities = weights / weights.sum()
        target_count = min(edges_per_node, existing)
        targets = rng.choice(existing, size=target_count, replace=False, p=probabilities)
        for target in targets:
            if graph.add_edge(node, int(target)):
                degrees[node] += 1
                degrees[int(target)] += 1
    return graph


def graph_from_degree_sequence(
    degrees: Sequence[int],
    rng: np.random.Generator | int | None = None,
    randomize_swaps: int | None = None,
) -> Graph:
    """A simple graph whose degree sequence approximates ``degrees``.

    The construction is Havel–Hakimi (connect the highest-degree unfinished
    node to the next-highest ones), which realises any graphical sequence
    exactly, followed by ``randomize_swaps`` random degree-preserving edge
    swaps (default ``10×`` the number of edges) so the result is not the
    deterministic Havel–Hakimi graph but a roughly uniform sample with that
    degree sequence.  Non-graphical sequences are realised as closely as
    possible: leftover stubs are simply dropped, which matches the paper's
    Phase 1 where the target sequence comes from noisy measurements and need
    not be exactly graphical.
    """
    rng = _as_rng(rng)
    remaining = [(int(max(0, d)), node) for node, d in enumerate(degrees)]
    graph = Graph()
    for _, node in remaining:
        graph.add_node(node)
    remaining = [entry for entry in remaining if entry[0] > 0]
    while remaining:
        remaining.sort(reverse=True)
        demand, node = remaining.pop(0)
        if demand > len(remaining):
            demand = len(remaining)
        for index in range(demand):
            other_demand, other = remaining[index]
            graph.add_edge(node, other)
            remaining[index] = (other_demand - 1, other)
        remaining = [entry for entry in remaining if entry[0] > 0]
    swaps = randomize_swaps
    if swaps is None:
        swaps = 10 * graph.number_of_edges()
    _random_swaps(graph, swaps, rng)
    return graph


def _random_swaps(graph: Graph, attempts: int, rng: np.random.Generator) -> int:
    """Attempt ``attempts`` random degree-preserving edge swaps; return successes."""
    edges = graph.edge_list()
    if len(edges) < 2:
        return 0
    performed = 0
    for _ in range(attempts):
        i = int(rng.integers(0, len(edges)))
        j = int(rng.integers(0, len(edges)))
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        # Randomly orient the second edge so both pairings are reachable.
        if rng.random() < 0.5:
            c, d = d, c
        if graph.can_swap(a, b, c, d):
            graph.swap_edges(a, b, c, d)
            edges[i] = (a, d)
            edges[j] = (c, b)
            performed += 1
    return performed


def degree_preserving_rewire(
    graph: Graph,
    rng: np.random.Generator | int | None = None,
    swap_multiplier: int = 20,
) -> Graph:
    """Randomise a graph while keeping every node's degree fixed.

    Performs ``swap_multiplier × |E|`` random edge swaps on a copy of the
    input.  This is how the paper's "Random(X)" sanity-check graphs are
    obtained: same degree distribution as X, but triangles and assortativity
    destroyed.
    """
    rng = _as_rng(rng)
    twin = graph.copy()
    _random_swaps(twin, swap_multiplier * twin.number_of_edges(), rng)
    return twin


def random_twin(graph: Graph, rng: np.random.Generator | int | None = None) -> Graph:
    """Alias for :func:`degree_preserving_rewire` matching the paper's naming."""
    return degree_preserving_rewire(graph, rng=rng)


def collaboration_graph(
    nodes: int,
    papers: int,
    mean_authors: float = 3.0,
    max_authors: int = 12,
    activity_exponent: float = 0.5,
    locality: float = 0.03,
    repeat_collaborator: float = 0.3,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """A clique-overlap model of co-authorship networks.

    Nodes are authors ordered by decreasing intrinsic activity (a power law
    with exponent ``activity_exponent`` over activity rank).  Each "paper"

    1. draws a heavy-tailed author-count,
    2. picks a *lead* author by activity,
    3. fills the author list with either repeat collaborators (neighbours of
       the lead, with probability ``repeat_collaborator``) or authors whose
       activity rank is close to the lead's (a Gaussian of width
       ``locality × nodes`` over ranks), and
    4. connects all authors of the paper into a clique.

    Overlapping cliques give the high triangle counts, and rank-locality in
    co-author choice gives the strongly positive degree assortativity, that
    characterise the CA-GrQc / CA-HepPh / CA-HepTh collaboration graphs in
    Table 1 — and that their degree-preserving randomisations destroy.
    """
    rng = _as_rng(rng)
    graph = Graph()
    for node in range(nodes):
        graph.add_node(node)
    ranks = np.arange(1, nodes + 1, dtype=float)
    activity = np.power(ranks, -float(activity_exponent))
    activity /= activity.sum()
    rank_spread = max(1.0, locality * nodes)
    for _ in range(papers):
        size = 2 + int(rng.poisson(max(mean_authors - 2.0, 0.1)))
        size = min(size, max_authors, nodes)
        lead = int(rng.choice(nodes, p=activity))
        authors: set[int] = {lead}
        attempts = 0
        while len(authors) < size and attempts < 20 * size:
            attempts += 1
            neighbors = graph.neighbors(lead)
            if neighbors and rng.random() < repeat_collaborator:
                candidate = int(rng.choice(sorted(neighbors)))
            else:
                offset = int(round(rng.normal(0.0, rank_spread)))
                candidate = min(max(lead + offset, 0), nodes - 1)
            if candidate != lead:
                authors.add(candidate)
        author_list = sorted(authors)
        for i, a in enumerate(author_list):
            for b in author_list[i + 1 :]:
                graph.add_edge(a, b)
    return graph


def social_graph(
    nodes: int,
    edges_per_node: int,
    closure_probability: float = 0.3,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """A preferential-attachment graph with triadic closure.

    Arriving nodes attach preferentially (heavy-tailed degrees, near-zero or
    negative assortativity) and, with probability ``closure_probability``,
    connect to a *neighbour of a neighbour*, which creates triangles.  This
    mimics online social networks such as the Caltech Facebook graph and
    Epinions used in the paper's evaluation.
    """
    if nodes <= edges_per_node:
        raise GraphError("nodes must exceed edges_per_node")
    rng = _as_rng(rng)
    graph = Graph()
    core = edges_per_node + 1
    for a in range(core):
        for b in range(a + 1, core):
            graph.add_edge(a, b)
    degrees = np.zeros(nodes, dtype=float)
    for node in range(core):
        degrees[node] = graph.degree(node)
    for node in range(core, nodes):
        existing = node
        anchors: list[int] = []
        weights = degrees[:existing]
        probabilities = weights / weights.sum()
        first = int(rng.choice(existing, p=probabilities))
        if graph.add_edge(node, first):
            degrees[node] += 1
            degrees[first] += 1
        anchors.append(first)
        links = 1
        attempts = 0
        while links < min(edges_per_node, existing) and attempts < 10 * edges_per_node:
            attempts += 1
            if anchors and rng.random() < closure_probability:
                anchor = anchors[int(rng.integers(0, len(anchors)))]
                neighbors = list(graph.neighbors(anchor) - {node})
                if not neighbors:
                    continue
                target = neighbors[int(rng.integers(0, len(neighbors)))]
            else:
                target = int(rng.choice(existing, p=probabilities))
            if target == node:
                continue
            if graph.add_edge(node, target):
                degrees[node] += 1
                degrees[target] += 1
                anchors.append(target)
                links += 1
    return graph
