"""Graph substrate: data structures, statistics, generators and datasets."""

from .datasets import (
    PAPER_GRAPH_SPECS,
    PAPER_REPORTED_STATISTICS,
    GraphSpec,
    load_paper_graph,
    paper_graph_with_twin,
    paper_graphs,
)
from .generators import (
    barabasi_albert,
    collaboration_graph,
    degree_preserving_rewire,
    erdos_renyi,
    graph_from_degree_sequence,
    random_twin,
    social_graph,
)
from .graph import Graph
from .io import parse_edge_lines, read_edge_list, write_edge_list
from .statistics import (
    assortativity,
    average_clustering,
    degree_ccdf,
    degree_histogram,
    degree_sequence,
    iter_triangles,
    joint_degree_distribution,
    square_count,
    squares_by_degree,
    summarize,
    triangle_count,
    triangles_by_degree,
)

__all__ = [
    "Graph",
    "erdos_renyi",
    "barabasi_albert",
    "graph_from_degree_sequence",
    "degree_preserving_rewire",
    "random_twin",
    "collaboration_graph",
    "social_graph",
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "GraphSpec",
    "PAPER_GRAPH_SPECS",
    "PAPER_REPORTED_STATISTICS",
    "load_paper_graph",
    "paper_graphs",
    "paper_graph_with_twin",
    "degree_histogram",
    "degree_sequence",
    "degree_ccdf",
    "joint_degree_distribution",
    "iter_triangles",
    "triangle_count",
    "triangles_by_degree",
    "square_count",
    "squares_by_degree",
    "assortativity",
    "average_clustering",
    "summarize",
]
