"""Synthetic stand-ins for the paper's evaluation graphs.

The evaluation in Section 5 uses five real graphs (Table 1): the SNAP
collaboration networks CA-GrQc, CA-HepPh and CA-HepTh, the Caltech Facebook
network, and the Epinions trust graph, plus degree-preserving randomisations
of each ("Random(X)").  Those datasets cannot be downloaded in this offline
reproduction, so this module synthesises *stand-ins* that preserve the
properties the experiments rely on:

* heavy-tailed degree distributions with a comparable number of nodes/edges
  (scaled down by default so the full pipeline runs in CI),
* collaboration graphs with many triangles and strongly positive
  assortativity (clique-overlap model),
* social graphs with many triangles but near-zero assortativity
  (preferential attachment + triadic closure),
* random twins with the same degrees but few triangles (edge-swap rewiring).

Every stand-in is deterministic given its seed, and
:func:`paper_graphs` / :func:`paper_graph_with_twin` expose the same names
the paper uses so benchmark code reads like the original evaluation.  The
real-vs-stand-in statistics are recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import GraphError
from .generators import collaboration_graph, random_twin, social_graph
from .graph import Graph

__all__ = [
    "GraphSpec",
    "PAPER_GRAPH_SPECS",
    "PAPER_REPORTED_STATISTICS",
    "load_paper_graph",
    "paper_graphs",
    "paper_graph_with_twin",
]


@dataclass(frozen=True)
class GraphSpec:
    """Recipe for one stand-in graph.

    ``kind`` selects the generator ("collaboration" or "social").  For
    collaboration graphs ``interactions`` is the number of papers and
    ``mean_group``/``max_group`` the author-count distribution; for social
    graphs ``interactions`` is the number of edges per arriving node and
    ``closure`` the triadic-closure probability.  Node and interaction counts
    are full-scale values, multiplied by the ``scale`` argument of
    :func:`load_paper_graph` before generation.
    """

    name: str
    kind: str
    nodes: int
    interactions: int
    mean_group: float = 0.0
    max_group: int = 0
    activity_exponent: float = 0.5
    locality: float = 0.03
    repeat_collaborator: float = 0.3
    closure: float = 0.3
    seed: int = 0


#: Full-scale recipes chosen so that, at scale 1.0, node and edge counts are
#: comparable to the originals in Table 1.  The default scale used by the
#: benchmarks is considerably smaller (see ``repro.experiments.harness``).
PAPER_GRAPH_SPECS: dict[str, GraphSpec] = {
    "CA-GrQc": GraphSpec(
        name="CA-GrQc",
        kind="collaboration",
        nodes=5242,
        interactions=9500,
        mean_group=3.4,
        max_group=10,
        activity_exponent=0.45,
        locality=0.025,
        repeat_collaborator=0.35,
        seed=101,
    ),
    "CA-HepPh": GraphSpec(
        name="CA-HepPh",
        kind="collaboration",
        nodes=12008,
        interactions=22000,
        mean_group=5.0,
        max_group=25,
        activity_exponent=0.55,
        locality=0.02,
        repeat_collaborator=0.4,
        seed=102,
    ),
    "CA-HepTh": GraphSpec(
        name="CA-HepTh",
        kind="collaboration",
        nodes=9877,
        interactions=21000,
        mean_group=2.8,
        max_group=8,
        activity_exponent=0.45,
        locality=0.035,
        repeat_collaborator=0.25,
        seed=103,
    ),
    "Caltech": GraphSpec(
        name="Caltech",
        kind="social",
        nodes=769,
        interactions=43,  # edges per arriving node (average degree ~86)
        closure=0.6,
        seed=104,
    ),
    "Epinions": GraphSpec(
        name="Epinions",
        kind="social",
        nodes=75879,
        interactions=13,
        closure=0.25,
        seed=105,
    ),
}

#: The statistics the paper reports for the real datasets (Table 1), kept for
#: side-by-side comparison in EXPERIMENTS.md and in the Table 1 benchmark.
PAPER_REPORTED_STATISTICS: dict[str, dict[str, float]] = {
    "CA-GrQc": {"nodes": 5242, "edges": 28980, "dmax": 81, "triangles": 48260, "assortativity": 0.66},
    "CA-HepPh": {"nodes": 12008, "edges": 237010, "dmax": 491, "triangles": 3358499, "assortativity": 0.63},
    "CA-HepTh": {"nodes": 9877, "edges": 51971, "dmax": 65, "triangles": 28339, "assortativity": 0.27},
    "Caltech": {"nodes": 769, "edges": 33312, "dmax": 248, "triangles": 119563, "assortativity": -0.06},
    "Epinions": {"nodes": 75879, "edges": 1017674, "dmax": 3079, "triangles": 1624481, "assortativity": -0.01},
    "Random(CA-GrQc)": {"nodes": 5242, "edges": 28992, "dmax": 81, "triangles": 586, "assortativity": 0.00},
    "Random(CA-HepPh)": {"nodes": 11996, "edges": 237190, "dmax": 504, "triangles": 323867, "assortativity": 0.04},
    "Random(CA-HepTh)": {"nodes": 9870, "edges": 52056, "dmax": 66, "triangles": 322, "assortativity": 0.05},
    "Random(Caltech)": {"nodes": 771, "edges": 33368, "dmax": 238, "triangles": 50269, "assortativity": 0.17},
    "Random(Epinions)": {"nodes": 75882, "edges": 1018060, "dmax": 3085, "triangles": 1059864, "assortativity": 0.00},
}


def load_paper_graph(
    name: str,
    scale: float = 0.2,
    seed: int | None = None,
) -> Graph:
    """Generate the stand-in for one of the paper's graphs.

    Parameters
    ----------
    name:
        One of ``CA-GrQc``, ``CA-HepPh``, ``CA-HepTh``, ``Caltech``,
        ``Epinions`` (case sensitive, as written in the paper).
    scale:
        Linear scale factor on the number of nodes (and interactions).  The
        default 0.2 keeps even the largest stand-ins laptop-sized; the
        benchmark harness documents the scale it uses for each experiment.
    seed:
        Override the spec's deterministic seed.
    """
    try:
        spec = PAPER_GRAPH_SPECS[name]
    except KeyError as exc:
        raise GraphError(
            f"unknown paper graph {name!r}; available: {sorted(PAPER_GRAPH_SPECS)}"
        ) from exc
    if scale <= 0:
        raise GraphError("scale must be positive")
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    nodes = max(30, int(round(spec.nodes * scale)))
    if spec.kind == "collaboration":
        interactions = max(30, int(round(spec.interactions * scale)))
        return collaboration_graph(
            nodes=nodes,
            papers=interactions,
            mean_authors=spec.mean_group,
            max_authors=spec.max_group,
            activity_exponent=spec.activity_exponent,
            locality=spec.locality,
            repeat_collaborator=spec.repeat_collaborator,
            rng=rng,
        )
    if spec.kind == "social":
        # Scale edges-per-node along with the node count so the *relative*
        # density (and hence the triangle contrast against the random twin)
        # matches the full-size graph.
        edges_per_node = max(3, min(int(round(spec.interactions * scale)), nodes // 4))
        return social_graph(
            nodes=nodes,
            edges_per_node=edges_per_node,
            closure_probability=spec.closure,
            rng=rng,
        )
    raise GraphError(f"unknown generator kind {spec.kind!r}")  # pragma: no cover


def paper_graph_with_twin(
    name: str,
    scale: float = 0.2,
    seed: int | None = None,
) -> tuple[Graph, Graph]:
    """Return ``(stand-in, Random(stand-in))`` for one paper graph.

    The twin has the same degree sequence but its edges randomly rewired,
    reproducing the "Random(X)" rows of Table 1 that the MCMC experiments use
    as a no-signal sanity check.
    """
    graph = load_paper_graph(name, scale=scale, seed=seed)
    spec_seed = PAPER_GRAPH_SPECS[name].seed if seed is None else seed
    twin = random_twin(graph, rng=np.random.default_rng(spec_seed + 5000))
    return graph, twin


def paper_graphs(scale: float = 0.2, names: list[str] | None = None) -> dict[str, Graph]:
    """Generate stand-ins for several paper graphs at once."""
    names = list(PAPER_GRAPH_SPECS) if names is None else names
    return {name: load_paper_graph(name, scale=scale) for name in names}
