"""wPINQ: differentially private analysis of weighted datasets.

A from-scratch Python reproduction of

    Proserpio, Goldberg, McSherry.
    "Calibrating Data to Sensitivity in Private Data Analysis"
    (PVLDB 7(8), 2014)

The package is organised as follows:

``repro.core``
    Weighted datasets, stable transformations, the fluent wPINQ query
    language, Laplace aggregation and privacy-budget accounting — plus the
    unified execution layer: every measurement runs through an
    :class:`~repro.core.executor.Executor` (eager-memoising or incremental
    dataflow), and ``PrivacySession.measure`` batches many measurements with
    atomic budget charging and shared-sub-plan reuse.
``repro.dataflow``
    The incremental (view-maintenance style) query evaluation engine behind
    the ``"dataflow"`` executor backend; it makes MCMC over synthetic
    datasets fast and keeps compiled plans warm across measurements.
``repro.graph``
    Graph substrate: data structures, statistics, generators and the
    synthetic stand-ins for the paper's evaluation graphs.
``repro.analyses``
    The paper's graph queries: degree CCDF/sequence, joint degree
    distribution, triangles-by-degree, triangles-by-intersect,
    squares-by-degree and generic motif counting.
``repro.inference``
    Metropolis–Hastings probabilistic inference over synthetic graphs fit to
    released wPINQ measurements, including the full graph-synthesis workflow.
``repro.postprocess``
    Consistency post-processing (isotonic regression, joint CCDF/degree
    sequence path fitting).
``repro.baselines``
    Prior bespoke approaches the paper compares against (Hay et al. degree
    distributions, Sala et al. joint degree distribution, worst-case
    sensitivity triangle counting).
``repro.experiments``
    Shared harness used by the benchmark suite to regenerate the paper's
    tables and figures.
``repro.service``
    The interactive measurement service: multi-tenant session hosting,
    group-commit request batching, answer replay, an HTTP/JSON transport
    (``repro serve``) and fork-based multi-process workers.
``repro.persistence``
    Durability under the service: a write-ahead-logged sqlite ledger store
    with snapshot compaction and exact crash recovery, the ``DurableLedger``
    drop-in for ``BudgetLedger``, and per-tenant rate limiting / load
    shedding.
"""

from .core import (
    DataflowExecutor,
    EagerExecutor,
    Executor,
    LaplaceNoise,
    MeasurementRequest,
    MeasurementSet,
    NoisyCountResult,
    PrivacySession,
    Queryable,
    WeightedDataset,
)
from .exceptions import (
    BudgetExceededError,
    DataflowError,
    GraphError,
    InvalidEpsilonError,
    PlanError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "WeightedDataset",
    "PrivacySession",
    "Queryable",
    "Executor",
    "EagerExecutor",
    "DataflowExecutor",
    "MeasurementRequest",
    "MeasurementSet",
    "NoisyCountResult",
    "LaplaceNoise",
    "ReproError",
    "BudgetExceededError",
    "InvalidEpsilonError",
    "PlanError",
    "DataflowError",
    "GraphError",
    "__version__",
]
