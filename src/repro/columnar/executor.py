"""The vectorized execution backend and the size-based auto dispatcher.

:class:`VectorizedExecutor` implements the PR-1 :class:`~repro.core.executor.
Executor` protocol over the columnar kernels: plans are walked exactly like
the eager backend (memoised by node identity, so shared sub-plans evaluate
once per batch), but every intermediate result is a
:class:`~repro.columnar.dataset.ColumnarDataset` and every operator runs its
NumPy kernel.  Results are decoded to :class:`~repro.core.dataset.
WeightedDataset` only at the measurement boundary, so a chain of joins and
filters never leaves array form.

:class:`AutoExecutor` fronts an eager and a vectorized backend and routes
each plan by the support size of the protected sources it references: tiny
inputs stay on the eager evaluator (no encode/decode overhead), large ones go
columnar.  Its decisions are inspectable through ``Queryable.explain()`` /
``repro explain``, which annotate every plan node with the backend that will
execute it.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Sequence

from ..core.dataset import WeightedDataset
from ..core.executor import EagerExecutor
from ..core.partition import PartitionPlan
from ..core.plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
)
from ..exceptions import PlanError
from . import kernels
from .dataset import ColumnarDataset

__all__ = ["VectorizedExecutor", "AutoExecutor", "DEFAULT_AUTO_THRESHOLD"]

#: Total source support (rows) above which ``"auto"`` picks the vectorized
#: backend.  Overridable per-executor and via ``REPRO_AUTO_THRESHOLD``.
DEFAULT_AUTO_THRESHOLD = 2048


class _EagerBoundary:
    """Adapter letting plan nodes without a kernel run their eager rule.

    ``recurse``/``dataset`` decode columnar children to weighted datasets, the
    node's ``_evaluate`` runs eagerly, and the caller re-encodes the result —
    a per-node escape hatch that keeps the backend total over any future plan
    type without silently changing semantics.
    """

    def __init__(self, outer: "VectorizedExecutor") -> None:
        self._outer = outer

    def recurse(self, plan: Plan) -> WeightedDataset:
        return self._outer.recurse(plan).to_weighted()

    def dataset(self, name: str) -> WeightedDataset:
        return self._outer.dataset(name).to_weighted()


class VectorizedExecutor(EagerExecutor):
    """Plan evaluation over columnar datasets and NumPy kernels.

    Subclasses :class:`~repro.core.executor.EagerExecutor` to inherit all of
    its batch machinery — the id-keyed memo table, the plan pinning that
    keeps ids unique, warm/cold scoping and ``evaluation_count`` — and
    overrides only what differs: sources encode to
    :class:`~repro.columnar.dataset.ColumnarDataset`, nodes compute through
    the vectorized kernels, and batch results decode to
    :class:`WeightedDataset` at the measurement boundary.  Environment
    values may be :class:`WeightedDataset` (encoded once and cached per
    registered object) or already-columnar :class:`ColumnarDataset` values —
    the latter is how the MCMC scorer feeds its incrementally updated weight
    vectors straight to the kernels.
    """

    def __init__(
        self,
        environment: Mapping[str, Any],
        warm: bool = False,
    ) -> None:
        super().__init__(environment, warm=warm)
        # name -> (the registered WeightedDataset, its encoding).  The dataset
        # object itself is held (and compared by identity) rather than its
        # id(): a strong reference keeps the address from being reused by a
        # later dataset, which would otherwise serve a stale encoding.
        self._encoded: dict[str, tuple[WeightedDataset, ColumnarDataset]] = {}

    # ------------------------------------------------------------------
    def backend_for(self, plan: Plan) -> str:
        """Every plan handed to this executor runs vectorized."""
        return "vectorized"

    def dataset(self, name: str) -> ColumnarDataset:
        """Resolve a source to columnar form (encoding memoised per object)."""
        try:
            dataset = self._environment[name]
        except KeyError as exc:
            raise PlanError(f"no dataset bound for source {name!r}") from exc
        if isinstance(dataset, ColumnarDataset):
            return dataset
        if not isinstance(dataset, WeightedDataset):
            raise PlanError(
                f"source {name!r} must be bound to a WeightedDataset or "
                f"ColumnarDataset, got {type(dataset).__name__}"
            )
        cached = self._encoded.get(name)
        if cached is None or cached[0] is not dataset:
            cached = (dataset, ColumnarDataset.from_weighted(dataset))
            self._encoded[name] = cached
        return cached[1]

    # ------------------------------------------------------------------
    def _compute(self, plan: Plan) -> ColumnarDataset:
        """Produce one node's value in columnar form (the memo-hook override)."""
        if isinstance(plan, SourcePlan):
            return self.dataset(plan.name)
        if isinstance(plan, SelectPlan):
            return kernels.select(self.recurse(plan.child), plan.mapper)
        if isinstance(plan, PartitionPlan):
            # Before WherePlan: a partition part is a Where with a dedicated
            # node type, and its predicate closes over the partition key.
            return kernels.where(self.recurse(plan.child), plan.part_predicate)
        if isinstance(plan, WherePlan):
            return kernels.where(self.recurse(plan.child), plan.predicate)
        if isinstance(plan, SelectManyPlan):
            return kernels.select_many(self.recurse(plan.child), plan.mapper)
        if isinstance(plan, GroupByPlan):
            return kernels.group_by(self.recurse(plan.child), plan.key, plan.reducer)
        if isinstance(plan, ShavePlan):
            return kernels.shave(self.recurse(plan.child), plan.slice_weights)
        if isinstance(plan, DistinctPlan):
            return kernels.distinct(self.recurse(plan.child), plan.cap)
        if isinstance(plan, DownScalePlan):
            return kernels.down_scale(self.recurse(plan.child), plan.factor)
        if isinstance(plan, JoinPlan):
            return kernels.join(
                self.recurse(plan.left),
                self.recurse(plan.right),
                plan.left_key,
                plan.right_key,
                plan.result_selector,
            )
        if isinstance(plan, UnionPlan):
            return kernels.union(self.recurse(plan.left), self.recurse(plan.right))
        if isinstance(plan, IntersectPlan):
            return kernels.intersect(self.recurse(plan.left), self.recurse(plan.right))
        if isinstance(plan, ConcatPlan):
            return kernels.concat(self.recurse(plan.left), self.recurse(plan.right))
        if isinstance(plan, ExceptPlan):
            return kernels.except_(self.recurse(plan.left), self.recurse(plan.right))
        return ColumnarDataset.from_weighted(plan._evaluate(_EagerBoundary(self)))

    # ------------------------------------------------------------------
    def evaluate_many(self, plans: Sequence[Plan]) -> list[WeightedDataset]:
        """Evaluate a batch; shared sub-plans are evaluated once, columnar."""
        return [dataset.to_weighted() for dataset in self.evaluate_columnar(plans)]

    def evaluate_columnar(self, plans: Sequence[Plan]) -> list[ColumnarDataset]:
        """Like :meth:`evaluate_many` but without the boundary decode.

        This is the inherited batch evaluation — memo scoping included —
        whose values are columnar because :meth:`_compute` is.
        """
        return super().evaluate_many(plans)

    def reset(self) -> None:
        """Drop memoised results and cached source encodings."""
        super().reset()
        self._encoded = {}


class AutoExecutor:
    """Route plans to eager or vectorized execution by input size.

    The decision compares the summed supports of the referenced protected
    sources against ``threshold`` rows.  Small inputs run eagerly (dict
    pipelines beat array encode/decode on a handful of records); everything
    else runs on the columnar kernels.  A multi-plan batch is routed as **one
    unit** — vectorized if any of its plans would route vectorized — so the
    once-per-batch evaluation of shared sub-plans is preserved; per-plan
    :meth:`backend_for` reports the routing of the plan measured on its own,
    which is also what ``Queryable.explain`` annotates.  Both delegates share
    this executor's environment, so either answer is evaluated against the
    same protected data.
    """

    def __init__(
        self,
        environment: Mapping[str, WeightedDataset],
        threshold: int | None = None,
    ) -> None:
        if threshold is None:
            threshold = int(
                os.environ.get("REPRO_AUTO_THRESHOLD", DEFAULT_AUTO_THRESHOLD)
            )
        if threshold < 0:
            raise PlanError("auto threshold must be non-negative")
        self.threshold = threshold
        self._environment = environment
        self._eager = EagerExecutor(environment)
        self._vectorized = VectorizedExecutor(environment)

    # ------------------------------------------------------------------
    def backend_for(self, plan: Plan) -> str:
        """The backend this executor would run ``plan`` on right now."""
        total = 0
        for name in plan.source_names():
            dataset = self._environment.get(name)
            if dataset is not None:
                total += len(dataset)
        return "vectorized" if total >= self.threshold else "eager"

    # ------------------------------------------------------------------
    def evaluate(self, plan: Plan) -> WeightedDataset:
        """Evaluate a single plan (a one-element batch)."""
        return self.evaluate_many([plan])[0]

    def evaluate_many(self, plans: Sequence[Plan]) -> list[WeightedDataset]:
        """Evaluate the batch on one delegate (vectorized if any plan is big).

        Routing the whole batch together keeps the shared-sub-plan guarantee:
        a sub-plan referenced by several requests is evaluated once no matter
        how their individual sizes would have routed them.
        """
        if any(self.backend_for(plan) == "vectorized" for plan in plans):
            return self._vectorized.evaluate_many(plans)
        return self._eager.evaluate_many(plans)

    def reset(self) -> None:
        """Reset both delegates."""
        self._eager.reset()
        self._vectorized.reset()
