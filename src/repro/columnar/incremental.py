"""Incremental columnar dataflow: stateful array nodes consuming delta arrays.

This module brings the paper's Section 4.3 insight — per-step cost
proportional to the amount of *changed* intermediate data — to the columnar
backend.  It mirrors the dict-based incremental operators of
:mod:`repro.dataflow.operators`, but every delta travelling between nodes is a
:class:`~repro.columnar.dataset.ColumnarDataset` (``int64`` code columns plus
a ``float64`` weight vector) and every linear operator applies its vectorized
kernel from :mod:`repro.columnar.kernels` directly to the delta arrays.
Stateful operators (Join, Union/Intersect, Distinct, GroupBy, Shave) keep
their inputs indexed — the join by key code with amortised-growth per-key
arrays — and recompute only the affected parts, exactly like their dataflow
counterparts but with the cross products, scalings and merges done as array
operations.

Two delivery modes share one operator graph:

* **deltas** (:meth:`DeltaNode.on_delta`) — committed updates that fold into
  operator state and propagate downstream, the ordinary MCMC push;
* **probes** (:meth:`DeltaNode.on_probe`) — *what-if* updates used by batched
  proposal evaluation: ``K`` candidate deltas are stacked into one
  :class:`Probe` carrying a candidate-id vector, flow through the graph in a
  single fused pass without mutating any state, and per-candidate overlays
  (reset by :meth:`DeltaNode.begin_batch`) keep candidates independent.  A
  node that cannot answer a probe on its fast path raises
  :class:`ProbeFallback`, and the caller falls back to sequential
  push/score/rollback for that batch.

The scoring half (per-measurement bin vectors and L1 residuals) lives in
:mod:`repro.inference.columnar_scoring`; this module is measurement-agnostic.
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple, Sequence

import numpy as np

from ..core import transformations as xf
from ..core.dataset import DEFAULT_TOLERANCE, WeightedDataset
from ..core.partition import PartitionPlan
from ..core.plan import (
    ConcatPlan,
    DistinctPlan,
    DownScalePlan,
    ExceptPlan,
    GroupByPlan,
    IntersectPlan,
    JoinPlan,
    Plan,
    SelectManyPlan,
    SelectPlan,
    ShavePlan,
    SourcePlan,
    UnionPlan,
    WherePlan,
)
from ..exceptions import DataflowError
from . import kernels
from .dataset import ColumnarDataset
from .interning import global_interner
from .specs import Constant, ExplodeFields, Field, FieldIs, FieldsDiffer, JoinFields, Permute

__all__ = [
    "Probe",
    "ProbeFallback",
    "DeltaNode",
    "SourceDeltaNode",
    "IncrementalGraph",
]

#: Relative tolerance deciding a join key's normaliser is unchanged (mirrors
#: :attr:`repro.dataflow.operators.JoinNode._NORM_TOLERANCE`).
NORM_TOLERANCE = 1e-9


class Probe(NamedTuple):
    """A stacked batch of candidate deltas flowing through the graph.

    Rows need not be unique: probe semantics are additive, and consumers
    accumulate per ``(candidate, row)``.  ``cands`` aligns a candidate index
    with every row.
    """

    columns: tuple[np.ndarray, ...]
    weights: np.ndarray
    cands: np.ndarray
    arity: int | None


class ProbeFallback(Exception):
    """Raised when a probe leaves a node's fast path (e.g. a join delta that
    changes a key's normaliser); the batch must be scored sequentially."""


# ----------------------------------------------------------------------
# Row/record helpers
# ----------------------------------------------------------------------
def _row_keys(columns: Sequence[np.ndarray]) -> list[tuple[int, ...]]:
    """Hashable per-row keys (tuples of codes) for dict-indexed state."""
    return list(zip(*(column.tolist() for column in columns)))


def _decode_rows(columns: Sequence[np.ndarray], arity: int | None) -> list[Any]:
    interner = global_interner()
    if arity is None:
        return interner.atoms(columns[0])
    return list(zip(*(interner.atoms(column) for column in columns)))


def _decode_key(row_key: tuple[int, ...], arity: int | None) -> Any:
    interner = global_interner()
    if arity is None:
        return interner.atom(row_key[0])
    return tuple(interner.atom(code) for code in row_key)


def _encode_records(records: Sequence[Any]) -> tuple[tuple[np.ndarray, ...], int | None]:
    """Encode records into columns, detecting the decomposed layout."""
    interner = global_interner()
    if records and all(type(record) is tuple for record in records):
        width = len(records[0])
        if width >= 1 and all(len(record) == width for record in records):
            columns = tuple(
                interner.codes([record[index] for record in records])
                for index in range(width)
            )
            return columns, width
    return (interner.codes(list(records)),), None


def _probe_records(probe: Probe) -> list[Any]:
    return _decode_rows(probe.columns, probe.arity)


def _probe_from_records(
    records: Sequence[Any], weights: np.ndarray, cands: np.ndarray
) -> Probe:
    columns, arity = _encode_records(records)
    return Probe(columns, np.asarray(weights, dtype=np.float64), cands, arity)


def _probe_as_opaque(probe: Probe) -> Probe:
    if probe.arity is None:
        return probe
    codes = global_interner().codes(_probe_records(probe))
    return Probe((codes,), probe.weights, probe.cands, None)


def _prune_probe(probe: Probe) -> Probe:
    keep = np.abs(probe.weights) > DEFAULT_TOLERANCE
    if keep.all():
        return probe
    return Probe(
        tuple(column[keep] for column in probe.columns),
        probe.weights[keep],
        probe.cands[keep],
        probe.arity,
    )


# ----------------------------------------------------------------------
# Node base classes
# ----------------------------------------------------------------------
class DeltaNode:
    """A vertex of the incremental columnar dataflow graph."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self._consumers: list[tuple["DeltaNode", int]] = []

    def subscribe(self, consumer: "DeltaNode", port: int = 0) -> None:
        self._consumers.append((consumer, port))

    # -- committed deltas ------------------------------------------------
    def emit(self, delta: ColumnarDataset) -> None:
        if delta.is_empty():
            return
        for consumer, port in self._consumers:
            consumer.on_delta(delta, port)

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        raise NotImplementedError

    # -- what-if probes --------------------------------------------------
    def emit_probe(self, probe: Probe) -> None:
        probe = _prune_probe(probe)
        if probe.weights.shape[0] == 0:
            return
        for consumer, port in self._consumers:
            consumer.on_probe(probe, port)

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        raise ProbeFallback(f"{self.name} does not support probes")

    def begin_batch(self) -> None:
        """Reset any per-batch probe overlay (called before every batch)."""

    # -- introspection ---------------------------------------------------
    def state_entries(self) -> int:
        """Weighted entries held by this node's state (the memory proxy)."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SourceDeltaNode(DeltaNode):
    """Entry point of the graph; the source data itself lives with the engine
    (a :class:`~repro.inference.columnar_scoring.MutableColumnarSource`)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        self.emit(delta)

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        self.emit_probe(probe)


# ----------------------------------------------------------------------
# Linear (stateless) operators: kernels apply directly to the delta
# ----------------------------------------------------------------------
class SelectDeltaNode(DeltaNode):
    """Incremental ``Select``: linear, so the kernel maps the delta through."""

    def __init__(self, mapper: Callable[[Any], Any], name: str = "select") -> None:
        super().__init__(name)
        self._mapper = mapper

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        self.emit(kernels.select(delta, self._mapper))

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        mapper = self._mapper
        if probe.arity is not None:
            arity = probe.arity
            if isinstance(mapper, Permute) and all(i < arity for i in mapper.indices):
                columns = tuple(probe.columns[i] for i in mapper.indices)
                self.emit_probe(
                    Probe(columns, probe.weights, probe.cands, len(mapper.indices))
                )
                return
            if isinstance(mapper, Field) and mapper.index < arity:
                self.emit_probe(
                    Probe((probe.columns[mapper.index],), probe.weights, probe.cands, None)
                )
                return
        if isinstance(mapper, Constant):
            present = np.unique(probe.cands)
            sums = np.bincount(
                probe.cands, weights=probe.weights, minlength=int(present[-1]) + 1
            )[present]
            code = global_interner().code(mapper.value)
            column = np.full(present.shape[0], code, dtype=np.int64)
            self.emit_probe(Probe((column,), sums, present, None))
            return
        mapped = [mapper(record) for record in _probe_records(probe)]
        self.emit_probe(_probe_from_records(mapped, probe.weights, probe.cands))


class WhereDeltaNode(DeltaNode):
    """Incremental ``Where``: drop delta rows failing the predicate."""

    def __init__(self, predicate: Callable[[Any], bool], name: str = "where") -> None:
        super().__init__(name)
        self._predicate = predicate

    def _mask(self, columns: Sequence[np.ndarray], arity: int | None) -> np.ndarray:
        predicate = self._predicate
        if arity is not None:
            if (
                isinstance(predicate, FieldsDiffer)
                and predicate.first < arity
                and predicate.second < arity
            ):
                return columns[predicate.first] != columns[predicate.second]
            if isinstance(predicate, FieldIs) and predicate.index < arity:
                try:
                    code = global_interner().code(predicate.value)
                except TypeError:
                    code = None
                if code is not None:
                    return columns[predicate.index] == code
        count = columns[0].shape[0]
        return np.fromiter(
            (bool(predicate(record)) for record in _decode_rows(columns, arity)),
            dtype=bool,
            count=count,
        )

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        mask = self._mask(delta.columns, delta.arity)
        self.emit(
            ColumnarDataset(
                tuple(column[mask] for column in delta.columns),
                delta.weights[mask],
                delta.arity,
                delta.tolerance,
                assume_unique=True,
            )
        )

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        mask = self._mask(probe.columns, probe.arity)
        self.emit_probe(
            Probe(
                tuple(column[mask] for column in probe.columns),
                probe.weights[mask],
                probe.cands[mask],
                probe.arity,
            )
        )


class SelectManyDeltaNode(DeltaNode):
    """Incremental ``SelectMany``: linear per record, collections memoised."""

    def __init__(self, mapper: Callable[[Any], Any], name: str = "select_many") -> None:
        super().__init__(name)
        self._mapper = mapper
        self._normalized: dict[Any, list[tuple[Any, float]]] = {}

    def _normalized_output(self, record: Any) -> list[tuple[Any, float]]:
        cached = self._normalized.get(record)
        if cached is None:
            produced = xf.normalize_weighted_output(self._mapper(record))
            norm = sum(abs(weight) for _, weight in produced)
            scale = 1.0 / max(1.0, norm)
            cached = [(out, weight * scale) for out, weight in produced]
            self._normalized[record] = cached
        return cached

    def _expand(
        self, columns: Sequence[np.ndarray], weights: np.ndarray, arity: int | None
    ) -> tuple[list[Any], list[float], list[int]]:
        out_records: list[Any] = []
        out_weights: list[float] = []
        out_rows: list[int] = []
        for row, (record, weight) in enumerate(
            zip(_decode_rows(columns, arity), weights.tolist())
        ):
            for out_record, unit in self._normalized_output(record):
                out_records.append(out_record)
                out_weights.append(unit * weight)
                out_rows.append(row)
        return out_records, out_weights, out_rows

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        if isinstance(self._mapper, ExplodeFields) and delta.decomposed:
            self.emit(kernels.select_many(delta, self._mapper))
            return
        records, weights, _ = self._expand(delta.columns, delta.weights, delta.arity)
        columns, arity = _encode_records(records)
        self.emit(
            ColumnarDataset(
                columns,
                np.asarray(weights, dtype=np.float64),
                arity,
                delta.tolerance,
            )
        )

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        if isinstance(self._mapper, ExplodeFields) and probe.arity is not None:
            width = probe.arity
            scale = 1.0 / max(1.0, float(width))
            codes = np.concatenate(probe.columns)
            weights = np.tile(probe.weights * scale, width)
            cands = np.tile(probe.cands, width)
            self.emit_probe(Probe((codes,), weights, cands, None))
            return
        records, weights, rows = self._expand(probe.columns, probe.weights, probe.arity)
        cands = probe.cands[np.asarray(rows, dtype=np.intp)]
        self.emit_probe(
            _probe_from_records(records, np.asarray(weights, dtype=np.float64), cands)
        )

    def state_entries(self) -> int:
        return sum(len(outputs) for outputs in self._normalized.values())


class DownScaleDeltaNode(DeltaNode):
    """Incremental ``DownScale``: deltas scale straight through."""

    def __init__(self, factor: float, name: str = "down_scale") -> None:
        super().__init__(name)
        self._factor = float(factor)

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        self.emit(kernels.down_scale(delta, self._factor))

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        self.emit_probe(probe._replace(weights=probe.weights * self._factor))


class ConcatDeltaNode(DeltaNode):
    """Incremental ``Concat``: deltas from either port pass straight through."""

    def __init__(self, name: str = "concat") -> None:
        super().__init__(name)

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        self.emit(delta)

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        self.emit_probe(probe)


class ExceptDeltaNode(DeltaNode):
    """Incremental ``Except``: port 1 deltas pass through negated."""

    def __init__(self, name: str = "except") -> None:
        super().__init__(name)

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        if port == 0:
            self.emit(delta)
        else:
            self.emit(
                ColumnarDataset(
                    delta.columns,
                    -delta.weights,
                    delta.arity,
                    delta.tolerance,
                    assume_unique=True,
                )
            )

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        if port == 0:
            self.emit_probe(probe)
        else:
            self.emit_probe(probe._replace(weights=-probe.weights))


# ----------------------------------------------------------------------
# Stateful per-row operators
# ----------------------------------------------------------------------
class _LayoutStateNode(DeltaNode):
    """Shared machinery for nodes keyed by row-code tuples.

    The node adopts the layout of the first delta it sees; a later delta in a
    different layout forces the node (and its state keys) into opaque form
    once, mirroring :meth:`MutableColumnarSource._rebuild_opaque`.
    """

    _UNSET = object()

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._arity: Any = self._UNSET

    def _rekey(self, row_key: tuple[int, ...], arity: int | None) -> tuple[int, ...]:
        record = _decode_key(row_key, arity)
        return (global_interner().code(record),)

    def _convert_state_opaque(self, old_arity: int | None) -> None:
        raise NotImplementedError

    def _adopt_delta(self, delta: ColumnarDataset) -> ColumnarDataset:
        if self._arity is self._UNSET:
            self._arity = delta.arity
            return delta
        if delta.arity == self._arity:
            return delta
        if self._arity is not None:
            old = self._arity
            self._arity = None
            self._convert_state_opaque(old)
        return delta.as_opaque()

    def _adopt_probe(self, probe: Probe) -> Probe:
        if self._arity is self._UNSET:
            self._arity = probe.arity
            return probe
        if probe.arity == self._arity:
            return probe
        if self._arity is not None:
            old = self._arity
            self._arity = None
            self._convert_state_opaque(old)
        return _probe_as_opaque(probe)


class DistinctDeltaNode(_LayoutStateNode):
    """Incremental ``Distinct``: re-cap only rows whose weight changed."""

    def __init__(self, cap: float = 1.0, name: str = "distinct") -> None:
        super().__init__(name)
        self._cap = float(cap)
        self._weights: dict[tuple[int, ...], float] = {}
        self._probe_pending: dict[tuple[int, tuple[int, ...]], float] = {}

    def _convert_state_opaque(self, old_arity: int | None) -> None:
        self._weights = {
            self._rekey(key, old_arity): weight
            for key, weight in self._weights.items()
        }

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        delta = self._adopt_delta(delta)
        cap = self._cap
        out = np.empty(delta.weights.shape[0], dtype=np.float64)
        for index, (key, change) in enumerate(
            zip(_row_keys(delta.columns), delta.weights.tolist())
        ):
            before = self._weights.get(key, 0.0)
            after = before + change
            if abs(after) <= DEFAULT_TOLERANCE:
                self._weights.pop(key, None)
                after = 0.0
            else:
                self._weights[key] = after
            out[index] = min(after, cap) - min(before, cap)
        self.emit(
            ColumnarDataset(
                delta.columns, out, delta.arity, delta.tolerance, assume_unique=True
            )
        )

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        probe = self._adopt_probe(probe)
        cap = self._cap
        out = np.empty(probe.weights.shape[0], dtype=np.float64)
        cands = probe.cands.tolist()
        for index, (key, change) in enumerate(
            zip(_row_keys(probe.columns), probe.weights.tolist())
        ):
            overlay_key = (cands[index], key)
            pending = self._probe_pending.get(overlay_key, 0.0)
            base = self._weights.get(key, 0.0)
            before = base + pending
            after = before + change
            self._probe_pending[overlay_key] = pending + change
            out[index] = min(after, cap) - min(before, cap)
        self.emit_probe(Probe(probe.columns, out, probe.cands, probe.arity))

    def begin_batch(self) -> None:
        self._probe_pending = {}

    def state_entries(self) -> int:
        return len(self._weights)


class UnionDeltaNode(_LayoutStateNode):
    """Incremental ``Union`` (element-wise max over two inputs)."""

    combiner = staticmethod(max)

    def __init__(self, name: str = "union") -> None:
        super().__init__(name)
        self._weights: dict[tuple[int, ...], list[float]] = {}
        self._probe_pending: dict[tuple[int, tuple[int, ...]], list[float]] = {}

    def _convert_state_opaque(self, old_arity: int | None) -> None:
        self._weights = {
            self._rekey(key, old_arity): pair for key, pair in self._weights.items()
        }

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        if port not in (0, 1):
            raise DataflowError(f"binary operator has ports 0 and 1, got {port}")
        delta = self._adopt_delta(delta)
        combiner = self.combiner
        out = np.empty(delta.weights.shape[0], dtype=np.float64)
        for index, (key, change) in enumerate(
            zip(_row_keys(delta.columns), delta.weights.tolist())
        ):
            pair = self._weights.get(key)
            if pair is None:
                pair = [0.0, 0.0]
                self._weights[key] = pair
            before = combiner(pair[0], pair[1])
            pair[port] += change
            if abs(pair[port]) <= DEFAULT_TOLERANCE:
                pair[port] = 0.0
            after = combiner(pair[0], pair[1])
            if pair[0] == 0.0 and pair[1] == 0.0:
                self._weights.pop(key, None)
            out[index] = after - before
        self.emit(
            ColumnarDataset(
                delta.columns, out, delta.arity, delta.tolerance, assume_unique=True
            )
        )

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        probe = self._adopt_probe(probe)
        combiner = self.combiner
        out = np.empty(probe.weights.shape[0], dtype=np.float64)
        cands = probe.cands.tolist()
        for index, (key, change) in enumerate(
            zip(_row_keys(probe.columns), probe.weights.tolist())
        ):
            overlay_key = (cands[index], key)
            pending = self._probe_pending.get(overlay_key)
            if pending is None:
                pending = [0.0, 0.0]
                self._probe_pending[overlay_key] = pending
            pair = self._weights.get(key, (0.0, 0.0))
            before = combiner(pair[0] + pending[0], pair[1] + pending[1])
            pending[port] += change
            after = combiner(pair[0] + pending[0], pair[1] + pending[1])
            out[index] = after - before
        self.emit_probe(Probe(probe.columns, out, probe.cands, probe.arity))

    def begin_batch(self) -> None:
        self._probe_pending = {}

    def state_entries(self) -> int:
        return 2 * len(self._weights)


class IntersectDeltaNode(UnionDeltaNode):
    """Incremental ``Intersect`` (element-wise min over two inputs)."""

    combiner = staticmethod(min)

    def __init__(self, name: str = "intersect") -> None:
        super().__init__(name)


class ShaveDeltaNode(_LayoutStateNode):
    """Incremental ``Shave``: re-slice only the rows whose weight changed."""

    def __init__(self, slice_weights: Any = 1.0, name: str = "shave") -> None:
        super().__init__(name)
        self._slice_weights = slice_weights
        self._weights: dict[tuple[int, ...], float] = {}
        self._probe_pending: dict[tuple[int, tuple[int, ...]], float] = {}

    def _convert_state_opaque(self, old_arity: int | None) -> None:
        self._weights = {
            self._rekey(key, old_arity): weight
            for key, weight in self._weights.items()
        }

    def _slices(self, record: Any, weight: float) -> dict[Any, float]:
        if weight <= 0.0:
            return {}
        single = WeightedDataset({record: weight})
        return xf.shave(single, self._slice_weights).to_dict()

    def _diff(
        self,
        keys: list[tuple[int, ...]],
        changes: list[float],
        arity: int | None,
        read: Callable[[tuple[int, ...], int], float],
        write: Callable[[tuple[int, ...], int, float], None],
    ) -> tuple[list[Any], list[float], list[int]]:
        out_records: list[Any] = []
        out_weights: list[float] = []
        out_rows: list[int] = []
        for row, (key, change) in enumerate(zip(keys, changes)):
            record = _decode_key(key, arity)
            before_weight = read(key, row)
            after_weight = before_weight + change
            write(key, row, after_weight)
            before = self._slices(record, before_weight)
            after = self._slices(record, after_weight)
            for out_record, weight in after.items():
                out_records.append(out_record)
                out_weights.append(weight - before.pop(out_record, 0.0))
                out_rows.append(row)
            for out_record, weight in before.items():
                out_records.append(out_record)
                out_weights.append(-weight)
                out_rows.append(row)
        return out_records, out_weights, out_rows

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        delta = self._adopt_delta(delta)

        def read(key: tuple[int, ...], row: int) -> float:
            return self._weights.get(key, 0.0)

        def write(key: tuple[int, ...], row: int, value: float) -> None:
            if abs(value) <= DEFAULT_TOLERANCE:
                self._weights.pop(key, None)
            else:
                self._weights[key] = value

        records, weights, _ = self._diff(
            _row_keys(delta.columns), delta.weights.tolist(), delta.arity, read, write
        )
        columns, arity = _encode_records(records)
        self.emit(
            ColumnarDataset(
                columns, np.asarray(weights, dtype=np.float64), arity, delta.tolerance
            )
        )

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        probe = self._adopt_probe(probe)
        cands = probe.cands.tolist()

        def read(key: tuple[int, ...], row: int) -> float:
            overlay_key = (cands[row], key)
            return self._weights.get(key, 0.0) + self._probe_pending.get(overlay_key, 0.0)

        def write(key: tuple[int, ...], row: int, value: float) -> None:
            overlay_key = (cands[row], key)
            self._probe_pending[overlay_key] = value - self._weights.get(key, 0.0)

        records, weights, rows = self._diff(
            _row_keys(probe.columns), probe.weights.tolist(), probe.arity, read, write
        )
        out_cands = probe.cands[np.asarray(rows, dtype=np.intp)]
        self.emit_probe(
            _probe_from_records(records, np.asarray(weights, dtype=np.float64), out_cands)
        )

    def begin_batch(self) -> None:
        self._probe_pending = {}

    def state_entries(self) -> int:
        return len(self._weights)


class GroupByDeltaNode(DeltaNode):
    """Incremental ``GroupBy``: recompute only the groups whose key changed.

    The prefix emission is inherently record-level (it calls the reducer per
    prefix and orders ties by ``repr``), so state is kept over decoded record
    objects — exactly like the dataflow node — and only the delta transport
    and the final collision accumulation are columnar.
    """

    def __init__(
        self,
        key: Callable[[Any], Any],
        reducer: Callable[[Sequence[Any]], Any] = tuple,
        name: str = "group_by",
    ) -> None:
        super().__init__(name)
        self._key = key
        self._reducer = reducer
        self._groups: dict[Any, dict[Any, float]] = {}
        self._probe_pending: dict[tuple[int, Any], dict[Any, float]] = {}

    def _output_of(self, key: Any, part: dict[Any, float]) -> dict[Any, float]:
        part = {
            record: weight
            for record, weight in part.items()
            if abs(weight) > DEFAULT_TOLERANCE
        }
        if not part:
            return {}
        output: dict[Any, float] = {}
        for members, weight in xf.group_prefixes(part):
            record = (key, self._reducer(list(members)))
            output[record] = output.get(record, 0.0) + weight
        return output

    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        by_key: dict[Any, dict[Any, float]] = {}
        for record, weight in zip(delta.records(), delta.weights.tolist()):
            by_key.setdefault(self._key(record), {})[record] = weight
        out_records: list[Any] = []
        out_weights: list[float] = []
        for key, key_delta in by_key.items():
            part = self._groups.setdefault(key, {})
            before = self._output_of(key, part)
            for record, change in key_delta.items():
                updated = part.get(record, 0.0) + change
                if abs(updated) <= DEFAULT_TOLERANCE:
                    part.pop(record, None)
                else:
                    part[record] = updated
            if not part:
                self._groups.pop(key, None)
            after = self._output_of(key, part)
            for record, weight in after.items():
                out_records.append(record)
                out_weights.append(weight - before.pop(record, 0.0))
            for record, weight in before.items():
                out_records.append(record)
                out_weights.append(-weight)
        columns, arity = _encode_records(out_records)
        self.emit(
            ColumnarDataset(
                columns, np.asarray(out_weights, dtype=np.float64), arity, delta.tolerance
            )
        )

    def on_probe(self, probe: Probe, port: int = 0) -> None:
        by_group: dict[tuple[int, Any], dict[Any, float]] = {}
        for record, weight, cand in zip(
            _probe_records(probe), probe.weights.tolist(), probe.cands.tolist()
        ):
            group = by_group.setdefault((cand, self._key(record)), {})
            group[record] = group.get(record, 0.0) + weight
        out_records: list[Any] = []
        out_weights: list[float] = []
        out_cands: list[int] = []
        for (cand, key), key_delta in by_group.items():
            pending = self._probe_pending.setdefault((cand, key), {})
            base = dict(self._groups.get(key, {}))
            for record, change in pending.items():
                base[record] = base.get(record, 0.0) + change
            before = self._output_of(key, base)
            for record, change in key_delta.items():
                pending[record] = pending.get(record, 0.0) + change
                base[record] = base.get(record, 0.0) + change
            after = self._output_of(key, base)
            for record, weight in after.items():
                out_records.append(record)
                out_weights.append(weight - before.pop(record, 0.0))
                out_cands.append(cand)
            for record, weight in before.items():
                out_records.append(record)
                out_weights.append(-weight)
                out_cands.append(cand)
        self.emit_probe(
            _probe_from_records(
                out_records,
                np.asarray(out_weights, dtype=np.float64),
                np.asarray(out_cands, dtype=np.int64),
            )
        )

    def begin_batch(self) -> None:
        self._probe_pending = {}

    def state_entries(self) -> int:
        return sum(len(part) for part in self._groups.values())


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
class _Part:
    """One join key's rows on one side, as amortised-growth arrays."""

    __slots__ = ("columns", "weights", "size", "index", "norm", "negatives")

    def __init__(self, width: int) -> None:
        capacity = 4
        self.columns = [np.empty(capacity, dtype=np.int64) for _ in range(width)]
        self.weights = np.zeros(capacity, dtype=np.float64)
        self.size = 0
        self.index: dict[tuple[int, ...], int] = {}
        self.norm = 0.0
        self.negatives = 0

    def ensure(self, row_key: tuple[int, ...]) -> int:
        position = self.index.get(row_key)
        if position is None:
            if self.size >= self.weights.shape[0]:
                self.columns = [
                    np.concatenate([column, np.empty(column.shape[0], dtype=np.int64)])
                    for column in self.columns
                ]
                self.weights = np.concatenate(
                    [self.weights, np.zeros(self.weights.shape[0], dtype=np.float64)]
                )
            position = self.size
            self.size += 1
            for buffer, code in zip(self.columns, row_key):
                buffer[position] = code
            self.index[row_key] = position
        return position

    def weight_of(self, row_key: tuple[int, ...]) -> float:
        position = self.index.get(row_key)
        return float(self.weights[position]) if position is not None else 0.0

    def add(self, position: int, change: float) -> None:
        old = float(self.weights[position])
        new = old + change
        if abs(new) <= DEFAULT_TOLERANCE:
            new = 0.0
        self.weights[position] = new
        self.norm += abs(new) - abs(old)
        self.negatives += int(new < 0) - int(old < 0)

    def view(self) -> tuple[list[np.ndarray], np.ndarray]:
        return [column[: self.size] for column in self.columns], self.weights[: self.size]


class JoinDeltaNode(DeltaNode):
    """Incremental wPINQ ``Join`` over per-key code/weight arrays.

    State per side is an index ``key code -> _Part`` with per-key norms
    maintained incrementally.  Deltas follow the two regimes of
    :class:`~repro.dataflow.operators.JoinNode`: when a key's normaliser
    ``‖A_k‖ + ‖B_k‖`` is unchanged (the MCMC edge-swap case) only the changed
    rows are crossed against the other side — a fancy-indexed array product —
    and otherwise the key's full contribution is recomputed before/after.
    """

    _UNSET = object()

    def __init__(
        self,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        result_selector: Callable[[Any, Any], Any] = lambda a, b: (a, b),
        name: str = "join",
    ) -> None:
        super().__init__(name)
        self._keys = (left_key, right_key)
        self._selector = result_selector
        self._sides: tuple[dict[int, _Part], dict[int, _Part]] = ({}, {})
        self._arities: list[Any] = [self._UNSET, self._UNSET]
        # Per (cand, key): pending probe rows per port, as row_key -> delta.
        self._probe_pending: dict[tuple[int, int], tuple[dict, dict]] = {}

    # -- layout ----------------------------------------------------------
    def _side_to_opaque(self, port: int) -> None:
        arity = self._arities[port]
        converted: dict[int, _Part] = {}
        for key_code, part in self._sides[port].items():
            new_part = _Part(1)
            columns, weights = part.view()
            for row_key, weight in zip(_row_keys(columns), weights.tolist()):
                new_key = (global_interner().code(_decode_key(row_key, arity)),)
                position = new_part.ensure(new_key)
                new_part.add(position, weight)
            converted[key_code] = new_part
        self._sides = (
            (converted, self._sides[1]) if port == 0 else (self._sides[0], converted)
        )
        self._arities[port] = None

    def _adopt(self, port: int, arity: int | None) -> bool:
        """Record the side's layout; True when the incoming data must be
        converted to opaque to match previously-seen data."""
        current = self._arities[port]
        if current is self._UNSET:
            self._arities[port] = arity
            return False
        if arity == current:
            return False
        if current is not None:
            self._side_to_opaque(port)
        return True

    # -- key codes -------------------------------------------------------
    def _key_codes(
        self, columns: Sequence[np.ndarray], arity: int | None, port: int
    ) -> np.ndarray:
        key = self._keys[port]
        if isinstance(key, Field) and arity is not None and key.index < arity:
            return columns[key.index]
        return global_interner().codes(
            [key(record) for record in _decode_rows(columns, arity)]
        )

    # -- output assembly -------------------------------------------------
    def _selector_is_fast(self) -> bool:
        selector = self._selector
        if not isinstance(selector, JoinFields):
            return False
        left_arity, right_arity = self._arities[0], self._arities[1]
        if left_arity in (self._UNSET, None) or right_arity in (self._UNSET, None):
            return False
        return all(
            index < (left_arity if side == "l" else right_arity)
            for side, index in selector.picks
        )

    def _emit_pairs(
        self,
        left_columns: Sequence[np.ndarray],
        right_columns: Sequence[np.ndarray],
        left_rows: np.ndarray,
        right_rows: np.ndarray,
        weights: np.ndarray,
    ) -> tuple[tuple[np.ndarray, ...], int | None]:
        """Assemble output columns for matched (left_row, right_row) pairs."""
        if self._selector_is_fast():
            columns = tuple(
                left_columns[index][left_rows]
                if side == "l"
                else right_columns[index][right_rows]
                for side, index in self._selector.picks
            )
            return columns, len(self._selector.picks)
        return _encode_records(
            self._pair_records(left_columns, right_columns, left_rows, right_rows)
        )

    def _pair_records(
        self,
        left_columns: Sequence[np.ndarray],
        right_columns: Sequence[np.ndarray],
        left_rows: np.ndarray,
        right_rows: np.ndarray,
    ) -> list[Any]:
        left_records = _decode_rows(
            [column[left_rows] for column in left_columns], self._arities[0]
        )
        right_records = _decode_rows(
            [column[right_rows] for column in right_columns], self._arities[1]
        )
        return [self._selector(a, b) for a, b in zip(left_records, right_records)]

    def _key_cross(
        self, key_code: int
    ) -> tuple[tuple[np.ndarray, ...] | None, int | None, list[Any] | None, np.ndarray] | None:
        """Full contribution of one key as ``(columns, arity, records, weights)``.

        ``columns`` is set for spec selectors, ``records`` otherwise.  Returns
        None when either side is absent or carries no weight (a part whose
        rows all pruned to zero behaves exactly like a missing part).
        """
        left = self._sides[0].get(key_code)
        right = self._sides[1].get(key_code)
        if left is None or right is None or left.size == 0 or right.size == 0:
            return None
        if left.norm <= 0.0 or right.norm <= 0.0:
            return None
        denominator = left.norm + right.norm
        left_columns, left_weights = left.view()
        right_columns, right_weights = right.view()
        pair_weights = (
            left_weights[:, None] * right_weights[None, :] / denominator
        ).ravel()
        left_rows = np.repeat(np.arange(left.size), right.size)
        right_rows = np.tile(np.arange(right.size), left.size)
        if self._selector_is_fast():
            columns = tuple(
                left_columns[index][left_rows]
                if side == "l"
                else right_columns[index][right_rows]
                for side, index in self._selector.picks
            )
            return columns, len(self._selector.picks), None, pair_weights
        records = self._pair_records(left_columns, right_columns, left_rows, right_rows)
        return None, None, records, pair_weights

    # -- deltas ----------------------------------------------------------
    def on_delta(self, delta: ColumnarDataset, port: int = 0) -> None:
        if port not in (0, 1):
            raise DataflowError(f"binary operator has ports 0 and 1, got {port}")
        if self._adopt(port, delta.arity):
            delta = delta.as_opaque()
        key_codes = self._key_codes(delta.columns, delta.arity, port)
        row_keys = _row_keys(delta.columns)
        weights = delta.weights
        side = self._sides[port]
        other = self._sides[1 - port]
        width = len(delta.columns)

        order = np.argsort(key_codes, kind="stable")
        sorted_keys = key_codes[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        ends = np.append(boundaries[1:], order.shape[0])

        out_record_lists: list[Any] = []
        out_weight_arrays: list[np.ndarray] = []
        fast_columns: list[tuple[np.ndarray, ...]] = []
        fast_weights: list[np.ndarray] = []
        fast_arity: int | None = None

        for start, end in zip(boundaries, ends):
            rows = order[start:end]
            key_code = int(sorted_keys[start])
            group_changes = weights[rows]
            part = side.get(key_code)
            if part is None:
                part = _Part(width)
                side[key_code] = part
            positions = [part.ensure(row_keys[row]) for row in rows.tolist()]
            old = part.weights[positions]
            net = float(group_changes.sum())
            norm_preserved = (
                abs(net) <= NORM_TOLERANCE
                and part.negatives == 0
                and bool(((old + group_changes) >= 0.0).all())
            )
            if norm_preserved:
                other_part = other.get(key_code)
                denominator = part.norm + (other_part.norm if other_part else 0.0)
                for position, change in zip(positions, group_changes.tolist()):
                    part.add(position, change)
                if (
                    other_part is None
                    or other_part.size == 0
                    or denominator <= 0.0
                ):
                    continue
                other_columns, other_weights = other_part.view()
                pair_weights = (
                    group_changes[:, None] * other_weights[None, :] / denominator
                ).ravel()
                delta_rows = np.repeat(rows, other_part.size)
                other_rows = np.tile(np.arange(other_part.size), rows.shape[0])
                sides = (
                    (delta.columns, other_columns, delta_rows, other_rows)
                    if port == 0
                    else (other_columns, delta.columns, other_rows, delta_rows)
                )
                if self._selector_is_fast():
                    columns, arity = self._emit_pairs(*sides, pair_weights)
                    fast_columns.append(columns)
                    fast_weights.append(pair_weights)
                    fast_arity = arity
                else:
                    out_record_lists.extend(self._pair_records(*sides))
                    out_weight_arrays.append(pair_weights)
            else:
                before = self._key_cross(key_code)
                for position, change in zip(positions, group_changes.tolist()):
                    part.add(position, change)
                after = self._key_cross(key_code)
                for cross, sign in ((after, 1.0), (before, -1.0)):
                    if cross is None:
                        continue
                    columns, arity, records, pair_weights = cross
                    if columns is not None:
                        fast_columns.append(columns)
                        fast_weights.append(sign * pair_weights)
                        fast_arity = arity
                    else:
                        out_record_lists.extend(records)
                        out_weight_arrays.append(sign * pair_weights)

        self._emit_outputs(
            fast_columns,
            fast_weights,
            fast_arity,
            out_record_lists,
            out_weight_arrays,
            delta.tolerance,
        )

    def _emit_outputs(
        self,
        fast_columns: list[tuple[np.ndarray, ...]],
        fast_weights: list[np.ndarray],
        fast_arity: int | None,
        generic_records: list[Any],
        generic_weights: list[np.ndarray],
        tolerance: float,
    ) -> None:
        if generic_records:
            columns, arity = _encode_records(generic_records)
            generic_weight = (
                np.concatenate(generic_weights)
                if generic_weights
                else np.empty(0, dtype=np.float64)
            )
            # Mixed fast/generic outputs (possible mid-layout-change) are
            # emitted as two deltas; downstream consumers sum them.
            self.emit(ColumnarDataset(columns, generic_weight, arity, tolerance))
        if fast_columns:
            width = len(fast_columns[0])
            columns = tuple(
                np.concatenate([group[index] for group in fast_columns])
                for index in range(width)
            )
            self.emit(
                ColumnarDataset(
                    columns, np.concatenate(fast_weights), fast_arity, tolerance
                )
            )

    # -- probes ----------------------------------------------------------
    def on_probe(self, probe: Probe, port: int = 0) -> None:
        current = self._arities[port]
        if current is self._UNSET:
            raise ProbeFallback("join side has no committed state to probe against")
        if probe.arity != current:
            if current is None:
                probe = _probe_as_opaque(probe)
            else:
                raise ProbeFallback("probe layout differs from join state layout")
        key_codes = self._key_codes(probe.columns, probe.arity, port)
        row_keys = _row_keys(probe.columns)
        side = self._sides[port]
        other = self._sides[1 - port]
        count = probe.weights.shape[0]

        order = np.lexsort((key_codes, probe.cands))
        sorted_cands = probe.cands[order]
        sorted_keys = key_codes[order]
        sorted_weights = probe.weights[order]
        sorted_columns = tuple(column[order] for column in probe.columns)
        boundaries = np.flatnonzero(
            np.concatenate(
                (
                    [True],
                    (sorted_cands[1:] != sorted_cands[:-1])
                    | (sorted_keys[1:] != sorted_keys[:-1]),
                )
            )
        )
        ends = np.append(boundaries[1:], count)

        # Validate the norm-preserving fast path per (candidate, key) group
        # and register pending rows, mirroring the sequential conditions.
        extra_records: list[Any] = []
        extra_weights: list[float] = []
        extra_cands: list[int] = []
        for start, end in zip(boundaries, ends):
            cand = int(sorted_cands[start])
            key_code = int(sorted_keys[start])
            part = side.get(key_code)
            if part is not None and part.negatives:
                raise ProbeFallback("join part holds negative weights")
            group_net = float(sorted_weights[start:end].sum())
            if abs(group_net) > NORM_TOLERANCE:
                raise ProbeFallback("probe changes a join key's normaliser")
            pending = self._probe_pending.get((cand, key_code))
            own_pending = pending[port] if pending else {}
            other_pending = pending[1 - port] if pending else {}
            for position in range(start, end):
                row = int(order[position])
                row_key = row_keys[row]
                old = (
                    (part.weight_of(row_key) if part else 0.0)
                    + own_pending.get(row_key, 0.0)
                )
                if old + float(sorted_weights[position]) < -NORM_TOLERANCE:
                    raise ProbeFallback("probe drives a join weight negative")
            # Cross against the other side's pending rows of the same
            # candidate (the delta-x-delta term of a self-join).
            if other_pending:
                own_part_norm = part.norm if part else 0.0
                other_part = other.get(key_code)
                denominator = own_part_norm + (other_part.norm if other_part else 0.0)
                if denominator > 0.0:
                    for position in range(start, end):
                        row = int(order[position])
                        change = float(sorted_weights[position])
                        for other_key, other_change in other_pending.items():
                            weight = change * other_change / denominator
                            if weight == 0.0:
                                continue
                            mine = _decode_key(row_keys[row], probe.arity)
                            theirs = _decode_key(other_key, self._arities[1 - port])
                            if port == 0:
                                extra_records.append(self._selector(mine, theirs))
                            else:
                                extra_records.append(self._selector(theirs, mine))
                            extra_weights.append(weight)
                            extra_cands.append(cand)
            if pending is None:
                pending = ({}, {})
                self._probe_pending[(cand, key_code)] = pending
            own_pending = pending[port]
            for position in range(start, end):
                row = int(order[position])
                row_key = row_keys[row]
                own_pending[row_key] = own_pending.get(row_key, 0.0) + float(
                    sorted_weights[position]
                )

        # Fused cross against the other side's committed state: one pass of
        # repeat/tile indexing over all (candidate, key) groups at once.
        unique_keys = np.unique(sorted_keys)
        other_parts = [other.get(int(key)) for key in unique_keys.tolist()]
        sizes = np.empty(unique_keys.shape[0], dtype=np.int64)
        denominators = np.empty(unique_keys.shape[0], dtype=np.float64)
        for index, (key, other_part) in enumerate(
            zip(unique_keys.tolist(), other_parts)
        ):
            own = side.get(int(key))
            denominator = (own.norm if own else 0.0) + (
                other_part.norm if other_part else 0.0
            )
            usable = other_part is not None and other_part.size and denominator > 0.0
            sizes[index] = other_part.size if usable else 0
            denominators[index] = denominator if usable else 1.0
        key_slot = np.searchsorted(unique_keys, sorted_keys)
        row_sizes = sizes[key_slot]
        total = int(row_sizes.sum())
        if total:
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            other_columns_list: list[list[np.ndarray]] = []
            other_weights_list: list[np.ndarray] = []
            other_width = 1 if self._arities[1 - port] is None else self._arities[1 - port]
            for other_part, size in zip(other_parts, sizes.tolist()):
                if size:
                    columns, weights = other_part.view()
                    other_columns_list.append(columns)
                    other_weights_list.append(weights)
            other_columns = [
                np.concatenate([group[index] for group in other_columns_list])
                for index in range(other_width)
            ]
            other_weights = np.concatenate(other_weights_list)
            # Re-map each key's offset into the concatenated arrays.
            compact_offsets = np.concatenate(
                ([0], np.cumsum(sizes[sizes > 0])[:-1])
            )
            full_offsets = np.zeros_like(offsets)
            full_offsets[sizes > 0] = compact_offsets
            rep = np.repeat(np.arange(count), row_sizes)
            local = np.arange(total) - np.repeat(
                np.concatenate(([0], np.cumsum(row_sizes)[:-1])), row_sizes
            )
            other_index = full_offsets[key_slot][rep] + local
            pair_weights = (
                sorted_weights[rep]
                * other_weights[other_index]
                / denominators[key_slot][rep]
            )
            out_cands = sorted_cands[rep]
            if port == 0:
                columns, arity = self._emit_pairs(
                    sorted_columns, other_columns, rep, other_index, pair_weights
                )
            else:
                columns, arity = self._emit_pairs(
                    other_columns, sorted_columns, other_index, rep, pair_weights
                )
            self.emit_probe(Probe(columns, pair_weights, out_cands, arity))
        if extra_records:
            self.emit_probe(
                _probe_from_records(
                    extra_records,
                    np.asarray(extra_weights, dtype=np.float64),
                    np.asarray(extra_cands, dtype=np.int64),
                )
            )

    def begin_batch(self) -> None:
        self._probe_pending = {}

    def state_entries(self) -> int:
        return sum(
            part.size for parts in self._sides for part in parts.values()
        )


# ----------------------------------------------------------------------
# Graph compiler
# ----------------------------------------------------------------------
class IncrementalGraph:
    """Compile wPINQ plans into a shared incremental columnar node DAG.

    Mirrors :class:`~repro.dataflow.engine.DataflowEngine` construction:
    shared sub-plans compile to shared nodes (a self-join is one node fed
    through both ports), and the subscription order fixes the propagation
    order so the incremental semantics match the dict-based engine exactly.
    """

    def __init__(self) -> None:
        self._sources: dict[str, SourceDeltaNode] = {}
        self._nodes: dict[int, DeltaNode] = {}
        self._plans: dict[int, Plan] = {}
        self._all_nodes: list[DeltaNode] = []

    # -- construction ----------------------------------------------------
    def compile(self, plan: Plan) -> DeltaNode:
        existing = self._nodes.get(id(plan))
        if existing is not None:
            return existing
        self._plans[id(plan)] = plan

        if isinstance(plan, SourcePlan):
            source = self._sources.get(plan.name)
            if source is None:
                source = SourceDeltaNode(plan.name)
                self._sources[plan.name] = source
                self._all_nodes.append(source)
            self._nodes[id(plan)] = source
            return source

        node: DeltaNode
        if isinstance(plan, SelectPlan):
            node = SelectDeltaNode(plan.mapper)
        elif isinstance(plan, PartitionPlan):
            node = WhereDeltaNode(plan.part_predicate, name="partition")
        elif isinstance(plan, WherePlan):
            node = WhereDeltaNode(plan.predicate)
        elif isinstance(plan, SelectManyPlan):
            node = SelectManyDeltaNode(plan.mapper)
        elif isinstance(plan, GroupByPlan):
            node = GroupByDeltaNode(plan.key, plan.reducer)
        elif isinstance(plan, ShavePlan):
            node = ShaveDeltaNode(plan.slice_weights)
        elif isinstance(plan, DistinctPlan):
            node = DistinctDeltaNode(plan.cap)
        elif isinstance(plan, DownScalePlan):
            node = DownScaleDeltaNode(plan.factor)
        elif isinstance(plan, JoinPlan):
            node = JoinDeltaNode(plan.left_key, plan.right_key, plan.result_selector)
        elif isinstance(plan, UnionPlan):
            node = UnionDeltaNode()
        elif isinstance(plan, IntersectPlan):
            node = IntersectDeltaNode()
        elif isinstance(plan, ConcatPlan):
            node = ConcatDeltaNode()
        elif isinstance(plan, ExceptPlan):
            node = ExceptDeltaNode()
        else:
            raise DataflowError(
                f"cannot compile plan node of type {type(plan).__name__} "
                f"for incremental columnar execution"
            )
        self._nodes[id(plan)] = node
        self._all_nodes.append(node)
        for port, child in enumerate(plan.children):
            self.compile(child).subscribe(node, port)
        return node

    def attach(self, plan: Plan, consumer: DeltaNode, port: int = 0) -> None:
        """Subscribe ``consumer`` (e.g. a measurement sink) to a plan's node."""
        self.compile(plan).subscribe(consumer, port)
        if consumer not in self._all_nodes:
            self._all_nodes.append(consumer)

    # -- data flow -------------------------------------------------------
    def source_names(self) -> set[str]:
        return set(self._sources)

    def push(self, source_name: str, delta: ColumnarDataset) -> None:
        source = self._sources.get(source_name)
        if source is None:
            return
        source.on_delta(delta, 0)

    def probe(self, probes: Sequence[tuple[str, Probe]]) -> None:
        """Propagate a batch of candidate probes (state is never mutated).

        Raises :class:`ProbeFallback` when any node cannot answer on its fast
        path; per-batch overlays are reset on entry, so a failed batch leaves
        no residue.
        """
        for node in self._all_nodes:
            node.begin_batch()
        for source_name, probe in probes:
            source = self._sources.get(source_name)
            if source is not None:
                source.on_probe(probe, 0)

    # -- introspection ---------------------------------------------------
    def state_entry_count(self) -> int:
        return sum(node.state_entries() for node in self._all_nodes)

    def node_count(self) -> int:
        return len(self._all_nodes)
