"""Dictionary-encoding of records and atoms into integer codes.

The columnar backend stores a weighted dataset as NumPy arrays of *codes*
rather than Python objects: every distinct atom (a vertex id, a degree, a
whole record) is assigned a small integer once, and from then on all
comparisons, sorts, joins and group-bys operate on ``int64`` arrays.  Because
the encoding is injective, code equality is record equality — which is what
lets :mod:`repro.columnar.kernels` replace per-record Python loops with
``np.lexsort`` / ``np.bincount`` / fancy indexing.

A single process-wide :class:`Interner` is shared by every
:class:`~repro.columnar.dataset.ColumnarDataset`, so codes produced by one
dataset are directly comparable with codes produced by any other (the binary
kernels rely on this).  Atoms unify exactly as ``dict`` keys do — ``1``,
``1.0`` and ``True`` share one code — because
:class:`~repro.core.dataset.WeightedDataset` is dictionary-backed and the
kernels must match records precisely when the eager backend would.  The
stored representative of a code is the first object ever interned for it,
process-wide, whereas a dict keeps the first key *per dataset*: datasets
mixing ``==``-equal atoms of different types may therefore materialise an
equal-but-differently-typed record (``(True, 3)`` for ``(1.0, 3)``), which
only a mapper that distinguishes ``==``-equal values (``str``, ``repr``,
``type``) can observe.  Weights, merges and joins are unaffected.

The table is append-only: codes are never reused or invalidated, so cached
code arrays stay valid for the life of the process.  Memory therefore grows
with the number of distinct atoms ever seen — protected records, but also
every distinct *intermediate* record the kernels produce (group-by prefix
tuples, shave slices); a long vectorized MCMC run grows the vocabulary
monotonically with the distinct intermediates its proposals generate, a
deliberate trade of memory for cross-dataset code compatibility.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..sanitize import ordered_lock

__all__ = [
    "Interner",
    "global_interner",
    "set_global_interner",
    "use_interner",
]


class Interner:
    """An append-only bijection between hashable atoms and ``int64`` codes.

    Lookup uses plain dictionary equality, so atoms that are ``==``-equal
    (``1``/``1.0``/``True``) share a single code and decode to the
    first-interned representative — the same unification a dict-backed
    :class:`~repro.core.dataset.WeightedDataset` performs on its keys, which
    keeps columnar record matching (joins, intersections, ``FieldIs``)
    agreeing with the eager backend.  See the module docstring for the
    representative caveat on mixed-type data.
    """

    __slots__ = ("_codes", "_atoms", "_lock")

    def __init__(self) -> None:
        self._codes: dict[Any, int] = {}
        self._atoms: list[Any] = []
        # Assigning a fresh code is a read-len/write-dict/append sequence; the
        # lock keeps it atomic so parallel synthesis chains (repro.inference
        # .parallel runs N chains in threads) cannot assign one code to two
        # atoms.  Reads of existing codes stay lock-free: the dict is
        # append-only, so a hit is always a committed, final value.
        self._lock = ordered_lock("columnar.interner", 75)  # lock-order: 75

    def __len__(self) -> int:
        return len(self._atoms)

    def stats(self) -> dict[str, int]:
        """Observability for the documented monotonic-growth trade-off.

        ``atoms`` is the vocabulary size (every distinct atom ever seen,
        including intermediates the kernels produce) and ``table_bytes`` an
        estimate of the resident encoding state — the dict and list overhead,
        not the atoms' own payloads.  Sampling this before/after a workload
        turns "the interner grows monotonically" from a docstring warning into
        a number (``repro bench --mcmc`` reports it per backend).
        """
        return {
            "atoms": len(self._atoms),
            "table_bytes": sys.getsizeof(self._codes) + sys.getsizeof(self._atoms),
        }

    # ------------------------------------------------------------------
    def code(self, atom: Any) -> int:
        """Return the code for ``atom``, assigning a fresh one if needed."""
        code = self._codes.get(atom)
        if code is None:
            with self._lock:
                code = self._codes.get(atom)
                if code is None:
                    code = len(self._atoms)
                    self._atoms.append(atom)
                    self._codes[atom] = code
        return code

    def codes(self, atoms: Iterable[Any]) -> np.ndarray:
        """Encode an iterable of atoms as an ``int64`` array."""
        lookup = self._codes
        atoms = list(atoms)
        out = np.empty(len(atoms), dtype=np.int64)
        for index, atom in enumerate(atoms):
            code = lookup.get(atom)
            if code is None:
                code = self.code(atom)
            out[index] = code
        return out

    # ------------------------------------------------------------------
    def atom(self, code: int) -> Any:
        """Return the atom a code stands for."""
        return self._atoms[code]

    def atoms(self, codes: Sequence[int] | np.ndarray) -> list[Any]:
        """Decode an array of codes back into their atoms."""
        table = self._atoms
        if isinstance(codes, np.ndarray):
            codes = codes.tolist()
        return [table[code] for code in codes]


#: The process-wide interner every ColumnarDataset encodes against.
_GLOBAL = Interner()


def global_interner() -> Interner:
    """The shared interner (one encoding per process, so codes compose)."""
    return _GLOBAL


def set_global_interner(interner: Interner) -> Interner:
    """Replace the process-wide interner, returning the previous one.

    The seam :mod:`repro.shard` uses: a worker process installs its
    :class:`~repro.shard.interner.ShardInterner` once at startup so every
    dataset it builds encodes against the frozen snapshot + its private
    extension namespace.  Codes encoded against different interners are *not*
    comparable — swapping mid-stream invalidates every cached code array, so
    callers must only swap at process start or around a fully self-contained
    execution (see :func:`use_interner`).
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = interner
    return previous


@contextmanager
def use_interner(interner: Interner) -> Iterator[Interner]:
    """Run a block with ``interner`` installed as the process-wide interner.

    Used by the inline (single-process) shard path and by tests.  Not safe
    under concurrency: the swap is process-global, so the block must not run
    alongside other threads encoding datasets.
    """
    previous = set_global_interner(interner)
    try:
        yield interner
    finally:
        set_global_interner(previous)
