"""Vectorized kernels for every stable transformation.

Each function here mirrors one transformation in
:mod:`repro.core.transformations`, taking and returning
:class:`~repro.columnar.dataset.ColumnarDataset` values with *identical*
weighted-output semantics (the property-based test suite checks agreement
within ``DEFAULT_TOLERANCE`` and Definition-2 stability for every kernel).

Two execution strategies coexist in every kernel that is parameterised by a
record function:

* a **fast path** used when the function is a recognised
  :mod:`~repro.columnar.specs` spec and the dataset is decomposed into field
  columns — pure array work (``np.lexsort`` merges, ``np.bincount`` group
  sums, fancy-indexed joins), no per-record Python;
* a **generic path** that materialises the record objects once and calls the
  user function per record (or per joined pair), matching what the eager
  backend would do while still vectorizing the weight arithmetic and the
  final collision accumulation.

The join kernel is the reason this backend exists: the per-key Cartesian
pairing, the ``‖A_k‖ + ‖B_k‖`` denominators and the output weights are all
computed with array operations, so the length-two-path self-join at the heart
of the paper's subgraph queries runs at NumPy speed.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..core import transformations as xf
from ..core.transformations import _weight_sequence, normalize_weighted_output
from .dataset import ColumnarDataset, row_groups
from .interning import global_interner
from .specs import (
    Constant,
    ExplodeFields,
    Field,
    FieldIs,
    FieldsDiffer,
    JoinFields,
    Permute,
)

__all__ = [
    "select",
    "where",
    "select_many",
    "group_by",
    "shave",
    "join",
    "union",
    "intersect",
    "concat",
    "except_",
    "distinct",
    "down_scale",
]


# ----------------------------------------------------------------------
# Layout alignment for binary operators
# ----------------------------------------------------------------------
def _aligned(
    left: ColumnarDataset, right: ColumnarDataset
) -> tuple[ColumnarDataset, ColumnarDataset]:
    """Bring two datasets onto one layout so their rows can be merged."""
    if left.arity == right.arity:
        return left, right
    if left.is_empty():
        return ColumnarDataset.empty(left.tolerance, right.arity), right
    if right.is_empty():
        return left, ColumnarDataset.empty(right.tolerance, left.arity)
    return left.as_opaque(), right.as_opaque()


def _merge_sides(
    left: ColumnarDataset, right: ColumnarDataset
) -> tuple[tuple[np.ndarray, ...], np.ndarray, np.ndarray, int | None]:
    """Outer-align the rows of two datasets.

    Returns the unique rows of the union of supports plus each side's weight
    vector over those rows (zero where a side lacks the record — exactly the
    ``A(x) = 0`` convention of the eager operators).
    """
    left, right = _aligned(left, right)
    columns = tuple(
        np.concatenate([lcol, rcol])
        for lcol, rcol in zip(left.columns, right.columns)
    )
    count = columns[0].shape[0] if columns else 0
    if count == 0:
        empty = np.empty(0, dtype=np.float64)
        return columns, empty, empty.copy(), left.arity
    left_mask = np.zeros(count, dtype=bool)
    left_mask[: len(left)] = True
    stacked = np.concatenate([left.weights, right.weights])
    order, sorted_columns, group, representatives = row_groups(columns)
    stacked = stacked[order]
    left_mask = left_mask[order]
    groups = int(group[-1]) + 1
    left_weights = np.bincount(
        group, weights=np.where(left_mask, stacked, 0.0), minlength=groups
    )
    right_weights = np.bincount(
        group, weights=np.where(left_mask, 0.0, stacked), minlength=groups
    )
    columns = tuple(column[representatives] for column in sorted_columns)
    return columns, left_weights, right_weights, left.arity


# ----------------------------------------------------------------------
# Per-record transformations
# ----------------------------------------------------------------------
def select(dataset: ColumnarDataset, mapper: Callable[[Any], Any]) -> ColumnarDataset:
    """``Select(A, f)(x) = Σ_{y : f(y) = x} A(y)`` (see ``xf.select``)."""
    if dataset.decomposed:
        arity = dataset.arity
        if isinstance(mapper, Permute) and all(i < arity for i in mapper.indices):
            columns = tuple(dataset.columns[i] for i in mapper.indices)
            return ColumnarDataset(
                columns,
                dataset.weights,
                len(mapper.indices),
                dataset.tolerance,
                assume_unique=mapper.is_permutation_of(arity),
            )
        if isinstance(mapper, Field) and mapper.index < arity:
            return ColumnarDataset(
                (dataset.columns[mapper.index],),
                dataset.weights,
                None,
                dataset.tolerance,
            )
    if isinstance(mapper, Constant):
        total = float(dataset.weights.sum())
        code = global_interner().code(mapper.value)
        return ColumnarDataset(
            (np.array([code], dtype=np.int64),),
            np.array([total], dtype=np.float64),
            None,
            dataset.tolerance,
            assume_unique=True,
        )
    mapped = [mapper(record) for record in dataset.records()]
    return ColumnarDataset.from_pairs(mapped, dataset.weights, dataset.tolerance)


def where(
    dataset: ColumnarDataset, predicate: Callable[[Any], bool]
) -> ColumnarDataset:
    """``Where(A, p)(x) = p(x) · A(x)`` (see ``xf.where``)."""
    mask: np.ndarray | None = None
    if dataset.decomposed:
        arity = dataset.arity
        if (
            isinstance(predicate, FieldsDiffer)
            and predicate.first < arity
            and predicate.second < arity
        ):
            mask = dataset.columns[predicate.first] != dataset.columns[predicate.second]
        elif isinstance(predicate, FieldIs) and predicate.index < arity:
            try:
                code = global_interner().code(predicate.value)
            except TypeError:
                # Unhashable comparison value: the eager semantics (== per
                # record) still apply, so fall through to the generic path.
                code = None
            if code is not None:
                mask = dataset.columns[predicate.index] == code
    if mask is None:
        mask = np.fromiter(
            (bool(predicate(record)) for record in dataset.records()),
            dtype=bool,
            count=len(dataset),
        )
    return ColumnarDataset(
        tuple(column[mask] for column in dataset.columns),
        dataset.weights[mask],
        dataset.arity,
        dataset.tolerance,
        assume_unique=True,
    )


def distinct(dataset: ColumnarDataset, cap: float = 1.0) -> ColumnarDataset:
    """``Distinct(A, c)(x) = min(A(x), c)`` (see ``xf.distinct``)."""
    cap = float(cap)
    if cap <= 0:
        raise ValueError("Distinct cap must be positive")
    weights = np.minimum(dataset.weights, cap)
    return ColumnarDataset(
        dataset.columns, weights, dataset.arity, dataset.tolerance, assume_unique=True
    )


def down_scale(dataset: ColumnarDataset, factor: float) -> ColumnarDataset:
    """``DownScale(A, s)(x) = s · A(x)`` with ``0 < s ≤ 1`` (see ``xf.down_scale``)."""
    factor = float(factor)
    if not 0.0 < factor <= 1.0:
        raise ValueError("DownScale factor must satisfy 0 < factor <= 1")
    return ColumnarDataset(
        dataset.columns,
        dataset.weights * factor,
        dataset.arity,
        dataset.tolerance,
        assume_unique=True,
    )


def select_many(
    dataset: ColumnarDataset, mapper: Callable[[Any], Any]
) -> ColumnarDataset:
    """``SelectMany(A, f) = Σ_x A(x) · f(x) / max(1, ‖f(x)‖)`` (see ``xf.select_many``)."""
    if (
        isinstance(mapper, ExplodeFields)
        and dataset.decomposed
        and not dataset.is_empty()
    ):
        width = dataset.arity
        scale = 1.0 / max(1.0, float(width))
        codes = np.concatenate(dataset.columns)
        weights = np.tile(dataset.weights * scale, width)
        return ColumnarDataset((codes,), weights, None, dataset.tolerance)
    out_records: list[Any] = []
    out_weights: list[float] = []
    for record, weight in zip(dataset.records(), dataset.weights.tolist()):
        produced = normalize_weighted_output(mapper(record))
        produced_norm = sum(abs(w) for _, w in produced)
        scale = weight / max(1.0, produced_norm)
        for out_record, out_weight in produced:
            out_records.append(out_record)
            out_weights.append(out_weight * scale)
    return ColumnarDataset.from_pairs(out_records, out_weights, dataset.tolerance)


# ----------------------------------------------------------------------
# GroupBy
# ----------------------------------------------------------------------
def group_by(
    dataset: ColumnarDataset,
    key: Callable[[Any], Any],
    reducer: Callable[[Sequence[Any]], Any] = tuple,
) -> ColumnarDataset:
    """Keyed grouping via the weighted-prefix construction (see ``xf.group_by``).

    The prefix emission is inherently record-level (it calls the reducer per
    prefix and orders ties by ``repr``), so this kernel partitions in Python
    and reuses ``xf.group_prefixes`` verbatim for exact eager agreement; only
    the final collision accumulation is vectorized.
    """
    parts: dict[Any, dict[Any, float]] = {}
    for record, weight in zip(dataset.records(), dataset.weights.tolist()):
        parts.setdefault(key(record), {})[record] = weight
    out_records: list[Any] = []
    out_weights: list[float] = []
    for part_key, part in parts.items():
        for members, weight in xf.group_prefixes(part):  # duck-typed: dict.items()
            out_records.append((part_key, reducer(list(members))))
            out_weights.append(weight)
    return ColumnarDataset.from_pairs(out_records, out_weights, dataset.tolerance)


# ----------------------------------------------------------------------
# Shave
# ----------------------------------------------------------------------
def shave(dataset: ColumnarDataset, slice_weights: Any = 1.0) -> ColumnarDataset:
    """Break heavy records into indexed slices (see ``xf.shave``)."""
    tolerance = dataset.tolerance
    constant = (
        isinstance(slice_weights, (int, float))
        and not isinstance(slice_weights, bool)
    )
    if constant:
        slice_weight = float(slice_weights)
        if slice_weight <= 0:
            raise ValueError("Shave slice weight must be positive")
        weights = dataset.weights
        positive = weights > 0
        if not positive.any():
            return ColumnarDataset.empty(tolerance, arity=2)
        weights = weights[positive]
        record_codes = dataset.record_codes()[positive]
        counts = np.ceil((weights - tolerance) / slice_weight).astype(np.int64)
        counts = np.maximum(counts, 0)
        emitting = counts > 0
        weights, record_codes, counts = (
            weights[emitting],
            record_codes[emitting],
            counts[emitting],
        )
        total = int(counts.sum())
        if total == 0:
            return ColumnarDataset.empty(tolerance, arity=2)
        row = np.repeat(np.arange(counts.shape[0]), counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        slice_index = np.arange(total) - offsets[row]
        out_weights = np.full(total, slice_weight, dtype=np.float64)
        last = offsets + counts - 1
        out_weights[last] = weights - (counts - 1) * slice_weight
        interner = global_interner()
        index_codes = interner.codes(range(int(counts.max())))
        columns = (record_codes[row], index_codes[slice_index])
        return ColumnarDataset(columns, out_weights, 2, tolerance, assume_unique=True)
    # Sequence / callable slice specifications: per-record Python, mirroring
    # the eager loop exactly.
    out_records: list[Any] = []
    out_weights_list: list[float] = []
    for record, weight in zip(dataset.records(), dataset.weights.tolist()):
        if weight <= 0:
            continue
        sequence = _weight_sequence(slice_weights, record)
        consumed = 0.0
        index = 0
        while consumed < weight - tolerance:
            emitted_weight = sequence(index)
            if emitted_weight <= 0.0:
                break
            emitted = min(emitted_weight, weight - consumed)
            out_records.append((record, index))
            out_weights_list.append(emitted)
            consumed += emitted
            index += 1
    return ColumnarDataset.from_pairs(out_records, out_weights_list, tolerance)


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
def _key_codes(dataset: ColumnarDataset, key: Callable[[Any], Any]) -> np.ndarray:
    """Per-row join-key codes — a column pick for ``Field`` keys."""
    if (
        isinstance(key, Field)
        and dataset.decomposed
        and key.index < dataset.arity
    ):
        return dataset.columns[key.index]
    return global_interner().codes([key(record) for record in dataset.records()])


def join(
    left: ColumnarDataset,
    right: ColumnarDataset,
    left_key: Callable[[Any], Any],
    right_key: Callable[[Any], Any],
    result_selector: Callable[[Any, Any], Any] = lambda a, b: (a, b),
) -> ColumnarDataset:
    """wPINQ's weight-normalised equi-join, fully vectorized (see ``xf.join``).

    Per join key ``k`` every pair ``(a, b) ∈ A_k × B_k`` is emitted with
    weight ``A_k(a) · B_k(b) / (‖A_k‖ + ‖B_k‖)``.  Key matching, the
    per-key norms, the Cartesian pair index arrays and the output weights are
    all array operations; the output records are assembled by fancy-indexing
    the field columns when the selector is a :class:`JoinFields` spec, and by
    per-pair Python calls otherwise.
    """
    tolerance = left.tolerance
    if left.is_empty() or right.is_empty():
        return ColumnarDataset.empty(tolerance)
    left_codes = _key_codes(left, left_key)
    right_codes = _key_codes(right, right_key)
    left_order = np.argsort(left_codes, kind="stable")
    right_order = np.argsort(right_codes, kind="stable")
    left_keys, left_starts, left_counts = np.unique(
        left_codes[left_order], return_index=True, return_counts=True
    )
    right_keys, right_starts, right_counts = np.unique(
        right_codes[right_order], return_index=True, return_counts=True
    )
    _, left_hit, right_hit = np.intersect1d(
        left_keys, right_keys, assume_unique=True, return_indices=True
    )
    if left_hit.size == 0:
        return ColumnarDataset.empty(tolerance)
    left_norms = np.add.reduceat(np.abs(left.weights[left_order]), left_starts)
    right_norms = np.add.reduceat(np.abs(right.weights[right_order]), right_starts)
    denominators = left_norms[left_hit] + right_norms[right_hit]
    feasible = denominators > 0
    left_hit, right_hit = left_hit[feasible], right_hit[feasible]
    denominators = denominators[feasible]
    pair_counts = left_counts[left_hit] * right_counts[right_hit]
    total = int(pair_counts.sum())
    if total == 0:
        return ColumnarDataset.empty(tolerance)
    key_of_pair = np.repeat(np.arange(pair_counts.shape[0]), pair_counts)
    offsets = np.concatenate(([0], np.cumsum(pair_counts)[:-1]))
    local = np.arange(total) - offsets[key_of_pair]
    fanout = right_counts[right_hit][key_of_pair]
    left_rows = left_order[left_starts[left_hit][key_of_pair] + local // fanout]
    right_rows = right_order[right_starts[right_hit][key_of_pair] + local % fanout]
    weights = (
        left.weights[left_rows]
        * right.weights[right_rows]
        / denominators[key_of_pair]
    )
    if (
        isinstance(result_selector, JoinFields)
        and left.decomposed
        and right.decomposed
        and all(
            index < (left.arity if side == "l" else right.arity)
            for side, index in result_selector.picks
        )
    ):
        columns = tuple(
            left.columns[index][left_rows]
            if side == "l"
            else right.columns[index][right_rows]
            for side, index in result_selector.picks
        )
        return ColumnarDataset(
            columns, weights, len(result_selector.picks), tolerance
        )
    left_records = left.records()
    right_records = right.records()
    out_records = [
        result_selector(left_records[a], right_records[b])
        for a, b in zip(left_rows.tolist(), right_rows.tolist())
    ]
    return ColumnarDataset.from_pairs(out_records, weights, tolerance)


# ----------------------------------------------------------------------
# Set-like binary operators
# ----------------------------------------------------------------------
def union(left: ColumnarDataset, right: ColumnarDataset) -> ColumnarDataset:
    """``Union(A, B)(x) = max(A(x), B(x))`` (see ``xf.union``)."""
    columns, left_weights, right_weights, arity = _merge_sides(left, right)
    return ColumnarDataset(
        columns,
        np.maximum(left_weights, right_weights),
        arity,
        left.tolerance,
        assume_unique=True,
    )


def intersect(left: ColumnarDataset, right: ColumnarDataset) -> ColumnarDataset:
    """``Intersect(A, B)(x) = min(A(x), B(x))`` (see ``xf.intersect``)."""
    columns, left_weights, right_weights, arity = _merge_sides(left, right)
    return ColumnarDataset(
        columns,
        np.minimum(left_weights, right_weights),
        arity,
        left.tolerance,
        assume_unique=True,
    )


def concat(left: ColumnarDataset, right: ColumnarDataset) -> ColumnarDataset:
    """``Concat(A, B)(x) = A(x) + B(x)`` (see ``xf.concat``)."""
    columns, left_weights, right_weights, arity = _merge_sides(left, right)
    return ColumnarDataset(
        columns,
        left_weights + right_weights,
        arity,
        left.tolerance,
        assume_unique=True,
    )


def except_(left: ColumnarDataset, right: ColumnarDataset) -> ColumnarDataset:
    """``Except(A, B)(x) = A(x) − B(x)`` (see ``xf.except_``)."""
    columns, left_weights, right_weights, arity = _merge_sides(left, right)
    return ColumnarDataset(
        columns,
        left_weights - right_weights,
        arity,
        left.tolerance,
        assume_unique=True,
    )
