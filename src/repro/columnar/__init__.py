"""The columnar vectorized execution backend.

This package is the third execution engine behind the
:class:`~repro.core.executor.Executor` protocol, alongside the eager
evaluator and the incremental dataflow engine:

* :mod:`~repro.columnar.interning` — process-wide dictionary encoding of
  records/atoms into ``int64`` codes;
* :mod:`~repro.columnar.dataset` — :class:`ColumnarDataset`, weighted data as
  per-field code columns plus a ``float64`` weight vector;
* :mod:`~repro.columnar.specs` — introspectable record functions (field
  picks, permutations, join selectors) that behave as plain callables on
  every backend but compile to array operations here;
* :mod:`~repro.columnar.kernels` — vectorized implementations of all twelve
  stable transformations with eager-identical semantics;
* :mod:`~repro.columnar.executor` — :class:`VectorizedExecutor` (select it
  with ``PrivacySession(executor="vectorized")``) and :class:`AutoExecutor`
  (``executor="auto"``), which routes each plan by input size;
* :mod:`~repro.columnar.bench` — the eager/dataflow/vectorized comparison
  harness behind ``repro bench`` and ``benchmarks/bench_columnar.py``.
"""

from .interning import Interner, global_interner, set_global_interner, use_interner
from .specs import (
    ColumnarSpec,
    Constant,
    ExplodeFields,
    Field,
    FieldIs,
    FieldsDiffer,
    GroupSize,
    JoinFields,
    Permute,
)
from . import specs

#: Heavy pieces resolved lazily (PEP 562): the analyses import this package
#: for the spec vocabulary alone, and eager/dataflow-only sessions should not
#: pay for the kernels and executors.
_LAZY = {
    "ColumnarDataset": ("dataset", "ColumnarDataset"),
    "consolidate": ("dataset", "consolidate"),
    "row_groups": ("dataset", "row_groups"),
    "VectorizedExecutor": ("executor", "VectorizedExecutor"),
    "AutoExecutor": ("executor", "AutoExecutor"),
    "DEFAULT_AUTO_THRESHOLD": ("executor", "DEFAULT_AUTO_THRESHOLD"),
    "kernels": ("kernels", None),
    "bench": ("bench", None),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{target[0]}", __name__)
    return module if target[1] is None else getattr(module, target[1])

__all__ = [
    "ColumnarDataset",
    "VectorizedExecutor",
    "AutoExecutor",
    "DEFAULT_AUTO_THRESHOLD",
    "Interner",
    "global_interner",
    "set_global_interner",
    "use_interner",
    "kernels",
    "specs",
    "ColumnarSpec",
    "Field",
    "Permute",
    "Constant",
    "JoinFields",
    "FieldsDiffer",
    "FieldIs",
    "ExplodeFields",
    "GroupSize",
]
