"""Backend comparison harness: eager vs dataflow vs vectorized.

One function, :func:`backend_comparison`, drives the same join-heavy
measurement batch — the wedge-centre histogram and Triangles-by-Intersect,
both built on the ``length_two_paths`` self-join — through any subset of the
execution backends over one generated graph, and reports wall-clock seconds
plus speedups relative to the eager baseline.  It backs both the
``repro bench`` CLI subcommand (which writes ``BENCH_columnar.json``) and the
``benchmarks/bench_columnar.py`` regression benchmark (which asserts the
vectorized backend's ≥3× speedup on ≥10k-edge graphs).

Timing covers the measurement batch only; graph generation, protection and
session setup are excluded, and the same seed is used for every backend so
they evaluate identical plans over identical data (and, thanks to the
canonical noise order, release identical measurements).
"""

from __future__ import annotations

import time
from typing import Sequence

from ..analyses import (
    length_two_paths,
    protect_graph,
    triangles_by_intersect_query,
)
from ..core.queryable import PrivacySession
from ..graph.generators import erdos_renyi
from .specs import Field

__all__ = ["BACKENDS", "backend_comparison", "format_comparison"]

#: Backends the comparison knows how to drive, in report order.
BACKENDS = ("eager", "dataflow", "vectorized")


def _measure_once(backend: str, graph, seed: int) -> tuple[float, int]:
    """One timed run of the workload batch on ``backend``.

    Returns (seconds, released record count).  A fresh session per run keeps
    budgets, noise state and executor caches comparable across backends.
    """
    session = PrivacySession(seed=seed, executor=backend)
    edges = protect_graph(session, graph, total_epsilon=float("inf"))
    paths = length_two_paths(edges)
    requests = [
        (paths.select(Field(1)), 0.1, "wedge_centers"),
        (triangles_by_intersect_query(edges), 0.1, "tbi"),
    ]
    started = time.perf_counter()
    results = session.measure(*requests)
    elapsed = time.perf_counter() - started
    return elapsed, sum(len(result) for result in results)


def backend_comparison(
    edges: int = 10_000,
    seed: int = 0,
    rounds: int = 3,
    backends: Sequence[str] = BACKENDS,
) -> dict:
    """Time the join-heavy workload on each backend; return a report dict.

    ``edges`` is the number of undirected edges of the generated
    Erdős–Rényi graph (the protected symmetric dataset has ``2 × edges``
    records); each backend's time is the minimum over ``rounds`` runs.
    """
    if edges < 2:
        raise ValueError("the benchmark graph needs at least two edges")
    backends = list(backends)
    unknown = [name for name in backends if name not in BACKENDS]
    if unknown:
        raise ValueError(f"unknown backends: {unknown} (choose from {BACKENDS})")
    nodes = max(4, edges // 2)
    graph = erdos_renyi(nodes, edges, rng=seed)
    report: dict = {
        "workload": "length_two_paths -> wedge_centers + triangles_by_intersect",
        "edges": edges,
        "nodes": nodes,
        "rounds": rounds,
        "backends": {},
        "speedups": {},
    }
    for backend in backends:
        best = None
        released = 0
        for round_index in range(rounds):
            elapsed, released = _measure_once(backend, graph, seed)
            best = elapsed if best is None else min(best, elapsed)
        report["backends"][backend] = {
            "seconds": best,
            "released_records": released,
        }
    baseline = report["backends"].get("eager", {}).get("seconds")
    if baseline:
        for backend, stats in report["backends"].items():
            report["speedups"][backend] = baseline / stats["seconds"]
    return report


def format_comparison(report: dict) -> str:
    """Render a :func:`backend_comparison` report as the CLI table."""
    from ..experiments import format_table

    rows = []
    for backend, stats in report["backends"].items():
        speedup = report["speedups"].get(backend)
        rows.append(
            (
                backend,
                f"{stats['seconds']:.4f}",
                f"{speedup:.2f}x" if speedup else "n/a",
                stats["released_records"],
            )
        )
    return format_table(
        ["backend", "seconds", "speedup vs eager", "released records"],
        rows,
        title=(
            f"Backend comparison — {report['workload']} "
            f"({report['edges']} edges, best of {report['rounds']})"
        ),
    )
