"""Columnar weighted datasets: interned-code arrays plus a weight vector.

A :class:`ColumnarDataset` holds the same mathematical object as
:class:`~repro.core.dataset.WeightedDataset` — a finite-support function from
records to real weights — but stores it as NumPy arrays:

* ``columns`` — one ``int64`` code array per record *field* when every record
  is a ``k``-tuple (``arity == k``, the *decomposed* layout), or a single code
  array of whole-record codes otherwise (``arity is None``, the *opaque*
  layout).  Codes come from the process-wide
  :func:`~repro.columnar.interning.global_interner`, so they are comparable
  across datasets.
* ``weights`` — an aligned ``float64`` vector.

Invariants: rows are unique (one row per record with non-zero weight) and
every weight satisfies ``|w| > tolerance``, mirroring ``WeightedDataset``.
Datasets are value objects — kernels never mutate ``columns``/``weights`` of
an existing dataset (the MCMC engine's mutable sources build *snapshots*).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from ..core.dataset import DEFAULT_TOLERANCE, WeightedDataset
from .interning import global_interner

__all__ = ["ColumnarDataset", "consolidate", "row_groups", "encode_query_rows"]


def encode_query_rows(
    records: Sequence[Any], width: int, arity: int | None
) -> np.ndarray:
    """Encode probe records as an ``(n, width)`` code matrix for one layout.

    Rows that cannot match the layout (non-tuples, wrong arity) are filled
    with the ``-1`` sentinel, which never equals a real code.  The matrix
    stays valid as long as the probed datasets keep that layout, so callers
    probing a fixed record set every MCMC step encode once and reuse it.
    """
    queries = np.full((len(records), width), -1, dtype=np.int64)
    interner = global_interner()
    for position, record in enumerate(records):
        if arity is None:
            queries[position, 0] = interner.code(record)
        elif isinstance(record, tuple) and len(record) == arity:
            # isinstance, not an exact type check: a namedtuple probe is
            # ==-equal to the plain-tuple rows and must match them.
            for column, field in enumerate(record):
                queries[position, column] = interner.code(field)
    return queries


def row_groups(
    columns: Sequence[np.ndarray],
) -> tuple[np.ndarray, list[np.ndarray], np.ndarray, np.ndarray]:
    """Lexicographically sort rows and detect equal-row groups.

    Returns ``(order, sorted_columns, group_index, representatives)`` where
    ``order`` is the lexsort permutation, ``group_index[i]`` numbers the
    group of sorted row ``i`` and ``representatives`` holds the sorted-row
    position of each group's first row.  This is the one row-merge primitive
    shared by :func:`consolidate` and the binary kernels, so both agree on
    row ordering by construction.
    """
    count = columns[0].shape[0]
    order = np.lexsort(tuple(columns)[::-1])
    sorted_columns = [column[order] for column in columns]
    boundary = np.zeros(count, dtype=bool)
    boundary[0] = True
    for column in sorted_columns:
        np.logical_or(boundary[1:], column[1:] != column[:-1], out=boundary[1:])
    group_index = np.cumsum(boundary) - 1
    return order, sorted_columns, group_index, np.flatnonzero(boundary)


def consolidate(
    columns: Sequence[np.ndarray],
    weights: np.ndarray,
    tolerance: float,
    assume_unique: bool = False,
) -> tuple[tuple[np.ndarray, ...], np.ndarray]:
    """Merge duplicate rows (summing weights) and drop sub-tolerance dust.

    The row order of the result is the lexicographic code order, which is
    deterministic for a fixed interner state.  ``assume_unique`` skips the
    sort/merge when the caller guarantees rows are already distinct.
    """
    weights = np.asarray(weights, dtype=np.float64)
    count = weights.shape[0]
    if count and not assume_unique:
        order, columns, group_index, representatives = row_groups(columns)
        weights = np.bincount(group_index, weights=weights[order])
        columns = [column[representatives] for column in columns]
    keep = np.abs(weights) > tolerance
    if not keep.all():
        columns = [column[keep] for column in columns]
        weights = weights[keep]
    return tuple(columns), weights


class ColumnarDataset:
    """An immutable weighted dataset in columnar, dictionary-encoded form."""

    __slots__ = (
        "columns",
        "weights",
        "arity",
        "tolerance",
        "_record_codes",
        "_records",
        "_norm",
    )

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        weights: np.ndarray,
        arity: int | None,
        tolerance: float = DEFAULT_TOLERANCE,
        assume_unique: bool = False,
    ) -> None:
        columns, weights = consolidate(columns, weights, tolerance, assume_unique)
        expected = 1 if arity is None else arity
        if len(columns) != expected:
            raise ValueError(
                f"expected {expected} columns for arity {arity!r}, got {len(columns)}"
            )
        self.columns = columns
        self.weights = weights
        self.arity = arity
        self.tolerance = float(tolerance)
        self._record_codes: np.ndarray | None = (
            columns[0] if arity is None else None
        )
        self._records: list | None = None
        self._norm: float | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls, tolerance: float = DEFAULT_TOLERANCE, arity: int | None = None
    ) -> "ColumnarDataset":
        """The empty dataset in the given layout."""
        width = 1 if arity is None else arity
        columns = tuple(np.empty(0, dtype=np.int64) for _ in range(width))
        return cls(columns, np.empty(0, dtype=np.float64), arity, tolerance, True)

    @classmethod
    def from_pairs(
        cls,
        records: Iterable[Any],
        weights: Iterable[float] | np.ndarray,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> "ColumnarDataset":
        """Build from aligned records and weights, detecting the layout.

        Records that are all plain tuples of one common length decompose into
        per-field columns (the layout the vectorized join/filter fast paths
        need); anything else — scalars, strings, mixed arities, namedtuples —
        is stored opaquely as whole-record codes.  ``type(r) is tuple`` is
        checked exactly so tuple subclasses survive round-trips intact.
        """
        records = list(records)
        weights = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.float64)
        if len(records) != weights.shape[0]:
            raise ValueError("records and weights must be aligned")
        interner = global_interner()
        if records and all(type(record) is tuple for record in records):
            width = len(records[0])
            if width >= 1 and all(len(record) == width for record in records):
                columns = tuple(
                    interner.codes([record[index] for record in records])
                    for index in range(width)
                )
                return cls(columns, weights, width, tolerance)
        return cls((interner.codes(records),), weights, None, tolerance)

    @classmethod
    def from_weighted(
        cls, dataset: WeightedDataset, tolerance: float | None = None
    ) -> "ColumnarDataset":
        """Encode a :class:`WeightedDataset` (records unique by construction)."""
        records = list(dataset.records())
        weights = np.fromiter(
            (dataset.weight(record) for record in records),
            dtype=np.float64,
            count=len(records),
        )
        return cls.from_pairs(
            records,
            weights,
            dataset.tolerance if tolerance is None else tolerance,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Support size (rows with non-zero weight)."""
        return int(self.weights.shape[0])

    def is_empty(self) -> bool:
        return self.weights.shape[0] == 0

    @property
    def decomposed(self) -> bool:
        """True when records are stored as per-field columns."""
        return self.arity is not None

    def total_weight(self) -> float:
        """``‖A‖ = Σ_x |A(x)|``."""
        if self._norm is None:
            self._norm = float(np.abs(self.weights).sum())
        return self._norm

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def record_codes(self) -> np.ndarray:
        """Whole-record codes (decomposed layouts intern their tuples once)."""
        if self._record_codes is None:
            self._record_codes = global_interner().codes(self.records())
        return self._record_codes

    def records(self) -> list[Any]:
        """The record objects, row-aligned with :attr:`weights` (cached)."""
        if self._records is None:
            interner = global_interner()
            if self.arity is None:
                self._records = interner.atoms(self.columns[0])
            else:
                self._records = list(
                    zip(*(interner.atoms(column) for column in self.columns))
                )
        return self._records

    def weights_for(self, records: Sequence[Any]) -> np.ndarray:
        """Vectorized weight lookup: ``[A(r) for r in records]`` (0 if absent).

        Encoding the (typically few) query records is per-record Python, but
        the dataset side stays columnar: rows are packed and binary-searched,
        so the cost is O(rows · log rows) array work instead of decoding the
        whole support into Python objects.  This is the read primitive of the
        MCMC scorer, which probes a fixed released-record set against a large
        query output every step — and caches the encoded query matrix across
        steps via :func:`encode_query_rows` / :meth:`weights_for_codes`.
        """
        records = list(records)
        return self.weights_for_codes(
            encode_query_rows(records, len(self.columns), self.arity)
        )

    def weights_for_codes(self, queries: np.ndarray) -> np.ndarray:
        """Like :meth:`weights_for` for a pre-encoded ``(n, width)`` query
        matrix (as produced by :func:`encode_query_rows` for this layout)."""
        width = len(self.columns)
        out = np.zeros(queries.shape[0], dtype=np.float64)
        if self.is_empty() or not queries.shape[0]:
            return out
        rows = np.column_stack(self.columns)
        order = np.lexsort(tuple(self.columns)[::-1])
        rows = rows[order]
        positions = np.searchsorted(
            rows.view([("", np.int64)] * width).ravel(),
            np.ascontiguousarray(queries).view([("", np.int64)] * width).ravel(),
        )
        positions = np.minimum(positions, rows.shape[0] - 1)
        hits = (rows[positions] == queries).all(axis=1)
        out[hits] = self.weights[order][positions[hits]]
        return out

    def as_opaque(self) -> "ColumnarDataset":
        """This dataset re-encoded with one whole-record code column."""
        if self.arity is None:
            return self
        return ColumnarDataset(
            (self.record_codes(),), self.weights, None, self.tolerance, True
        )

    def to_weighted(self) -> WeightedDataset:
        """Decode back into a dictionary-backed :class:`WeightedDataset`."""
        return WeightedDataset(
            zip(self.records(), self.weights.tolist()), tolerance=self.tolerance
        )

    def __repr__(self) -> str:
        # Sanctioned debug affordance (as in WeightedDataset.__repr__): the
        # norm is shown for interactive use only, never logged on release.
        layout = "opaque" if self.arity is None else f"arity={self.arity}"
        return (
            f"ColumnarDataset(rows={len(self)}, {layout}, "  # lint: disable=R004
            f"norm={self.total_weight():.6g})"
        )
