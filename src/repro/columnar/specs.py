"""Introspectable record functions the vectorized kernels can compile.

wPINQ transformations are parameterised by arbitrary Python callables (key
selectors, mappers, predicates), which every backend can always execute by
calling them record-by-record.  The columnar backend additionally recognises
the *structural* callables defined here — field picks, permutations, field
comparisons — and replaces the per-record calls with array operations on the
decomposed field columns.

Every spec is a plain callable with exactly the semantics of the lambda it
stands in for, so query plans built from specs behave identically on the
eager and dataflow backends; only the vectorized backend inspects them.  The
analyses use them for their hot joins (``length_two_paths`` builds its key
selectors from :class:`Field` and its result selector from
:class:`JoinFields`), which is what gives the join-heavy graph queries a
fully vectorized execution path.

This module deliberately has no NumPy dependency: specs are shared vocabulary
between the plan layer and the kernels, not kernels themselves.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = [
    "ColumnarSpec",
    "Field",
    "Permute",
    "Constant",
    "JoinFields",
    "FieldsDiffer",
    "FieldIs",
    "ExplodeFields",
    "GroupSize",
]


class ColumnarSpec:
    """Marker base class for callables the vectorized kernels understand."""

    __slots__ = ()

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and all(
            getattr(other, name) == getattr(self, name) for name in self.__slots__
        )

    def __hash__(self) -> int:
        return hash(
            (type(self),) + tuple(getattr(self, name) for name in self.__slots__)
        )


class Field(ColumnarSpec):
    """``record -> record[index]`` — a single-field pick (key selectors)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = int(index)

    def __call__(self, record: Any) -> Any:
        return record[self.index]


class Permute(ColumnarSpec):
    """``record -> tuple(record[i] for i in indices)`` — reorder/project fields.

    ``Permute(1, 0)`` is edge reversal, ``Permute(1, 2, 0)`` rotates a
    length-two path, ``Permute(0, 2)`` projects a path onto its endpoints.
    """

    __slots__ = ("indices",)

    def __init__(self, *indices: int) -> None:
        if not indices:
            raise ValueError("Permute requires at least one field index")
        self.indices = tuple(int(index) for index in indices)

    def __call__(self, record: Any) -> tuple:
        return tuple(record[index] for index in self.indices)

    def is_permutation_of(self, arity: int) -> bool:
        """True when the pick is a bijection on ``arity``-tuples."""
        return sorted(self.indices) == list(range(arity))


class Constant(ColumnarSpec):
    """``record -> value`` — funnel all weight onto a single record."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __call__(self, record: Any) -> Any:
        return self.value


class JoinFields(ColumnarSpec):
    """A join result selector assembling output tuples from both sides.

    ``picks`` is a sequence of ``("l", i)`` / ``("r", i)`` pairs; the output
    record is the tuple of the picked fields in order.  The
    ``length_two_paths`` selector ``(a, b) ⋈ (b, c) -> (a, b, c)`` is
    ``JoinFields(("l", 0), ("l", 1), ("r", 1))``.
    """

    __slots__ = ("picks",)

    def __init__(self, *picks: tuple[str, int]) -> None:
        if not picks:
            raise ValueError("JoinFields requires at least one pick")
        normalised = []
        for side, index in picks:
            if side not in ("l", "r"):
                raise ValueError(f"pick side must be 'l' or 'r', got {side!r}")
            normalised.append((side, int(index)))
        self.picks = tuple(normalised)

    def __call__(self, left: Any, right: Any) -> tuple:
        return tuple(
            (left if side == "l" else right)[index] for side, index in self.picks
        )


class FieldsDiffer(ColumnarSpec):
    """``record -> record[i] != record[j]`` — the non-degeneracy predicate."""

    __slots__ = ("first", "second")

    def __init__(self, first: int, second: int) -> None:
        self.first = int(first)
        self.second = int(second)

    def __call__(self, record: Any) -> bool:
        return record[self.first] != record[self.second]


class FieldIs(ColumnarSpec):
    """``record -> record[index] == value`` — keep one field value only."""

    __slots__ = ("index", "value")

    def __init__(self, index: int, value: Any) -> None:
        self.index = int(index)
        self.value = value

    def __call__(self, record: Any) -> bool:
        return record[self.index] == self.value


class GroupSize(ColumnarSpec):
    """``group -> len(group) // bucket`` — the degree/bucketed-degree reducer.

    With ``bucket == 1`` this is exactly ``len``, the reducer of the
    ``(vertex, degree)`` dataset (Section 2.5); larger buckets apply the
    integer-division bucketing remedy of Section 5.2.  Expressed as a spec it
    is picklable, so group-by plans built from it — ``node_degrees`` feeds
    every MCMC fitting workload — can cross process boundaries
    (:mod:`repro.shard`) without shipping closures.
    """

    __slots__ = ("bucket",)

    def __init__(self, bucket: int = 1) -> None:
        bucket = int(bucket)
        if bucket < 1:
            raise ValueError("bucket must be a positive integer")
        self.bucket = bucket

    def __call__(self, group: Sequence[Any]) -> int:
        return len(group) // self.bucket if self.bucket > 1 else len(group)


class ExplodeFields(ColumnarSpec):
    """A SelectMany mapper emitting every field of the record at unit weight.

    Used by ``nodes_from_edges``: each edge produces both endpoints, and the
    SelectMany rescaling divides the record's weight by the field count.  The
    fields are returned as explicit ``(field, 1.0)`` pairs so that a field
    which happens to be a ``(value, number)`` tuple cannot be misread as a
    weighted pair by ``normalize_weighted_output`` — the eager and vectorized
    executions are unambiguous and identical.
    """

    __slots__ = ()

    def __call__(self, record: Sequence[Any]) -> list:
        return [(field, 1.0) for field in record]
