"""Generic path and cycle (motif) machinery (Section 3.5).

The triangle and square queries are instances of a general recipe: build
length-``k`` paths by repeatedly joining the edge set with itself, then tease
out the desired subgraph structure with further joins or intersections.  This
module provides that recipe for arbitrary ``k``:

* :func:`paths_query` — all simple directed paths on ``k`` edges;
* :func:`cycles_by_intersect_query` — the TbI idea generalised: a length-
  ``(k−1)`` path survives intersection with its own rotation exactly when it
  closes into a ``k``-cycle, and all surviving weight is funnelled onto one
  record.

As the paper notes, general motif queries mix records of varying weight, so
single released numbers are hard to interpret directly — but they are exactly
the kind of measurement the probabilistic-inference workflow of Section 4 can
consume, because MCMC only needs the forward query, not its interpretation.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..columnar.specs import Constant, Field, FieldsDiffer, JoinFields, Permute
from ..core.aggregation import NoisyCountResult
from ..core.queryable import Queryable
from .common import shared_query, length_two_paths, node_degrees

__all__ = [
    "paths_query",
    "cycles_by_intersect_query",
    "edge_uses_for_paths",
    "edge_uses_for_cycles",
    "star_degree_query",
    "stars_from_degree_histogram",
    "STAR_EDGE_USES",
]


@shared_query
def paths_query(edges: Queryable, length: int) -> Queryable:
    """All directed paths with ``length`` edges and no immediate backtracking.

    ``length == 1`` is the edge set itself; ``length == 2`` is
    :func:`~repro.analyses.common.length_two_paths`.  Longer paths are built
    by joining a ``(length−1)``-path with the edge set on its final vertex and
    discarding paths that revisit the vertex two hops back (the paper's
    "discard cycles" filter, generalised).  Note that vertices further back
    may still repeat: wPINQ records are tuples, so callers can add stricter
    ``where`` filters if they need fully simple paths.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    if length == 1:
        return edges
    if length == 2:
        return length_two_paths(edges)
    shorter = paths_query(edges, length - 1)
    # A ``(length−1)``-edge path has ``length`` vertices, so every record
    # function below is a structural spec over that known arity: paths of any
    # length run on the vectorized backend and ship to shard workers.
    extended = shorter.join(
        edges,
        left_key=Field(length - 1),
        right_key=Field(0),
        result_selector=JoinFields(*[("l", i) for i in range(length)], ("r", 1)),
    )
    return extended.where(FieldsDiffer(length, length - 2))


@shared_query
def cycles_by_intersect_query(edges: Queryable, cycle_length: int) -> Queryable:
    """A single-record query whose weight reflects the number of ``k``-cycles.

    Intersecting the length-``(k−1)`` paths with their own rotation keeps a
    path ``(v_0, ..., v_{k-1})`` only if ``(v_1, ..., v_{k-1}, v_0)`` is also a
    path, i.e. only if the edge closing the cycle exists.  ``cycle_length = 3``
    recovers the TbI query of Section 5.3.
    """
    if cycle_length < 3:
        raise ValueError("cycles need at least three vertices")
    paths = paths_query(edges, cycle_length - 1)
    rotation = Permute(*range(1, cycle_length), 0)
    closed = paths.select(rotation).intersect(paths)
    # Funnel every surviving path onto one record so a single NoisyCount
    # summarises the motif prevalence.
    return closed.select(Constant(f"cycle-{cycle_length}"))


def edge_uses_for_paths(length: int) -> int:
    """How many times :func:`paths_query` references the edge dataset."""
    if length < 1:
        raise ValueError("length must be at least 1")
    return length


def edge_uses_for_cycles(cycle_length: int) -> int:
    """How many times :func:`cycles_by_intersect_query` references the edges.

    The path query of length ``k−1`` is used twice (once rotated, once not).
    """
    if cycle_length < 3:
        raise ValueError("cycles need at least three vertices")
    return 2 * edge_uses_for_paths(cycle_length - 1)


#: The star query below references the (symmetric) edge dataset once.
STAR_EDGE_USES = 1


@shared_query
def star_degree_query(edges: Queryable) -> Queryable:
    """The per-vertex degree dataset that underlies ``k``-star counting.

    A ``k``-star centred at a vertex of degree ``d`` exists in ``C(d, k)``
    ways, so the number of ``k``-stars is a deterministic function of the
    degree histogram — another example of a motif statistic that released
    measurements constrain without being queried directly (Section 1.2,
    benefit #3).  The query is simply ``GroupBy`` over the symmetric edge set:
    one record ``(vertex, degree)`` per vertex, each of weight 0.5, projected
    onto its degree so identical degrees accumulate.
    """
    return node_degrees(edges).select(Field(1))


def stars_from_degree_histogram(
    measurement: NoisyCountResult | Mapping[int, float],
    k: int,
) -> float:
    """Estimate the number of ``k``-stars from a released degree histogram.

    ``measurement`` maps each degree ``d`` to (half) the number of vertices of
    that degree — the output of :func:`star_degree_query`, where every vertex
    carries weight 0.5 — or to the vertex count itself when a plain mapping is
    supplied with ``weight_per_vertex`` already undone.  Negative noisy cells
    are clamped to zero.  Pure post-processing of released values.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if isinstance(measurement, NoisyCountResult):
        items = list(measurement.items())
        weight_per_vertex = 0.5
    else:
        items = list(measurement.items())
        weight_per_vertex = 1.0
    total = 0.0
    for degree, value in items:
        degree = int(degree)
        count = max(0.0, float(value)) / weight_per_vertex
        if degree >= k:
            total += count * math.comb(degree, k)
    return total
