"""Shared helpers for the graph analyses.

Every analysis in the paper operates on a protected dataset of *directed,
symmetric* edge records: for each undirected edge {a, b} of the graph both
``(a, b)`` and ``(b, a)`` are present with weight 1.0.  These helpers build
that dataset, convert between directed and undirected forms inside wPINQ, and
provide the small record manipulations (path rotation, degree sorting) the
subgraph-counting queries share.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Sequence
from weakref import WeakKeyDictionary

from ..columnar.specs import (
    ExplodeFields,
    Field,
    FieldIs,
    FieldsDiffer,
    GroupSize,
    JoinFields,
    Permute,
)
from ..core.queryable import PrivacySession, Queryable
from ..graph.graph import Graph

__all__ = [
    "protect_graph",
    "shared_query",
    "symmetrize",
    "reverse_edge",
    "rotate",
    "sorted_degrees",
    "node_degrees",
    "nodes_from_edges",
    "length_two_paths",
]


# Per-queryable cache used by @shared_query, keyed weakly so dropping the last
# reference to a protected queryable also drops its derived queries.
_SHARED_QUERIES: "WeakKeyDictionary[Queryable, dict]" = WeakKeyDictionary()


def shared_query(builder: Callable[..., Queryable]) -> Callable[..., Queryable]:
    """Memoise a query builder per source queryable so plans are shared.

    Plans are compared by *identity* throughout the platform: the eager
    executor memoises by node id and the dataflow engine compiles one operator
    graph per node object.  Decorating the analysis builders makes repeated
    calls such as ``length_two_paths(edges)`` — which TbD, TbI and the wedge
    query all issue internally — return the *same* queryable, so a batched
    measurement of several analyses evaluates the shared sub-plan exactly
    once.

    Sharing plan objects never changes privacy accounting: Section 2.3 counts
    root-to-source *paths*, so each measurement is still charged the full
    multiplicity of its own plan.
    """

    signature = inspect.signature(builder)

    @functools.wraps(builder)
    def wrapper(*args: Any, **kwargs: Any) -> Queryable:
        # Bind with defaults applied so `f(q)`, `f(q, 1)`, `f(q, x=1)` and
        # keyword invocations like `f(edges=q)` all hit the same cache entry.
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        arguments = list(bound.arguments.items())
        queryable = arguments[0][1]
        cache = _SHARED_QUERIES.setdefault(queryable, {})
        key = (builder.__module__, builder.__qualname__) + tuple(arguments[1:])
        if key not in cache:
            cache[key] = builder(*args, **kwargs)
        return cache[key]

    return wrapper


def protect_graph(
    session: PrivacySession,
    graph: Graph,
    name: str = "edges",
    total_epsilon: float = float("inf"),
) -> Queryable:
    """Register a graph's symmetric directed edge set as a protected dataset.

    This is the data model of Section 5: the protected input is the collection
    of directed edges ``(a, b)`` and ``(b, a)``, each with weight 1.0, and all
    privacy costs are accounted per use of this dataset.  (When comparing with
    prior work stated for undirected graphs, remember the paper's convention
    of doubling the noise amplitude.)
    """
    return session.protect(name, graph.to_edge_records(symmetric=True), total_epsilon)


def reverse_edge(edge: Sequence[Any]) -> tuple[Any, Any]:
    """Return the edge with its endpoints swapped."""
    return (edge[1], edge[0])


@shared_query
def symmetrize(edges: Queryable) -> Queryable:
    """Turn a one-record-per-undirected-edge dataset into a symmetric one.

    ``edges.Select(reverse).Concat(edges)`` as in Section 3.3.  Note that the
    result references the protected source twice, so every subsequent use of
    the symmetric dataset costs double — exactly the factor-of-two the paper
    tracks when moving between directed and undirected statements.  The
    reversal is expressed as the structural spec ``Permute(1, 0)`` so the
    vectorized backend executes it as a column swap.
    """
    return edges.select(Permute(1, 0)).concat(edges)


def rotate(path: Sequence[Any]) -> tuple[Any, ...]:
    """Rotate a path one position: ``(a, b, c) -> (b, c, a)``."""
    return tuple(path[1:]) + (path[0],)


def sorted_degrees(degrees: Sequence[int]) -> tuple[int, ...]:
    """Sort a tuple of degrees so all permutations coalesce onto one record."""
    return tuple(sorted(degrees))


@shared_query
def node_degrees(edges: Queryable, bucket: int = 1) -> Queryable:
    """The ``(vertex, degree)`` dataset of Section 2.5, each of weight 0.5.

    ``bucket > 1`` divides each degree by ``bucket`` (integer division), the
    bucketing remedy used for the TbD experiments in Section 5.2.  The
    bucketing only changes the *label* carried by each record, never its
    weight, so the privacy analysis is unchanged.  Key and reducer are
    structural specs, so the plan is picklable and ships to shard workers.
    """
    return edges.group_by(key=Field(0), reducer=GroupSize(bucket))


@shared_query
def nodes_from_edges(edges: Queryable) -> Queryable:
    """The dataset of graph nodes, each with weight 0.5 (Section 2.8).

    Each unit-weight edge splits into its two endpoints at weight 0.5
    (SelectMany), the accumulated per-node weight ``d_x / 2`` is shaved into
    0.5-weight slices, and only the first slice is kept.  A weight of 0.5 per
    node is the most a stable transformation can deliver, because one edge
    identifies two nodes.  Every step is a structural spec, so the whole
    pipeline runs on the vectorized backend without per-record Python.
    """
    return (
        edges.select_many(ExplodeFields())
        .shave(0.5)
        .where(FieldIs(1, 0))
        .select(Field(0))
    )


@shared_query
def length_two_paths(edges: Queryable) -> Queryable:
    """All non-degenerate length-two paths ``(a, b, c)``, weight ``1/(2·d_b)``.

    The workhorse of the subgraph-counting queries (Section 2.7): the join of
    the symmetric edge set with itself on ``dst = src``, with length-two
    cycles ``(a, b, a)`` filtered out.  The key selectors, the result
    selector and the cycle filter are structural specs, which is what lets
    the vectorized backend run this self-join — the hot path of every
    subgraph query — entirely as array operations.
    """
    paths = edges.join(
        edges,
        left_key=Field(1),
        right_key=Field(0),
        result_selector=JoinFields(("l", 0), ("l", 1), ("r", 1)),
    )
    return paths.where(FieldsDiffer(0, 2))
