"""Degree-correlation statistics derived from the JDD measurement.

One of the paper's motivations for probabilistic inference (Section 1.2,
benefit #3) is that released measurements constrain statistics the analyst
never asked about directly: the joint degree distribution pins down the
graph's assortativity, so either a synthetic graph fit to the JDD — or the
JDD measurement itself — yields an assortativity estimate at no extra privacy
cost.  This module provides that post-processing: everything here operates on
*released* values, so by the post-processing property of differential privacy
no additional budget is spent.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..core.aggregation import NoisyCountResult
from .joint_degree import rescale_jdd_measurement

__all__ = [
    "assortativity_from_jdd",
    "estimate_assortativity",
    "mean_neighbor_degree_by_degree",
]


def assortativity_from_jdd(jdd_counts: Mapping[Any, float]) -> float:
    """Assortativity r implied by (possibly noisy) directed JDD counts.

    ``jdd_counts`` maps degree pairs ``(d_a, d_b)`` to the number of directed
    edges whose endpoints have those degrees (the Newman definition computes
    the Pearson correlation of endpoint degrees over directed edges, so an
    undirected JDD should be fed in with both orientations or with its counts
    doubled — a uniform scaling does not change the correlation).  Negative
    counts, which Laplace noise can produce, are clamped to zero; if no
    positive mass remains the function returns 0.0, matching the convention of
    :func:`repro.graph.statistics.assortativity` for degenerate graphs.
    """
    total = 0.0
    sum_x = 0.0
    sum_y = 0.0
    sum_xy = 0.0
    sum_xx = 0.0
    sum_yy = 0.0
    for record, count in jdd_counts.items():
        weight = max(0.0, float(count))
        if weight == 0.0:
            continue
        degree_a, degree_b = record
        x = float(degree_a)
        y = float(degree_b)
        total += weight
        sum_x += weight * x
        sum_y += weight * y
        sum_xy += weight * x * y
        sum_xx += weight * x * x
        sum_yy += weight * y * y
    if total <= 0.0:
        return 0.0
    mean_x = sum_x / total
    mean_y = sum_y / total
    cov = sum_xy / total - mean_x * mean_y
    var_x = sum_xx / total - mean_x * mean_x
    var_y = sum_yy / total - mean_y * mean_y
    denominator = math.sqrt(max(var_x, 0.0) * max(var_y, 0.0))
    if denominator <= 1e-12:
        return 0.0
    return cov / denominator


def estimate_assortativity(measurement: NoisyCountResult) -> float:
    """Assortativity implied by a released JDD measurement.

    Rescales the measurement's per-record weights back into directed edge
    counts (undoing the ``1/(2 + 2 d_a + 2 d_b)`` record weight of the wPINQ
    JDD query) and computes the correlation.  Pure post-processing: no privacy
    budget is consumed.
    """
    return assortativity_from_jdd(rescale_jdd_measurement(measurement))


def mean_neighbor_degree_by_degree(jdd_counts: Mapping[Any, float]) -> dict[int, float]:
    """Average neighbour degree ``k_nn(d)`` for each source degree ``d``.

    The standard second-order degree-correlation profile (the statistic the
    dK-2 generator of Mahadevan et al. targets): for every degree ``d`` the
    expected degree of the other endpoint of a uniformly random directed edge
    leaving a degree-``d`` vertex.  Noisy negative counts are clamped to zero.
    """
    numerator: dict[int, float] = {}
    denominator: dict[int, float] = {}
    for record, count in jdd_counts.items():
        weight = max(0.0, float(count))
        if weight == 0.0:
            continue
        degree_a, degree_b = record
        degree_a = int(degree_a)
        numerator[degree_a] = numerator.get(degree_a, 0.0) + weight * float(degree_b)
        denominator[degree_a] = denominator.get(degree_a, 0.0) + weight
    return {
        degree: numerator[degree] / denominator[degree]
        for degree in numerator
        if denominator[degree] > 0.0
    }
