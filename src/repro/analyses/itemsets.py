"""Frequent itemset mining over weighted baskets.

The paper motivates ``SelectMany`` with exactly this workload (Section 2.4):
a basket of goods is transformed into all of its size-``k`` subsets, and the
number of subsets *varies per basket*, which worst-case sensitivity frameworks
cannot exploit but weighted datasets handle naturally — each basket's subsets
simply share at most one unit of weight.

The queries here release, for every itemset of a chosen size, a noisy weight
in which a basket containing ``n`` items contributes ``1/C(n, k)`` to each of
its ``C(n, k)`` size-``k`` subsets.  Small baskets therefore speak loudly
about their few subsets while enormous baskets are smoothly attenuated —
the same "calibrate data, not noise" trade the graph queries make.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Any, Iterable, Sequence

from ..core.aggregation import NoisyCountResult
from ..core.queryable import PrivacySession, Queryable
from .common import shared_query

__all__ = [
    "protect_baskets",
    "itemsets_query",
    "measure_itemsets",
    "itemset_weight_contribution",
    "top_itemsets",
]


def protect_baskets(
    session: PrivacySession,
    baskets: Iterable[Sequence[Any]],
    name: str = "baskets",
    total_epsilon: float = float("inf"),
) -> Queryable:
    """Register a collection of baskets as a protected dataset.

    Each basket is stored as a single record — a tuple of its distinct items,
    sorted for canonical form — with weight 1.0.  Differential privacy then
    masks the presence or absence of entire baskets (the usual "user level"
    guarantee for transaction data).
    """
    records = [tuple(sorted(set(basket))) for basket in baskets]
    return session.protect(name, records, total_epsilon)


@shared_query
def itemsets_query(baskets: Queryable, size: int) -> Queryable:
    """All size-``size`` itemsets, weighted by attenuated basket support.

    Uses ``SelectMany``: a basket with ``n ≥ size`` items produces its
    ``C(n, size)`` subsets, scaled to carry at most one unit of weight in
    total.  The query uses the basket dataset once, so a measurement at ε
    costs ε regardless of how large any basket is.
    """
    if size < 1:
        raise ValueError("itemset size must be at least 1")

    def subsets(basket: Sequence[Any]):
        return [tuple(subset) for subset in combinations(basket, size)]

    return baskets.select_many(subsets)


def itemset_weight_contribution(basket_size: int, itemset_size: int) -> float:
    """Weight a single basket contributes to each of its size-``k`` subsets.

    ``1 / max(1, C(n, k))`` — the SelectMany normalisation for a basket of
    ``n`` distinct items.  Zero if the basket is smaller than the itemset.
    """
    if basket_size < itemset_size:
        return 0.0
    return 1.0 / max(1, comb(basket_size, itemset_size))


def measure_itemsets(
    baskets: Queryable, size: int, epsilon: float
) -> NoisyCountResult:
    """Release the noisy attenuated support of every size-``size`` itemset."""
    return itemsets_query(baskets, size).noisy_count(
        epsilon, query_name=f"itemsets(size={size})"
    )


def top_itemsets(
    measurement: NoisyCountResult, count: int = 10
) -> list[tuple[Any, float]]:
    """The ``count`` itemsets with the largest released weights.

    A convenience for the common "frequent itemsets" readout; purely
    post-processing of released values, so it costs no additional privacy.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    ranked = sorted(measurement.items(), key=lambda item: -item[1])
    return ranked[:count]
