"""Joint degree distribution (JDD) analysis (Section 3.2).

The JDD reports, for every degree pair ``(d_a, d_b)``, the number of edges
incident on a vertex of degree ``d_a`` and a vertex of degree ``d_b``.  Sala
et al. release it with bespoke noise ``4·max(d_a, d_b)/ε`` per pair; the
wPINQ query below produces each directed pair ``(d_a, d_b)`` with weight
``1/(2 + 2·d_a + 2·d_b)``, so a unit-noise measurement carries error
proportional to ``2 + 2·d_a + 2·d_b`` after rescaling — the automatic (if
constant-factor worse) counterpart of the bespoke analysis, with the privacy
proof for free.
"""

from __future__ import annotations

from typing import Any

from ..columnar.specs import Field
from ..core.aggregation import NoisyCountResult
from ..core.queryable import Queryable
from .common import shared_query, node_degrees, reverse_edge

__all__ = [
    "joint_degree_query",
    "measure_joint_degrees",
    "jdd_record_weight",
    "rescale_jdd_measurement",
]


# Record functions for the nested ``((a, b), d_a)`` records below; module
# level (never lambdas) so the JDD plan stays portable to shard workers.
def _attach_edge_degree(record, edge):
    """``((a, b), d_a)`` — pair a directed edge with its source's degree."""
    return (edge, record[1])


def _edge_of(record):
    """The edge component of a ``(edge, degree)`` record."""
    return record[0]


def _reversed_edge_of(record):
    """The reversed edge component — matches ``(a, b)`` with ``(b, a)``."""
    return reverse_edge(record[0])


def _degree_pair(left, right):
    """``(d_a, d_b)`` from the two matched ``(edge, degree)`` records."""
    return (left[1], right[1])


@shared_query
def joint_degree_query(edges: Queryable) -> Queryable:
    """The JDD as a wPINQ query over the symmetric directed edge set.

    Pipeline (Section 3.2)::

        degs = edges.GroupBy(src, count)                  # (a, d_a) @ 0.5
        temp = degs.Join(edges, a, src)                   # ((a, b), d_a)
        jdd  = temp.Join(temp, edge, reversed edge)       # (d_a, d_b)

    Every directed edge ``(a, b)`` contributes the record ``(d_a, d_b)`` with
    weight ``1/(2 + 2·d_a + 2·d_b)``.  The query uses the edge dataset four
    times, so a measurement at ε costs 4ε.
    """
    degrees = node_degrees(edges)
    edge_with_degree = degrees.join(
        edges,
        left_key=Field(0),
        right_key=Field(0),
        result_selector=_attach_edge_degree,
    )
    return edge_with_degree.join(
        edge_with_degree,
        left_key=_edge_of,
        right_key=_reversed_edge_of,
        result_selector=_degree_pair,
    )


def jdd_record_weight(degree_a: int, degree_b: int) -> float:
    """The weight equation (3) assigns to the record ``(d_a, d_b)``."""
    return 1.0 / (2.0 + 2.0 * degree_a + 2.0 * degree_b)


def measure_joint_degrees(edges: Queryable, epsilon: float) -> NoisyCountResult:
    """Measure the JDD query with ``Laplace(1/ε)`` noise per degree pair."""
    return joint_degree_query(edges).noisy_count(epsilon, query_name="joint_degree")


def rescale_jdd_measurement(measurement: NoisyCountResult) -> dict[Any, float]:
    """Convert released weights back into (noisy) directed edge counts.

    Each record ``(d_a, d_b)`` is divided by its per-edge weight
    ``1/(2 + 2 d_a + 2 d_b)``, so the value approximates the number of
    directed edges with that degree pair; the associated noise grows as
    ``(2 + 2 d_a + 2 d_b)/ε`` exactly as discussed in the paper.
    """
    rescaled: dict[Any, float] = {}
    for record, value in measurement.items():
        degree_a, degree_b = record
        rescaled[record] = value / jdd_record_weight(degree_a, degree_b)
    return rescaled
