"""Degree distribution analyses (Section 3.1).

Hay et al. showed that the non-decreasing degree sequence with Laplace noise
is differentially private *if the number of nodes is public*, and that
isotonic regression removes much of the noise.  The wPINQ formulation below
reproduces that analysis without revealing the number of nodes: the query
produces a non-increasing sequence that simply continues with noisy zeros
forever, and the analyst decides where it ends.

Two complementary views of the same information are measured:

* the **degree CCDF** — record ``i`` carries the number of nodes with degree
  greater than ``i``;
* the **degree sequence** — record ``j`` carries the degree of the ``j``-th
  highest-degree node,

which are functional inverses of each other (exchange the axes).  Measuring
both lets the post-processing in :mod:`repro.postprocess.pathfit` fit a single
monotone staircase to the two noisy measurements simultaneously, which is
noticeably more accurate than regressing either one alone.
"""

from __future__ import annotations

from ..columnar.specs import Constant, Field
from ..core.aggregation import NoisyCountResult
from ..core.queryable import Queryable

__all__ = [
    "degree_ccdf_query",
    "degree_sequence_query",
    "node_count_query",
    "measure_degree_ccdf",
    "measure_degree_sequence",
    "measure_node_count",
    "node_count_from_measurement",
]

from .common import shared_query, nodes_from_edges


@shared_query
def degree_ccdf_query(edges: Queryable) -> Queryable:
    """The degree CCDF as a wPINQ query over the symmetric edge set.

    ``edges.Select(src).Shave(1.0).Select(index)``: after Select, vertex ``a``
    has weight ``d_a``; Shave splits it into unit slices ``(a, 0) ... (a,
    d_a−1)``; keeping only the slice index accumulates, at record ``i``, one
    unit of weight per node of degree greater than ``i``.

    Privacy: uses the edge dataset once, so a measurement at ε costs ε.
    The field picks are structural specs (`Field`), so the plan vectorizes
    fully and is picklable for process-parallel execution.
    """
    return edges.select(Field(0)).shave(1.0).select(Field(1))


@shared_query
def degree_sequence_query(edges: Queryable) -> Queryable:
    """The non-increasing degree sequence as a wPINQ query.

    Obtained from the CCDF by exchanging the axes — which in wPINQ is just a
    second Shave/Select pair: record ``j`` ends up carrying the number of
    CCDF records with weight at least ``j``, i.e. the ``j``-th largest degree.

    Privacy: uses the edge dataset once.
    """
    return degree_ccdf_query(edges).shave(1.0).select(Field(1))


@shared_query
def node_count_query(edges: Queryable) -> Queryable:
    """A single record ``"node"`` whose weight is half the number of nodes.

    Built from :func:`~repro.analyses.common.nodes_from_edges`; the analyst
    doubles the released value to estimate ``|V|``.  Used when seeding the
    synthesis workflow (the seed generator needs to know roughly how many
    nodes to create).
    """
    return nodes_from_edges(edges).select(Constant("node"))


def measure_degree_ccdf(edges: Queryable, epsilon: float) -> NoisyCountResult:
    """Measure the degree CCDF with ``Laplace(1/ε)`` noise per entry."""
    return degree_ccdf_query(edges).noisy_count(epsilon, query_name="degree_ccdf")


def measure_degree_sequence(edges: Queryable, epsilon: float) -> NoisyCountResult:
    """Measure the non-increasing degree sequence with ``Laplace(1/ε)`` noise."""
    return degree_sequence_query(edges).noisy_count(epsilon, query_name="degree_sequence")


def node_count_from_measurement(result: NoisyCountResult) -> float:
    """Turn a released :func:`node_count_query` half-count into a node estimate.

    Nodes carry weight 0.5 (Section 2.8), so the estimate doubles the released
    value of the single ``"node"`` record.
    """
    return 2.0 * result.value("node")


def measure_node_count(edges: Queryable, epsilon: float) -> float:
    """Estimate the number of nodes: twice the released half-count."""
    result = node_count_query(edges).noisy_count(epsilon, query_name="node_count")
    return node_count_from_measurement(result)
