"""Clustering-coefficient style measurements.

The paper's related-work section points at bespoke DP estimates of the
clustering coefficient; with wPINQ the quantity falls out of measurements we
already have: the (weighted) triangle statistic of the TbI query and a
companion "wedge" (length-two path) statistic measured the same way.  Neither
released number is a plain count — both are weighted by inverse degrees — but
their *ratio* tracks how likely a wedge is to close into a triangle, and the
pair is exactly the kind of measurement the probabilistic-inference workflow
can consume directly.
"""

from __future__ import annotations

from ..columnar.specs import Constant
from ..core.aggregation import NoisyCountResult
from ..core.queryable import Queryable
from ..graph.graph import Graph
from ..graph.statistics import iter_triangles
from .common import shared_query, length_two_paths
from .triangles import triangles_by_intersect_query

__all__ = [
    "wedges_query",
    "measure_wedges",
    "wedge_signal",
    "closure_ratio",
    "WEDGE_EDGE_USES",
]

#: Times the symmetric edge dataset appears in the wedge query plan.
WEDGE_EDGE_USES = 2


@shared_query
def wedges_query(edges: Queryable) -> Queryable:
    """A single record carrying the total weight of all length-two paths.

    Each wedge (path ``a–b–c``) carries weight ``1/(2·d_b)``, so the released
    total equals ``Σ_b (d_b − 1)/2`` — half the number of wedges per centre,
    discounted by the centre's degree.  Uses the edge dataset twice.
    """
    return length_two_paths(edges).select(Constant("wedge"))


def measure_wedges(edges: Queryable, epsilon: float) -> NoisyCountResult:
    """Release the weighted wedge total with ``Laplace(1/ε)`` noise (cost 2ε)."""
    return wedges_query(edges).noisy_count(epsilon, query_name="wedges")


def wedge_signal(graph: Graph) -> float:
    """The exact weighted wedge total: ``Σ_b (d_b − 1) / 2``."""
    return sum((degree - 1) / 2.0 for degree in graph.degrees().values() if degree > 1)


def triangle_closure_signal(graph: Graph) -> float:
    """The exact TbI weight (equation (8)); re-exported here for symmetry."""
    degrees = graph.degrees()
    total = 0.0
    for a, b, c in iter_triangles(graph):
        inverses = sorted((1.0 / degrees[a], 1.0 / degrees[b], 1.0 / degrees[c]))
        total += inverses[0] + inverses[0] + inverses[1]
    return total


def closure_ratio(
    edges: Queryable, epsilon: float
) -> tuple[float, NoisyCountResult, NoisyCountResult]:
    """A DP proxy for the global clustering coefficient.

    Measures the weighted triangle total (TbI, 4 uses) and the weighted wedge
    total (2 uses) at the same ε — total privacy cost 6ε — and returns their
    ratio together with both raw measurements.  The ratio is a biased but
    monotone proxy: graphs whose wedges close into triangles more often score
    higher.  For calibrated estimates, feed both measurements to the MCMC
    synthesiser and read the clustering coefficient off the synthetic graph.
    """
    triangles = triangles_by_intersect_query(edges).noisy_count(
        epsilon, query_name="closure_triangles"
    )
    wedges = measure_wedges(edges, epsilon)
    wedge_value = wedges.value("wedge")
    triangle_value = triangles.value("triangle")
    if abs(wedge_value) < 1e-9:
        ratio = 0.0
    else:
        ratio = max(0.0, triangle_value) / max(wedge_value, 1e-9)
    return ratio, triangles, wedges
