"""Triangle analyses: TbD (Section 3.3) and TbI (Section 5.3).

Two very different wPINQ queries about the same structure:

* **Triangles by Degree (TbD)** releases, for every sorted degree triple
  ``(d_a, d_b, d_c)``, a weight of ``3/(d_a² + d_b² + d_c²)`` per triangle
  with those corner degrees.  Dividing the released value by that weight gives
  a noisy triangle count per triple, with error proportional to
  ``(d_a² + d_b² + d_c²)`` — Theorem 2.  The optional ``bucket`` argument
  groups nearby degrees to concentrate signal, the remedy of Section 5.2.

* **Triangles by Intersect (TbI)** releases a *single* number: the total
  weight ``Σ_Δ min(1/d_a,1/d_b) + min(1/d_a,1/d_c) + min(1/d_b,1/d_c)`` over
  all triangles (equation (8)).  It is harder for a human to interpret but
  uses the edge set only 4 times (versus 9 for TbD) and turns out to be a far
  better driver for MCMC synthesis.

Both queries expect the protected dataset to be the *symmetric directed* edge
set produced by :func:`repro.analyses.common.protect_graph`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..columnar.specs import Constant, Field, Permute
from ..core.aggregation import NoisyCountResult
from ..core.laplace import LaplaceNoise, validate_epsilon
from ..core.queryable import Queryable
from ..graph.graph import Graph
from ..graph.statistics import triangles_by_degree as exact_triangles_by_degree
from .common import shared_query, length_two_paths, node_degrees, rotate, sorted_degrees

__all__ = [
    "triangles_by_degree_query",
    "measure_triangles_by_degree",
    "tbd_record_weight",
    "rescale_tbd_measurement",
    "triangles_by_intersect_query",
    "measure_triangles_by_intersect",
    "tbi_signal",
    "theorem2_mechanism",
    "TBD_EDGE_USES",
    "TBI_EDGE_USES",
]

#: Times the symmetric edge dataset appears in each query plan; the paper's
#: hand counts (Sections 3.3 and 5.3), verified by tests against
#: ``Queryable.source_uses``.
TBD_EDGE_USES = 9
TBI_EDGE_USES = 4


# ----------------------------------------------------------------------
# Triangles by Degree (TbD)
# ----------------------------------------------------------------------
# Record functions for the nested ``(path, degree...)`` records below.
# Module-level (never lambdas) so TbD plans stay portable to shard workers
# (R005); the flat-record steps use structural specs instead.
def _attach_middle_degree(path, record):
    """``((a, b, c), d_b)`` — pair a path with its middle vertex's degree."""
    return (path, record[1])


def _rotate_keyed_path(record):
    """Rotate the path component, carrying the attached degree along."""
    return (rotate(record[0]), record[1])


def _path_of(record):
    """The path component of a ``(path, ...)`` record (the join key)."""
    return record[0]


def _merge_first_degree(left, right):
    """``(path, d_b, d_a)`` from ``(path, d_b)`` and the rotated ``(path, d_a)``."""
    return (left[0], left[1], right[1])


def _collect_corner_degrees(left, right):
    """All three corner degrees ``(d_c, d_b, d_a)`` for a closed path."""
    return (right[1], left[1], left[2])


@shared_query
def triangles_by_degree_query(edges: Queryable, bucket: int = 1) -> Queryable:
    """The TbD query: sorted degree triples weighted per equation (4).

    Pipeline (Section 3.3)::

        paths = edges ⋈ edges  (length-two paths, minus 2-cycles)
        degs  = edges.GroupBy(src, count [/ bucket])
        abc   = paths ⋈ degs                  # ((a,b,c), d_b)   @ 1/(2 d_b²)
        bca   = abc.Select(rotate)            # degree of first vertex
        cab   = bca.Select(rotate)            # degree of third vertex
        tris  = abc ⋈ bca ⋈ cab  (on the path)  # all three degrees
        out   = tris.Select(sorted degrees)

    Each triangle contributes weight ``1/(2(d_a²+d_b²+d_c²))`` six times (once
    per directed length-two path around it), so its sorted degree triple
    accumulates ``3/(d_a²+d_b²+d_c²)``.  The query uses the symmetric edge
    dataset :data:`TBD_EDGE_USES` = 9 times.
    """
    paths = length_two_paths(edges)
    degrees = node_degrees(edges, bucket=bucket)

    path_with_middle_degree = paths.join(
        degrees,
        left_key=Field(1),
        right_key=Field(0),
        result_selector=_attach_middle_degree,
    )
    rotated_once = path_with_middle_degree.select(_rotate_keyed_path)
    rotated_twice = rotated_once.select(_rotate_keyed_path)

    first_join = path_with_middle_degree.join(
        rotated_once,
        left_key=_path_of,
        right_key=_path_of,
        result_selector=_merge_first_degree,
    )
    all_degrees = first_join.join(
        rotated_twice,
        left_key=_path_of,
        right_key=_path_of,
        result_selector=_collect_corner_degrees,
    )
    return all_degrees.select(sorted_degrees)


def tbd_record_weight(degree_a: int, degree_b: int, degree_c: int) -> float:
    """Total weight a single triangle adds to its sorted degree triple.

    Six directed paths, each at ``1/(2(d_a²+d_b²+d_c²))``, equation (4).
    """
    return 3.0 / float(degree_a**2 + degree_b**2 + degree_c**2)


def measure_triangles_by_degree(
    edges: Queryable, epsilon: float, bucket: int = 1
) -> NoisyCountResult:
    """Measure TbD; the privacy cost is ``9·ε`` for the symmetric edge set."""
    return triangles_by_degree_query(edges, bucket=bucket).noisy_count(
        epsilon, query_name=f"triangles_by_degree(bucket={bucket})"
    )


def rescale_tbd_measurement(
    measurement: NoisyCountResult, bucket: int = 1
) -> dict[Any, float]:
    """Convert released TbD weights into (noisy) triangle counts per triple.

    With ``bucket == 1`` each triple's value is divided by
    :func:`tbd_record_weight`.  With bucketing the per-record weight is no
    longer uniform within a bucket, so the raw weights are returned unscaled
    (the MCMC workflow consumes them directly and needs no rescaling).
    """
    if bucket != 1:
        return measurement.to_dict()
    rescaled: dict[Any, float] = {}
    for record, value in measurement.items():
        degree_a, degree_b, degree_c = record
        rescaled[record] = value / tbd_record_weight(degree_a, degree_b, degree_c)
    return rescaled


def theorem2_mechanism(
    graph: Graph,
    epsilon: float,
    noise: LaplaceNoise | None = None,
) -> dict[tuple[int, int, int], float]:
    """The release mechanism of Theorem 2, applied directly to a graph.

    For every observed degree triple ``(x, y, z)`` the exact triangle count is
    released plus ``Laplace(6(x²+y²+z²)/ε)`` noise.  (As with NoisyCount,
    asking about unobserved triples would return pure noise of the same
    scale; only observed triples are materialised here.)  This is the
    "interpreted" form of the TbD query and is used by the Figure 1 and
    ablation benchmarks.
    """
    epsilon = validate_epsilon(epsilon)
    noise = noise if noise is not None else LaplaceNoise()
    released: dict[tuple[int, int, int], float] = {}
    for triple, count in exact_triangles_by_degree(graph).items():
        x, y, z = triple
        scale = 6.0 * (x**2 + y**2 + z**2) / epsilon
        released[triple] = count + scale * float(
            noise.rng.laplace(loc=0.0, scale=1.0)
        )
    return released


# ----------------------------------------------------------------------
# Triangles by Intersect (TbI)
# ----------------------------------------------------------------------
@shared_query
def triangles_by_intersect_query(edges: Queryable) -> Queryable:
    """The TbI query: one record ``"triangle"`` carrying equation (8)'s weight.

    Length-two paths are intersected with their own rotation — a path survives
    exactly when it closes into a triangle — and all surviving weight is
    funnelled onto a single record.  The query uses the symmetric edge dataset
    :data:`TBI_EDGE_USES` = 4 times.  The rotation (``Permute(1, 2, 0)``) and
    the funnel (``Constant``) are structural specs, keeping the whole query on
    the vectorized backend's array path.
    """
    paths = length_two_paths(edges)
    triangles = paths.select(Permute(1, 2, 0)).intersect(paths)
    return triangles.select(Constant("triangle"))


def measure_triangles_by_intersect(edges: Queryable, epsilon: float) -> NoisyCountResult:
    """Measure TbI; the privacy cost is ``4·ε`` for the symmetric edge set."""
    return triangles_by_intersect_query(edges).noisy_count(
        epsilon, query_name="triangles_by_intersect"
    )


def tbi_signal(graph: Graph) -> float:
    """The exact value of equation (8) for a graph.

    ``Σ_{Δ(a,b,c)} min(1/d_a, 1/d_b) + min(1/d_a, 1/d_c) + min(1/d_b, 1/d_c)``
    — the "signal" the TbI measurement carries before noise.  Used to validate
    the query and to reason about signal-to-noise as in Section 5.2/5.3.
    """
    from ..graph.statistics import iter_triangles

    degrees = graph.degrees()
    total = 0.0
    for a, b, c in iter_triangles(graph):
        inv = sorted((1.0 / degrees[a], 1.0 / degrees[b], 1.0 / degrees[c]))
        # min over each unordered pair of the three inverse degrees.
        total += inv[0] + inv[0] + inv[1]
    return total


def expected_tbi_noise_std(epsilon: float) -> float:
    """Standard deviation of the single TbI release at parameter ε."""
    epsilon = validate_epsilon(epsilon)
    return float(np.sqrt(2.0)) / epsilon
