"""Squares (4-cycles) by degree: the SbD query of Section 3.4 and Theorem 3.

The same path-join idea as TbD extended one hop: length-three paths
``(a, b, c, d)`` are built by joining length-two paths on their shared edge,
then matched against their double rotation to pick out closed 4-cycles and
collect all four corner degrees.  Every square is discovered eight times (four
rotations in each direction), and its sorted degree quadruple accumulates the
weight ``8 ×`` equation (6)::

    4 / (d_a²(d_d−1) + d_d²(d_a−1) + d_b²(d_c−1) + d_c²(d_b−1))

The query uses the symmetric edge dataset 12 times.
"""

from __future__ import annotations

from typing import Any

from ..columnar.specs import Field
from ..core.aggregation import NoisyCountResult
from ..core.laplace import LaplaceNoise, validate_epsilon
from ..core.queryable import Queryable
from ..graph.graph import Graph
from ..graph.statistics import squares_by_degree as exact_squares_by_degree
from .common import shared_query, length_two_paths, node_degrees, rotate, sorted_degrees

__all__ = [
    "squares_by_degree_query",
    "measure_squares_by_degree",
    "sbd_record_weight",
    "rescale_sbd_measurement",
    "theorem3_mechanism",
    "SBD_EDGE_USES",
]

#: Times the symmetric edge dataset appears in the SbD plan (Section 3.4).
SBD_EDGE_USES = 12


# Record functions for the nested ``(path, degree...)`` records below; module
# level (never lambdas) so the SbD plan stays portable to shard workers.
def _attach_middle_degree(path, record):
    """``((a, b, c), d_b)`` — pair a path with its middle vertex's degree."""
    return (path, record[1])


def _shared_edge_left(record):
    """The trailing edge ``(b, c)`` of the left path — the join key."""
    return (record[0][1], record[0][2])


def _shared_edge_right(record):
    """The leading edge ``(b, c)`` of the right path — the join key."""
    return (record[0][0], record[0][1])


def _extend_path(left, right):
    """``((a, b, c, d), d_b, d_c)`` from the two overlapping 2-paths."""
    return (
        (left[0][0], left[0][1], left[0][2], right[0][2]),
        left[1],
        right[1],
    )


def _endpoints_differ(record):
    """Drop degenerate 3-paths whose endpoints coincide (``a == d``)."""
    return record[0][0] != record[0][3]


def _rotate_path_twice(record):
    """``((c, d, a, b), d_b, d_c)`` — double rotation of the path component."""
    return (rotate(rotate(record[0])), record[1], record[2])


def _path_of(record):
    """The path component of a ``(path, ...)`` record (the join key)."""
    return record[0]


def _collect_corner_degrees(left, right):
    """All four corner degrees ``(d_d, d_b, d_c, d_a)`` for a closed 4-cycle."""
    return (right[1], left[1], left[2], right[2])


@shared_query
def squares_by_degree_query(edges: Queryable) -> Queryable:
    """The SbD query: sorted degree quadruples of every 4-cycle.

    Pipeline (Section 3.4)::

        abc  = (paths ⋈ degs)                          # ((a,b,c), d_b)
        abcd = abc ⋈ abc  on (b,c)=(a,b), drop a==d    # ((a,b,c,d), d_b, d_c)
        cdab = abcd rotated twice                      # ((c,d,a,b), d_b, d_c)
        sq   = abcd ⋈ cdab on the path                 # all four degrees
        out  = sq.Select(sorted degrees)
    """
    paths = length_two_paths(edges)
    degrees = node_degrees(edges)

    path_with_middle_degree = paths.join(
        degrees,
        left_key=Field(1),
        right_key=Field(0),
        result_selector=_attach_middle_degree,
    )

    # Join length-two paths (a,b,c) and (b,c,d) on their shared edge (b,c),
    # carrying the middle degrees d_b (from the left) and d_c (from the right).
    length_three = path_with_middle_degree.join(
        path_with_middle_degree,
        left_key=_shared_edge_left,
        right_key=_shared_edge_right,
        result_selector=_extend_path,
    ).where(_endpoints_differ)

    rotated_twice = length_three.select(_rotate_path_twice)

    squares = length_three.join(
        rotated_twice,
        left_key=_path_of,
        right_key=_path_of,
        result_selector=_collect_corner_degrees,
    )
    return squares.select(sorted_degrees)


def sbd_record_weight(
    degree_a: int, degree_b: int, degree_c: int, degree_d: int
) -> float:
    """Total weight one square ``a-b-c-d-a`` adds to its sorted quadruple.

    Eight discoveries, each at the weight of equation (6).
    """
    denominator = (
        degree_a**2 * (degree_d - 1)
        + degree_d**2 * (degree_a - 1)
        + degree_b**2 * (degree_c - 1)
        + degree_c**2 * (degree_b - 1)
    )
    return 8.0 / (2.0 * denominator)


def measure_squares_by_degree(edges: Queryable, epsilon: float) -> NoisyCountResult:
    """Measure SbD; the privacy cost is ``12·ε`` for the symmetric edge set."""
    return squares_by_degree_query(edges).noisy_count(
        epsilon, query_name="squares_by_degree"
    )


def rescale_sbd_measurement(measurement: NoisyCountResult) -> dict[Any, float]:
    """Convert released SbD weights into (noisy) square counts per quadruple.

    Note that unlike TbD, squares whose corner degrees coincide but sit in
    different cyclic positions can receive slightly different weights (the
    weight depends on which degrees are *opposite* each other); the rescaling
    here uses the sorted-order weight and is exact whenever the quadruple
    identifies the cyclic arrangement (e.g. when at most two distinct degrees
    are involved), and an approximation otherwise — the caveat Section 3.5
    raises for general motifs.
    """
    rescaled: dict[Any, float] = {}
    for record, value in measurement.items():
        rescaled[record] = value / sbd_record_weight(*record)
    return rescaled


def theorem3_mechanism(
    graph: Graph,
    epsilon: float,
    noise: LaplaceNoise | None = None,
) -> dict[tuple[int, int, int, int], float]:
    """The release mechanism of Theorem 3, applied directly to a graph.

    For every observed degree quadruple ``(v, x, y, z)`` the exact 4-cycle
    count is released plus ``Laplace(6(vx(v+x) + yz(y+z))/ε)`` noise.
    """
    epsilon = validate_epsilon(epsilon)
    noise = noise if noise is not None else LaplaceNoise()
    released: dict[tuple[int, int, int, int], float] = {}
    for quad, count in exact_squares_by_degree(graph).items():
        v, x, y, z = quad
        scale = 6.0 * (v * x * (v + x) + y * z * (y + z)) / epsilon
        released[quad] = count + scale * float(noise.rng.laplace(loc=0.0, scale=1.0))
    return released
