"""Stdlib HTTP/JSON transport for the measurement service, plus a client.

No third-party dependencies: the server is a
:class:`http.server.ThreadingHTTPServer` (one handler thread per connection —
exactly what the batching scheduler wants, since concurrent handler threads
submitting against one session are fused into one executor pass), and
:class:`ServiceClient` speaks the same JSON over :mod:`urllib`.

Endpoints (all JSON)::

    GET    /healthz                      liveness probe
    GET    /v1/sessions                  hosted sessions + budgets
    POST   /v1/sessions                  {name, records, total_epsilon?, seed?,
                                          executor?, source?}
    GET    /v1/sessions/NAME             one session's summary
    DELETE /v1/sessions/NAME             drop a session
    GET    /v1/sessions/NAME/budget      ledger report (total/spent/remaining)
    GET    /v1/sessions/NAME/audit       that session's audit events
    POST   /v1/sessions/NAME/measure     {query, epsilon} -> released values
    GET    /v1/audit                     the full audit log
    GET    /v1/stats                     scheduler + cache counters

Records travel as JSON arrays and are converted to tuples on the way in
(graph edges ``[u, v]`` become ``(u, v)``); released values come back as
``[record, noisy_weight]`` pairs in the canonical release order.  Error
responses carry ``{"error": message, "type": exception_name}`` and the client
re-raises the matching library exception, so retry logic can distinguish
backpressure (503, :class:`ServiceOverloadedError`) from an exhausted budget
(403, :class:`BudgetExceededError`) — and because released answers are cached,
a client that times out and retries gets the bit-identical answer without a
second charge.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..exceptions import (
    BudgetExceededError,
    CircuitOpenError,
    DeadlineExceededError,
    InvalidEpsilonError,
    PlanError,
    RateLimitedError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    SessionExistsError,
)
from ..resilience.deadline import Deadline
from ..resilience.faults import inject
from .core import MeasurementService
from .scheduler import MeasurementAnswer

__all__ = ["ServiceClient", "ServiceHTTPServer", "answer_to_json", "serve"]

#: HTTP request header carrying the client's end-to-end deadline budget in
#: milliseconds; parsed into a :class:`Deadline` at the transport edge.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"


def records_from_json(records: Any) -> list[Any]:
    """Convert JSON-decoded records to hashable Python records.

    Lists become tuples recursively, so an edge list ``[[0, 1], [1, 2]]``
    protects as the weighted multiset ``{(0, 1), (1, 2)}``.
    """
    if not isinstance(records, list):
        raise PlanError("'records' must be a JSON array")

    def convert(value: Any) -> Any:
        if isinstance(value, list):
            return tuple(convert(element) for element in value)
        return value

    return [convert(record) for record in records]


def answer_to_json(answer: MeasurementAnswer) -> dict[str, Any]:
    """Render a scheduler answer as the measure endpoint's JSON body."""
    return {
        "session": answer.session,
        "query": answer.query,
        "epsilon": answer.epsilon,
        "cached": answer.cached,
        "batch_size": answer.batch_size,
        "charged": answer.charged,
        "values": [[record, value] for record, value in answer.result.items()],
        "total": answer.result.total(),
    }


# The central error-code → HTTP-status table.  Every service-visible
# exception carries a stable machine-readable ``code`` (see
# :mod:`repro.exceptions`); this is the single place codes become statuses,
# so no endpoint constructs 4xx/5xx responses ad hoc.
_STATUS_BY_CODE = {
    "rate_limited": 429,
    "circuit_open": 503,
    "overloaded": 503,
    "persistence_unavailable": 503,
    "budget_exceeded": 403,
    "deadline_exceeded": 504,
    "session_exists": 409,
    "invalid_epsilon": 400,
    "invalid_plan": 400,
    "fault_injected": 500,
    "service_error": 404,
}

# Fallback for exceptions without a ``code`` (stdlib errors, third parties).
_STATUS_FOR = (
    (RateLimitedError, 429),
    (ServiceOverloadedError, 503),
    (BudgetExceededError, 403),
    (ServiceError, 404),
    (InvalidEpsilonError, 400),
    (PlanError, 400),
)


def _status_for(exc: BaseException) -> int:
    code = getattr(exc, "code", None)
    if code is not None:
        status = _STATUS_BY_CODE.get(code)
        if status is not None:
            return status
    for kind, status in _STATUS_FOR:
        if isinstance(exc, kind):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`MeasurementService`."""

    protocol_version = "HTTP/1.1"
    server: "ServiceHTTPServer"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def _reply(self, payload: dict[str, Any], status: int = 200) -> None:
        # Fault point: a "fail" here drops the connection before any bytes
        # of the response are written — the client sees a connection error
        # even though the service-side work (and any budget charge) is done.
        inject("http.write")
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, exc: BaseException) -> None:
        payload: dict[str, Any] = {"error": str(exc), "type": type(exc).__name__}
        code = getattr(exc, "code", None)
        if code is not None:
            payload["code"] = code
            payload["retryable"] = bool(getattr(exc, "retryable", False))
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            payload["retry_after"] = retry_after
        if isinstance(exc, BudgetExceededError):
            payload["requested"] = exc.requested
            payload["remaining"] = exc.remaining
            payload["source"] = exc.source
        self._reply(payload, status=_status_for(exc))

    def _payload(self) -> dict[str, Any]:
        # Fault point: a request lost mid-read (client vanished, socket
        # reset) before the service layer ever sees it.
        inject("http.read")
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        decoded = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(decoded, dict):
            raise PlanError("request body must be a JSON object")
        return decoded

    def _deadline(self) -> Deadline | None:
        """The request's :class:`Deadline`, from ``X-Repro-Deadline-Ms``."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            budget_ms = float(raw)
        except ValueError as exc:
            raise PlanError(
                f"invalid {DEADLINE_HEADER} header {raw!r}: expected a number "
                f"of milliseconds"
            ) from exc
        return Deadline.after(budget_ms / 1000.0)

    def _route(self) -> tuple[str, ...]:
        return tuple(part for part in self.path.split("?", 1)[0].split("/") if part)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        service = self.server.service
        route = self._route()
        try:
            if route == ("healthz",):
                self._reply({"status": "ok", "sessions": service.registry.names()})
            elif route == ("v1", "sessions"):
                self._reply({"sessions": service.sessions()})
            elif route == ("v1", "stats"):
                self._reply(service.stats())
            elif route == ("v1", "audit"):
                self._reply({"events": [event.to_dict() for event in service.audit()]})
            elif len(route) == 3 and route[:2] == ("v1", "sessions"):
                self._reply(service.session(route[2]).describe())
            elif len(route) == 4 and route[:2] == ("v1", "sessions") and route[3] == "budget":
                self._reply({"budget": service.budget_report(route[2])})
            elif len(route) == 4 and route[:2] == ("v1", "sessions") and route[3] == "audit":
                events = service.audit(route[2])
                self._reply({"events": [event.to_dict() for event in events]})
            else:
                self._reply({"error": "not found", "type": "ServiceError"}, 404)
        except Exception as exc:  # noqa: BLE001 - every error becomes JSON
            self._error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming convention
        service = self.server.service
        route = self._route()
        try:
            payload = self._payload()
            if route == ("v1", "sessions"):
                try:
                    name = payload["name"]
                    records = records_from_json(payload["records"])
                except KeyError as exc:
                    raise PlanError(f"missing required field {exc.args[0]!r}") from exc
                # Name conflicts raise SessionExistsError (code
                # "session_exists"), which the central status table maps to
                # 409 — no ad-hoc handling needed here.
                hosted = service.create_session(
                    name,
                    records,
                    total_epsilon=float(payload.get("total_epsilon", float("inf"))),
                    seed=payload.get("seed"),
                    executor=payload.get("executor"),
                    source=payload.get("source", "edges"),
                )
                self._reply(hosted.describe(), status=201)
            elif len(route) == 4 and route[:2] == ("v1", "sessions") and route[3] == "measure":
                try:
                    query = payload["query"]
                    epsilon = payload["epsilon"]
                except KeyError as exc:
                    raise PlanError(f"missing required field {exc.args[0]!r}") from exc
                deadline = self._deadline()
                wait = self.server.measure_timeout
                if deadline is not None:
                    remaining = deadline.remaining()
                    wait = remaining if wait is None else min(wait, remaining)
                try:
                    answer = service.measure(
                        route[2], query, epsilon, timeout=wait, deadline=deadline
                    )
                except TimeoutError as exc:
                    if deadline is not None and deadline.expired():
                        # The client's own deadline ran out while the
                        # measurement was in flight.  Whether ε was charged
                        # depends on how far the request got; if it was, the
                        # released answer is cached and an identical retry
                        # collects it free of charge.
                        raise DeadlineExceededError(
                            f"deadline expired after {wait:g}s while the "
                            f"measurement was in flight; retry the identical "
                            f"request to collect its released answer without "
                            f"additional charge"
                        ) from exc
                    # The measurement is still executing (and will charge the
                    # budget when it completes): answer retryable-503, not
                    # 500 — retrying the identical request collects the
                    # released answer from the cache at no additional charge.
                    raise ServiceOverloadedError(
                        f"measurement did not complete within "
                        f"{self.server.measure_timeout:g}s and is still "
                        f"executing; retry the identical request to collect "
                        f"its released answer without additional charge"
                    ) from exc
                self._reply(answer_to_json(answer))
            else:
                self._reply({"error": "not found", "type": "ServiceError"}, 404)
        except Exception as exc:  # noqa: BLE001 - every error becomes JSON
            self._error(exc)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming convention
        service = self.server.service
        route = self._route()
        try:
            if len(route) == 3 and route[:2] == ("v1", "sessions"):
                service.close_session(route[2])
                self._reply({"closed": route[2]})
            else:
                self._reply({"error": "not found", "type": "ServiceError"}, 404)
        except Exception as exc:  # noqa: BLE001 - every error becomes JSON
            self._error(exc)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`MeasurementService`.

    ``listen_socket`` adopts an already-bound, already-listening socket
    instead of binding a fresh one — the multi-process server
    (:mod:`repro.service.workers`) binds once in the parent and hands each
    forked worker the shared socket, so the kernel load-balances accepted
    connections across workers.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: MeasurementService,
        verbose: bool = False,
        measure_timeout: float | None = 300.0,
        listen_socket=None,
    ) -> None:
        if listen_socket is not None:
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
        else:
            super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.measure_timeout = measure_timeout

    @property
    def url(self) -> str:
        """The server's base URL (resolves port 0 to the bound port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, benchmarks)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        """Shut the listener and the service's worker pool down."""
        self.shutdown()
        self.server_close()
        self.service.shutdown()


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    service: MeasurementService | None = None,
    workers: int | None = None,
    max_pending: int = 128,
    executor: str = "eager",
    verbose: bool = False,
    ledger: str | None = None,
    snapshot_every: int = 64,
    rate_limit: float | None = None,
    rate_burst: float | None = None,
    max_total_pending: int | None = None,
    deadline_ms: float | None = None,
    breaker_threshold: int | None = None,
    breaker_reset: float = 5.0,
    listen_socket=None,
) -> ServiceHTTPServer:
    """Build a :class:`ServiceHTTPServer` (not yet serving).

    Callers run ``server.serve_forever()`` (the CLI) or
    ``server.serve_in_background()`` (tests/benchmarks); ``port=0`` binds an
    ephemeral port, available afterwards via ``server.url``.  ``ledger``
    makes the service durable (see :class:`MeasurementService`);
    ``deadline_ms`` applies a default end-to-end deadline to measurements
    arriving without an ``X-Repro-Deadline-Ms`` header, and
    ``breaker_threshold``/``breaker_reset`` tune the durable-ledger circuit
    breaker.
    """
    if service is None:
        service = MeasurementService(
            workers=workers,
            max_pending=max_pending,
            default_executor=executor,
            ledger_path=ledger,
            snapshot_every=snapshot_every,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
            max_total_pending=max_total_pending,
            deadline_ms=deadline_ms,
            breaker_threshold=breaker_threshold,
            breaker_reset=breaker_reset,
        )
    return ServiceHTTPServer(
        (host, port), service, verbose=verbose, listen_socket=listen_socket
    )


class ServiceClient:
    """Python client for the measurement service's HTTP/JSON API.

    Raises the library's own exceptions on errors: a 503 becomes
    :class:`ServiceOverloadedError` (retry with backoff), a 403 becomes
    :class:`BudgetExceededError` with the requested/remaining amounts, other
    service failures raise :class:`ServiceError`.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                error = json.loads(exc.read().decode("utf-8"))
            except Exception:  # noqa: BLE001 - malformed error body
                error = {"error": str(exc), "type": "ServiceError"}
            raise self._exception_for(exc.code, error) from exc

    @staticmethod
    def _exception_for(status: int, error: dict[str, Any]) -> ReproError:
        message = error.get("error", f"HTTP {status}")
        code = error.get("code", "")
        kind = error.get("type", "")
        # The machine-readable ``code`` is the stable contract; the legacy
        # ``type`` name and bare status are fallbacks for older servers.
        if code == "rate_limited" or status == 429 or kind == "RateLimitedError":
            return RateLimitedError(
                message, retry_after=error.get("retry_after", 0.0)
            )
        if code == "circuit_open" or kind == "CircuitOpenError":
            return CircuitOpenError(
                message, retry_after=error.get("retry_after", 0.0)
            )
        if code == "deadline_exceeded" or kind == "DeadlineExceededError":
            return DeadlineExceededError(message)
        if code == "session_exists" or kind == "SessionExistsError":
            return SessionExistsError(message)
        if (
            code == "overloaded"
            or status == 503
            or kind == "ServiceOverloadedError"
        ):
            return ServiceOverloadedError(message)
        if code == "budget_exceeded" or kind == "BudgetExceededError":
            return BudgetExceededError(
                error.get("requested", 0.0),
                error.get("remaining", 0.0),
                source=error.get("source"),
            )
        if code == "invalid_epsilon" or kind == "InvalidEpsilonError":
            return InvalidEpsilonError(message)
        if code == "invalid_plan" or kind == "PlanError":
            return PlanError(message)
        return ServiceError(message)

    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """Liveness probe."""
        return self._request("GET", "/healthz")

    def create_session(
        self,
        name: str,
        records: list[Any],
        total_epsilon: float = float("inf"),
        seed: int | None = None,
        executor: str | None = None,
        source: str = "edges",
    ) -> dict[str, Any]:
        """Host a protected dataset on the server (records as JSON arrays)."""
        payload: dict[str, Any] = {
            "name": name,
            "records": [
                list(record) if isinstance(record, tuple) else record
                for record in records
            ],
            "total_epsilon": total_epsilon,
            "source": source,
        }
        if seed is not None:
            payload["seed"] = seed
        if executor is not None:
            payload["executor"] = executor
        return self._request("POST", "/v1/sessions", payload)

    def sessions(self) -> list[dict[str, Any]]:
        """Summaries of every hosted session."""
        return self._request("GET", "/v1/sessions")["sessions"]

    def session(self, name: str) -> dict[str, Any]:
        """One hosted session's summary."""
        return self._request("GET", f"/v1/sessions/{name}")

    def close_session(self, name: str) -> dict[str, Any]:
        """Drop a hosted session."""
        return self._request("DELETE", f"/v1/sessions/{name}")

    def budget(self, name: str) -> dict[str, dict[str, float]]:
        """The session's ledger report (total/spent/remaining per source)."""
        return self._request("GET", f"/v1/sessions/{name}/budget")["budget"]

    def audit(self, name: str | None = None) -> list[dict[str, Any]]:
        """Audit events — the full log, or one session's slice."""
        path = "/v1/audit" if name is None else f"/v1/sessions/{name}/audit"
        return self._request("GET", path)["events"]

    def measure(
        self,
        session: str,
        query: str,
        epsilon: float,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Take one measurement; returns the released values payload.

        ``deadline_ms`` sends an end-to-end deadline with the request (the
        ``X-Repro-Deadline-Ms`` header); an expired deadline is refused at
        admission with a 504 before any budget is charged.
        """
        headers = None
        if deadline_ms is not None:
            headers = {DEADLINE_HEADER: f"{deadline_ms:g}"}
        return self._request(
            "POST",
            f"/v1/sessions/{session}/measure",
            {"query": query, "epsilon": epsilon},
            headers=headers,
        )

    def stats(self) -> dict[str, Any]:
        """Scheduler and cache counters."""
        return self._request("GET", "/v1/stats")
