"""Multi-process serving: ``repro serve --workers N``.

One listening socket, ``N`` forked worker processes, one shared durable
ledger file.  The parent binds the socket and forks; each worker builds its
own :class:`~repro.service.core.MeasurementService` (its own sqlite
connection — connections must never cross a fork) and accepts connections
off the shared socket, so the kernel load-balances tenants across workers.

What makes this sound without any cross-worker RPC is that every piece of
*privacy-relevant* state lives in the durable store, not in worker memory:

* budget charges run through the store's serialized write transactions, so
  two workers charging one tenant concurrently can never jointly overspend —
  the affordability check and the commit record are atomic file-wide;
* sessions created on one worker are persisted and re-materialised lazily by
  any sibling that is asked about them, with recovered spend — each seeded
  re-materialisation drawing from its own incarnation-derived noise stream
  (never the creator's stream re-wound to the start), so siblings can never
  re-release noise draws another worker already published;
* a worker's in-memory replica is re-validated against the persisted
  definition's generation stamp on every lookup, so a close or
  close-and-re-create on one worker evicts the stale replica (and its
  cached answers) everywhere instead of being served from old memory;
* released answers are persisted, so a retry landing on a different worker
  replays the identical answer at zero budget.

Worker memory only holds replicas (datasets, plan objects, the answer
cache), which is why a worker can be killed -9 at any moment without losing
a committed ε.  The one best-effort edge: two workers measuring the *same*
(query, ε) truly concurrently each charge soundly but may release different
noise draws; the store's first-release-wins rule makes all later replays
converge on one answer.

Graceful shutdown: SIGTERM/SIGINT to the parent is forwarded to every
worker; each worker stops accepting, drains its scheduler, takes a final
ledger snapshot and closes its connection before exiting.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
from typing import Any

from ..exceptions import PersistenceError

__all__ = ["run_workers"]


class _ShutdownRequested(Exception):
    """Raised by the worker's signal handler to unwind ``serve_forever``."""


def _worker_main(listen_socket: socket.socket, service_kwargs: dict[str, Any],
                 verbose: bool) -> None:
    """Body of one forked worker; never returns (``os._exit``)."""
    from .core import MeasurementService
    from .http import ServiceHTTPServer

    exit_code = 0
    try:
        service = MeasurementService(**service_kwargs)
        server = ServiceHTTPServer(
            listen_socket.getsockname(),
            service,
            verbose=verbose,
            listen_socket=listen_socket,
        )

        def _handle(signum: int, frame: Any) -> None:
            raise _ShutdownRequested()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)
        try:
            server.serve_forever()
        except (_ShutdownRequested, KeyboardInterrupt):
            pass
        finally:
            # Orderly: stop accepting, drain queued batches, flush the WAL
            # (final snapshot) and close the sqlite connection.
            server.stop()
    except BaseException:  # pragma: no cover - crash path
        import traceback

        traceback.print_exc()
        exit_code = 1
    finally:
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(exit_code)


def run_workers(
    host: str,
    port: int,
    workers: int,
    service_kwargs: dict[str, Any],
    verbose: bool = False,
    backlog: int = 128,
) -> int:
    """Fork ``workers`` HTTP workers over one socket; block until they exit.

    Requires a durable ledger (``service_kwargs['ledger_path']``): without a
    shared store, each worker would keep its own budget ledger in memory and
    concurrent workers could jointly overspend a tenant's ε — the exact
    soundness hole this package exists to close.  Returns a process exit
    code (0 on clean shutdown of every worker).
    """
    if workers < 2:
        raise ValueError("run_workers needs at least 2 workers; use serve() for 1")
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX platforms
        raise PersistenceError("multi-process serving requires os.fork (POSIX)")
    if not service_kwargs.get("ledger_path"):
        raise PersistenceError(
            "--workers > 1 requires --ledger: multiple processes must share "
            "one durable budget ledger, or concurrent workers could jointly "
            "overspend a tenant's privacy budget"
        )

    listen_socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listen_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listen_socket.bind((host, port))
    listen_socket.listen(backlog)
    bound_host, bound_port = listen_socket.getsockname()[:2]

    pids: list[int] = []
    for _ in range(workers):
        pid = os.fork()
        if pid == 0:
            _worker_main(listen_socket, service_kwargs, verbose)  # never returns
        pids.append(pid)
    listen_socket.close()

    shutting_down = False

    def _forward(signum: int, frame: Any) -> None:
        nonlocal shutting_down
        shutting_down = True
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, _forward)
    signal.signal(signal.SIGINT, _forward)
    print(
        f"repro serve — {workers} workers on http://{bound_host}:{bound_port} "
        f"(pids {pids}, ledger {service_kwargs['ledger_path']})",
        flush=True,
    )

    exit_code = 0
    remaining = set(pids)
    while remaining:
        try:
            pid, status = os.wait()
        except InterruptedError:
            continue
        except ChildProcessError:  # pragma: no cover - defensive
            break
        if pid not in remaining:
            continue
        remaining.discard(pid)
        worker_code = os.waitstatus_to_exitcode(status)
        if worker_code != 0:
            exit_code = 1
        if not shutting_down and remaining:
            # A worker died unexpectedly: bring the fleet down rather than
            # serve degraded — budgets stay sound either way (they are in
            # the store), this is purely an availability decision.
            shutting_down = True
            exit_code = exit_code or 1
            for other in remaining:
                try:
                    os.kill(other, signal.SIGTERM)
                except ProcessLookupError:
                    pass
    return exit_code
