"""Multi-tenant session hosting: named privacy sessions plus an audit log.

The wPINQ paper frames the platform as an interactive *service*: analysts
submit measurement requests against protected datasets and the system answers
them while the ledger enforces sequential composition (Sections 2.1–2.3).
This module is the hosting side of that picture:

* a :class:`HostedSession` wraps one :class:`~repro.core.queryable
  .PrivacySession` (one tenant / protected dataset), the queries it exposes by
  name, and a per-session lock guarding the hosted-query table;
* a :class:`SessionRegistry` maps tenant-chosen names to hosted sessions and
  keeps an append-only audit log of every privacy-relevant event (session
  creation, measurements with their per-source charges, cache hits, refusals).

Hosting queries *by name* is deliberate: the trusted curator decides which
plans exist, analysts only pick one and an ε, so nothing executable ever
crosses the service boundary — and because each named query is built exactly
once, its plan object is a stable identity for the answer-reuse cache and for
shared-sub-plan fusion across concurrent clients.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..core.dataset import WeightedDataset
from ..core.queryable import PrivacySession, Queryable
from ..exceptions import ServiceError

__all__ = [
    "AuditEvent",
    "HostedSession",
    "SessionRegistry",
    "default_query_builders",
]


def default_query_builders() -> dict[str, Callable[[Queryable], Queryable]]:
    """The named graph analyses every hosted edge dataset serves by default.

    Matches the queries ``repro explain`` knows about; each builder takes the
    protected edges queryable and returns the measurement target.
    """
    from .. import analyses

    return {
        "degree-ccdf": analyses.degree_ccdf_query,
        "degree-sequence": analyses.degree_sequence_query,
        "node-count": analyses.node_count_query,
        "jdd": analyses.joint_degree_query,
        "tbd": analyses.triangles_by_degree_query,
        "tbi": analyses.triangles_by_intersect_query,
        "wedges": analyses.wedges_query,
        "sbd": analyses.squares_by_degree_query,
        "stars": analyses.star_degree_query,
    }


@dataclass(frozen=True)
class AuditEvent:
    """One privacy-relevant event recorded by the registry."""

    sequence: int
    timestamp: float
    session: str
    action: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly rendering (used by the HTTP audit endpoint)."""
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "session": self.session,
            "action": self.action,
            "detail": dict(self.detail),
        }


class HostedSession:
    """One tenant's privacy session plus its named, measurable queries.

    The hosted-query table is guarded by a per-session lock; the measurement
    pipeline itself is serialised by the session's own
    :attr:`~repro.core.queryable.PrivacySession.measure_lock`.
    """

    def __init__(self, name: str, session: PrivacySession, source: str) -> None:
        self.name = name
        self.session = session
        self.source = source
        self.created_at = time.time()
        self._lock = threading.RLock()
        self._queries: dict[str, Queryable] = {}

    # ------------------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        """The lock guarding this session's hosted-query table."""
        return self._lock

    def register_query(self, name: str, queryable: Queryable) -> None:
        """Expose ``queryable`` to clients under ``name``."""
        if queryable.session is not self.session:
            raise ServiceError(
                f"query {name!r} belongs to a different privacy session"
            )
        with self._lock:
            if name in self._queries:
                raise ServiceError(
                    f"session {self.name!r} already hosts a query named {name!r}"
                )
            self._queries[name] = queryable

    def queryable(self, name: str) -> Queryable:
        """The hosted query registered under ``name``."""
        with self._lock:
            try:
                return self._queries[name]
            except KeyError as exc:
                raise ServiceError(
                    f"session {self.name!r} hosts no query named {name!r}; "
                    f"available: {sorted(self._queries)}"
                ) from exc

    def query_names(self) -> list[str]:
        """The names of every hosted query."""
        with self._lock:
            return sorted(self._queries)

    def budget_report(self) -> dict[str, dict[str, float]]:
        """Per-source budget summary for this session."""
        return self.session.budget_report()

    def describe(self) -> dict[str, Any]:
        """JSON-friendly summary used by the HTTP session listing."""
        return {
            "name": self.name,
            "source": self.source,
            "created_at": self.created_at,
            "queries": self.query_names(),
            "budget": self.budget_report(),
        }


class SessionRegistry:
    """Thread-safe mapping of tenant names to hosted sessions, with auditing.

    All mutating operations (create/close) and the audit log are guarded by
    one registry lock; per-session state is guarded by the session's own
    locks, so measurements against different sessions never contend here.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._sessions: dict[str, HostedSession] = {}
        # Names being built by an in-flight create(): reserved up front so a
        # racing duplicate create fails fast instead of building a whole
        # session (dataset protection + nine query plans) only to discard it.
        self._reserved: set[str] = set()
        self._audit: list[AuditEvent] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        records: WeightedDataset | Mapping[Any, float] | Iterable[Any],
        total_epsilon: float = float("inf"),
        seed: int | None = None,
        executor: str = "eager",
        source: str = "edges",
        queries: Mapping[str, Callable[[Queryable], Queryable]] | None = None,
    ) -> HostedSession:
        """Host a new session: protect ``records`` and build its named queries.

        ``queries`` maps query names to builders taking the protected
        queryable; it defaults to :func:`default_query_builders` (the graph
        analyses of the paper).  Raises :class:`ServiceError` if ``name`` is
        taken — checked up front (the name is reserved while the session is
        built), so a racing duplicate create fails before paying for dataset
        protection and query construction.
        """
        with self._lock:
            if name in self._sessions or name in self._reserved:
                raise ServiceError(f"a session named {name!r} already exists")
            self._reserved.add(name)
        try:
            session = PrivacySession(seed=seed, executor=executor)
            protected = session.protect(source, records, total_epsilon=total_epsilon)
            hosted = HostedSession(name, session, source)
            builders = (
                dict(queries) if queries is not None else default_query_builders()
            )
            for query_name, builder in builders.items():
                hosted.register_query(query_name, builder(protected))
        except BaseException:
            with self._lock:
                self._reserved.discard(name)
            raise
        with self._lock:
            self._reserved.discard(name)
            self._sessions[name] = hosted
        self.record(
            name,
            "create-session",
            source=source,
            total_epsilon=total_epsilon,
            queries=sorted(builders),
            executor=executor,
        )
        return hosted

    def get(self, name: str) -> HostedSession:
        """The hosted session registered under ``name``."""
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError as exc:
                raise ServiceError(f"no session named {name!r}") from exc

    def names(self) -> list[str]:
        """Every hosted session name."""
        with self._lock:
            return sorted(self._sessions)

    def close(self, name: str) -> None:
        """Drop a hosted session (its budgets and datasets are released)."""
        with self._lock:
            if name not in self._sessions:
                raise ServiceError(f"no session named {name!r}")
            del self._sessions[name]
        self.record(name, "close-session")

    def describe(self) -> list[dict[str, Any]]:
        """JSON-friendly summaries of every hosted session."""
        with self._lock:
            sessions = list(self._sessions.values())
        return [hosted.describe() for hosted in sessions]

    # ------------------------------------------------------------------
    def record(self, session: str, action: str, **detail: Any) -> AuditEvent:
        """Append one event to the audit log (thread-safe, monotonic order)."""
        with self._lock:
            self._sequence += 1
            event = AuditEvent(
                sequence=self._sequence,
                timestamp=time.time(),
                session=session,
                action=action,
                detail=detail,
            )
            self._audit.append(event)
            return event

    def audit(self, session: str | None = None) -> list[AuditEvent]:
        """The audit log, optionally filtered to one session's events."""
        with self._lock:
            events = list(self._audit)
        if session is None:
            return events
        return [event for event in events if event.session == session]
