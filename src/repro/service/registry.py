"""Multi-tenant session hosting: named privacy sessions plus an audit log.

The wPINQ paper frames the platform as an interactive *service*: analysts
submit measurement requests against protected datasets and the system answers
them while the ledger enforces sequential composition (Sections 2.1–2.3).
This module is the hosting side of that picture:

* a :class:`HostedSession` wraps one :class:`~repro.core.queryable
  .PrivacySession` (one tenant / protected dataset), the queries it exposes by
  name, and a per-session lock guarding the hosted-query table;
* a :class:`SessionRegistry` maps tenant-chosen names to hosted sessions and
  keeps an append-only audit log of every privacy-relevant event (session
  creation, measurements with their per-source charges, cache hits, refusals).

Hosting queries *by name* is deliberate: the trusted curator decides which
plans exist, analysts only pick one and an ε, so nothing executable ever
crosses the service boundary — and because each named query is built exactly
once, its plan object is a stable identity for the answer-reuse cache and for
shared-sub-plan fusion across concurrent clients.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from ..core.dataset import WeightedDataset
from ..core.queryable import PrivacySession, Queryable
from ..exceptions import ServiceError, SessionExistsError
from ..sanitize import ordered_rlock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..persistence.wal import LedgerStore

__all__ = [
    "AuditEvent",
    "HostedSession",
    "SessionRegistry",
    "default_query_builders",
]


def default_query_builders() -> dict[str, Callable[[Queryable], Queryable]]:
    """The named graph analyses every hosted edge dataset serves by default.

    Matches the queries ``repro explain`` knows about; each builder takes the
    protected edges queryable and returns the measurement target.
    """
    from .. import analyses

    return {
        "degree-ccdf": analyses.degree_ccdf_query,
        "degree-sequence": analyses.degree_sequence_query,
        "node-count": analyses.node_count_query,
        "jdd": analyses.joint_degree_query,
        "tbd": analyses.triangles_by_degree_query,
        "tbi": analyses.triangles_by_intersect_query,
        "wedges": analyses.wedges_query,
        "sbd": analyses.squares_by_degree_query,
        "stars": analyses.star_degree_query,
    }


@dataclass(frozen=True)
class AuditEvent:
    """One privacy-relevant event recorded by the registry.

    ``sequence`` is monotonic and — when the registry is backed by a durable
    store — allocated by the store itself, so events are totally ordered
    across process restarts and across concurrent worker processes sharing
    one ledger file; ``worker`` (the recording process id) disambiguates
    which worker emitted each event when logs are read back merged.
    """

    sequence: int
    timestamp: float
    session: str
    action: str
    detail: dict[str, Any] = field(default_factory=dict)
    worker: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly rendering (used by the HTTP audit endpoint)."""
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "session": self.session,
            "action": self.action,
            "detail": dict(self.detail),
            "worker": self.worker,
        }


class HostedSession:
    """One tenant's privacy session plus its named, measurable queries.

    The hosted-query table is guarded by a per-session lock; the measurement
    pipeline itself is serialised by the session's own
    :attr:`~repro.core.queryable.PrivacySession.measure_lock`.
    """

    def __init__(self, name: str, session: PrivacySession, source: str) -> None:
        self.name = name
        self.session = session
        self.source = source
        self.created_at = time.time()
        # Identity of the *persisted* definition this hosted session was
        # built from (set by the registry).  None for in-memory registries
        # and for unserialisable (ephemeral) sessions; when set, the
        # registry re-validates it against the store on every lookup so a
        # close/re-create by a sibling worker evicts this replica instead of
        # letting it serve a stale dataset.
        self.generation: str | None = None
        self._lock = ordered_rlock("service.session", 14)  # lock-order: 14
        self._queries: dict[str, Queryable] = {}

    # ------------------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        """The lock guarding this session's hosted-query table."""
        return self._lock

    def register_query(self, name: str, queryable: Queryable) -> None:
        """Expose ``queryable`` to clients under ``name``."""
        if queryable.session is not self.session:
            raise ServiceError(
                f"query {name!r} belongs to a different privacy session"
            )
        with self._lock:
            if name in self._queries:
                raise ServiceError(
                    f"session {self.name!r} already hosts a query named {name!r}"
                )
            self._queries[name] = queryable

    def queryable(self, name: str) -> Queryable:
        """The hosted query registered under ``name``."""
        with self._lock:
            try:
                return self._queries[name]
            except KeyError as exc:
                raise ServiceError(
                    f"session {self.name!r} hosts no query named {name!r}; "
                    f"available: {sorted(self._queries)}"
                ) from exc

    def query_names(self) -> list[str]:
        """The names of every hosted query."""
        with self._lock:
            return sorted(self._queries)

    def budget_report(self) -> dict[str, dict[str, float]]:
        """Per-source budget summary for this session."""
        return self.session.budget_report()

    def describe(self) -> dict[str, Any]:
        """JSON-friendly summary used by the HTTP session listing."""
        return {
            "name": self.name,
            "source": self.source,
            "created_at": self.created_at,
            "queries": self.query_names(),
            "budget": self.budget_report(),
        }


class SessionRegistry:
    """Thread-safe mapping of tenant names to hosted sessions, with auditing.

    All mutating operations (create/close) and the audit log are guarded by
    one registry lock; per-session state is guarded by the session's own
    locks, so measurements against different sessions never contend here.

    With a durable ``store`` (:class:`~repro.persistence.wal.LedgerStore`)
    the registry becomes restart- and multi-worker-safe: sessions charge
    through a :class:`~repro.persistence.ledger.DurableLedger` scoped to
    their name, session definitions and the audit log are persisted, and a
    session created by a previous incarnation (or a sibling worker process)
    is re-materialised on demand with its committed ε spend intact.
    ``on_restore`` is invoked for each re-materialised session — the service
    uses it to warm the answer cache from the store's released answers —
    and ``on_evict`` with the session name whenever a stale in-memory
    replica is dropped (its persisted definition was closed or replaced by
    a sibling worker); the service uses it to evict the scope's cached
    answers.
    """

    def __init__(
        self,
        store: "LedgerStore | None" = None,
        on_restore: Callable[[HostedSession], None] | None = None,
        on_evict: Callable[[str], None] | None = None,
    ) -> None:
        self._lock = ordered_rlock("service.registry", 10, io_ok=True)  # lock-order: 10 io-ok
        self._store = store
        self._on_restore = on_restore
        self._on_evict = on_evict
        self._sessions: dict[str, HostedSession] = {}
        # Names being built by an in-flight create(): reserved up front so a
        # racing duplicate create fails fast instead of building a whole
        # session (dataset protection + nine query plans) only to discard it.
        self._reserved: set[str] = set()
        self._audit: list[AuditEvent] = []
        self._sequence = 0

    @property
    def store(self) -> "LedgerStore | None":
        """The durable store backing this registry (None when in-memory)."""
        return self._store

    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        records: WeightedDataset | Mapping[Any, float] | Iterable[Any],
        total_epsilon: float = float("inf"),
        seed: int | None = None,
        executor: str = "eager",
        source: str = "edges",
        queries: Mapping[str, Callable[[Queryable], Queryable]] | None = None,
    ) -> HostedSession:
        """Host a new session: protect ``records`` and build its named queries.

        ``queries`` maps query names to builders taking the protected
        queryable; it defaults to :func:`default_query_builders` (the graph
        analyses of the paper).  Raises :class:`ServiceError` if ``name`` is
        taken — checked up front (the name is reserved while the session is
        built), so a racing duplicate create fails before paying for dataset
        protection and query construction.

        With a durable store the session charges through a
        :class:`~repro.persistence.ledger.DurableLedger` scoped to ``name``,
        and its definition is persisted so restarts and sibling workers can
        re-materialise it — except when custom ``queries`` builders, a
        callable ``executor``, or a Generator seed make the definition
        unserialisable, in which case budgets and audit are still durable but
        the session itself dies with the process.
        """
        with self._lock:
            hosted = self._sessions.get(name)
            if (
                hosted is not None
                and self._store is not None
                and hosted.generation is not None
            ):
                stamped = self._store.get_session(name)
                if stamped is None or stamped.get("generation") != hosted.generation:
                    # Stale replica: a sibling worker closed (or replaced)
                    # this session after we materialised it.  Drop it so the
                    # durable store alone decides whether the name is taken.
                    self._sessions.pop(name, None)
                    if self._on_evict is not None:
                        self._on_evict(name)
            if name in self._sessions or name in self._reserved:
                raise SessionExistsError(f"a session named {name!r} already exists")
            if self._store is not None and self._store.get_session(name) is not None:
                raise SessionExistsError(
                    f"a session named {name!r} already exists (persisted)"
                )
            self._reserved.add(name)
        try:
            session = PrivacySession(
                seed=seed, executor=executor, ledger=self._durable_ledger(name)
            )
            protected = session.protect(source, records, total_epsilon=total_epsilon)
            hosted = HostedSession(name, session, source)
            builders = (
                dict(queries) if queries is not None else default_query_builders()
            )
            for query_name, builder in builders.items():
                hosted.register_query(query_name, builder(protected))
            self._wire_degrade(name, session)
            self._persist(hosted, total_epsilon, seed, executor, queries)
        except BaseException:
            with self._lock:
                self._reserved.discard(name)
            raise
        with self._lock:
            self._reserved.discard(name)
            self._sessions[name] = hosted
        self.record(
            name,
            "create-session",
            source=source,
            total_epsilon=total_epsilon,
            queries=sorted(builders),
            executor=executor if isinstance(executor, str) else "<callable>",
        )
        return hosted

    def get(self, name: str) -> HostedSession:
        """The hosted session registered under ``name``.

        With a durable store the in-memory table is only a *replica*: a miss
        falls back to the persisted session definitions (a session created
        before a restart — or by a sibling worker process — is
        re-materialised on first use, with its committed ε spend recovered
        by the durable ledger), and a hit is re-validated against the
        persisted definition's generation stamp, so a session a sibling
        worker closed (or closed and re-created over different records) is
        evicted and its cached answers dropped instead of being served
        stale.
        """
        with self._lock:
            hosted = self._sessions.get(name)
            if self._store is None or (
                hosted is not None and hosted.generation is None
            ):
                # In-memory registry, or an ephemeral (never-persisted)
                # session: the local table is authoritative.
                if hosted is not None:
                    return hosted
                raise ServiceError(f"no session named {name!r}")
            payload = self._store.get_session(name)
            if hosted is not None:
                if (
                    payload is not None
                    and payload.get("generation") == hosted.generation
                ):
                    return hosted
                # Stale replica: a sibling worker closed this session, or
                # re-created it under a new definition.  Drop the replica
                # and its cached answers before answering.
                self._sessions.pop(name, None)
                if self._on_evict is not None:
                    self._on_evict(name)
            if payload is not None:
                return self._materialize_locked(name, payload)
            raise ServiceError(f"no session named {name!r}")

    def names(self) -> list[str]:
        """Every hosted session name (in memory or persisted)."""
        with self._lock:
            names = set(self._sessions)
        if self._store is not None:
            names.update(self._store.session_names())
        return sorted(names)

    def load_persisted(self) -> list[str]:
        """Materialise every persisted session (warm boot after a restart)."""
        if self._store is None:
            return []
        restored = []
        for name in self._store.session_names():
            with self._lock:
                if name not in self._sessions:
                    payload = self._store.get_session(name)
                    if payload is not None:
                        self._materialize_locked(name, payload)
                        restored.append(name)
        return restored

    def close(self, name: str) -> None:
        """Drop a hosted session (its in-memory datasets are released).

        With a durable store, the persisted definition and released answers
        are deleted, but the scope's *budget records are kept*: spent ε is a
        property of the underlying protected data, so re-creating a session
        under the same name resumes its committed spend instead of silently
        resetting the privacy guarantee.
        """
        with self._lock:
            known = name in self._sessions
            if self._store is not None and not known:
                known = self._store.get_session(name) is not None
            if not known:
                raise ServiceError(f"no session named {name!r}")
            self._sessions.pop(name, None)
        if self._store is not None:
            self._store.drop_session(name)
            self._store.drop_releases(name)
        self.record(name, "close-session")

    def describe(self) -> list[dict[str, Any]]:
        """JSON-friendly summaries of every hosted session."""
        summaries = []
        for name in self.names():
            try:
                summaries.append(self.get(name).describe())
            except ServiceError:
                # Closed by a sibling worker between names() and get().
                continue
        return summaries

    # ------------------------------------------------------------------
    # Durable-session plumbing
    # ------------------------------------------------------------------
    def _durable_ledger(self, name: str):
        if self._store is None:
            return None
        from ..persistence.ledger import DurableLedger

        return DurableLedger(self._store, name)

    def _persist(
        self,
        hosted: HostedSession,
        total_epsilon: float,
        seed: Any,
        executor: Any,
        queries: Any,
    ) -> None:
        """Persist a session definition when it is serialisable."""
        if self._store is None or queries is not None:
            return
        if not isinstance(executor, str) or not (seed is None or isinstance(seed, int)):
            return
        from ..persistence.wal import encode_record

        dataset = hosted.session.dataset(hosted.source)
        # A fresh generation stamp per persisted definition: lookups compare
        # it against the store so sibling workers notice a close/re-create.
        generation = uuid.uuid4().hex
        payload = {
            "records": [
                [encode_record(record), weight] for record, weight in dataset.items()
            ],
            "total_epsilon": total_epsilon,
            "seed": seed,
            "executor": executor,
            "source": hosted.source,
            "generation": generation,
        }
        try:
            self._store.put_session(hosted.name, payload)
        except sqlite3.IntegrityError as exc:
            raise SessionExistsError(
                f"a session named {hosted.name!r} already exists (created "
                f"concurrently by another worker)"
            ) from exc
        hosted.generation = generation

    def _wire_degrade(self, name: str, session: PrivacySession) -> None:
        """Route the executor's degraded-mode notifications into the audit log.

        Duck-typed on an ``on_degrade`` attribute so only backends that can
        degrade (today the sharded executor falling back to its inline
        vectorized path) are wired, without importing the shard package.
        """
        executor = getattr(session, "executor", None)
        if executor is None or not hasattr(executor, "on_degrade"):
            return

        def record_degrade(reason: str, _name: str = name) -> None:
            self.record(_name, "degraded", reason=reason)

        executor.on_degrade = record_degrade

    def _materialize_locked(self, name: str, payload: dict[str, Any]) -> HostedSession:
        """Rebuild a persisted session (registry lock held).

        The durable ledger recovers the scope's committed spend during
        ``protect``; the restored session serves the default named queries
        (custom builders are never persisted).

        The persisted seed is never resumed raw: that would reset the
        Laplace stream to the state the creating incarnation already drew
        from, and two releases sharing a noise draw can be differenced to
        cancel the noise exactly.  Instead a fresh stream is derived from
        the seed plus a durably monotonic incarnation number — still
        deterministic per incarnation, but distinct from the creator's
        stream and from every other incarnation's (including sibling forked
        workers rebuilding the same session).
        """
        from ..persistence.wal import decode_record

        seed = payload.get("seed")
        if seed is not None:
            import numpy as np

            incarnation = self._store.next_incarnation(name)
            seed = np.random.default_rng(
                np.random.SeedSequence([int(seed), incarnation])
            )
        session = PrivacySession(
            seed=seed,
            executor=payload.get("executor", "eager"),
            ledger=self._durable_ledger(name),
        )
        records = WeightedDataset(
            {
                decode_record(record): float(weight)
                for record, weight in payload["records"]
            }
        )
        source = payload.get("source", "edges")
        protected = session.protect(
            source, records, total_epsilon=float(payload.get("total_epsilon", float("inf")))
        )
        hosted = HostedSession(name, session, source)
        hosted.generation = payload.get("generation")
        for query_name, builder in default_query_builders().items():
            hosted.register_query(query_name, builder(protected))
        self._wire_degrade(name, session)
        self._sessions[name] = hosted
        self.record(name, "restore-session", source=source)
        if self._on_restore is not None:
            self._on_restore(hosted)
        return hosted

    # ------------------------------------------------------------------
    def record(self, session: str, action: str, **detail: Any) -> AuditEvent:
        """Append one event to the audit log (thread-safe, monotonic order).

        With a durable store the sequence number and timestamp are allocated
        by the store's append, so events are totally ordered across restarts
        and across worker processes; in-memory mode keeps a local counter.
        """
        worker = os.getpid()
        if self._store is not None:
            sequence, timestamp = self._store.append_audit(
                session, action, detail, worker
            )
            return AuditEvent(
                sequence=sequence,
                timestamp=timestamp,
                session=session,
                action=action,
                detail=detail,
                worker=worker,
            )
        with self._lock:
            self._sequence += 1
            event = AuditEvent(
                sequence=self._sequence,
                timestamp=time.time(),
                session=session,
                action=action,
                detail=detail,
                worker=worker,
            )
            self._audit.append(event)
            return event

    def audit(self, session: str | None = None) -> list[AuditEvent]:
        """The audit log, optionally filtered to one session's events.

        Store-backed registries read the merged durable log, so events from
        previous incarnations and sibling workers are included, in global
        sequence order.
        """
        if self._store is not None:
            return [
                AuditEvent(
                    sequence=row["seq"],
                    timestamp=row["timestamp"],
                    session=row["session"],
                    action=row["action"],
                    detail=json.loads(row["detail"]),
                    worker=row["worker"],
                )
                for row in self._store.audit_rows(session)
            ]
        with self._lock:
            events = list(self._audit)
        if session is None:
            return events
        return [event for event in events if event.session == session]
