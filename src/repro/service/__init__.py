"""wPINQ as a service: concurrent, multi-tenant measurement serving.

The paper frames the platform as an interactive service — analysts submit
measurement requests against protected datasets and the system answers while
the ledger enforces sequential composition.  This package is that serving
layer, built on the thread-safe budget accounting of :mod:`repro.core.budget`:

:mod:`repro.service.registry`
    Named :class:`~repro.core.queryable.PrivacySession` hosting (one per
    tenant/dataset) with per-session locks, curated named queries, and an
    append-only audit log.
:mod:`repro.service.scheduler`
    Group-commit request scheduling: concurrent measurements against one
    session fuse into a single batched executor pass (N clients ≈ one plan
    walk), with bounded queues for backpressure and per-request isolation of
    budget refusals.
:mod:`repro.service.cache`
    Answer reuse keyed by (plan identity, ε): a repeated identical
    measurement replays the previously released noisy answer at zero
    additional budget, which also makes the service idempotent under retries.
:mod:`repro.service.core`
    The :class:`MeasurementService` facade tying the three together.
:mod:`repro.service.http`
    A stdlib HTTP/JSON transport (``repro serve``) and the matching
    :class:`ServiceClient`.
:mod:`repro.service.workers`
    Fork-based multi-process serving (``repro serve --workers N``) sharing
    one durable ledger file (:mod:`repro.persistence`) across workers.

With a durable ledger (``repro serve --ledger FILE``) the service is
restart-safe: budgets, sessions, audit events, and released answers are
write-ahead logged and recovered exactly on the next boot — see README
"Durability & operations".
"""

from .cache import AnswerCache
from .core import MeasurementService
from .http import ServiceClient, ServiceHTTPServer, serve
from .registry import AuditEvent, HostedSession, SessionRegistry, default_query_builders
from .scheduler import BatchingScheduler, MeasurementAnswer
from .workers import run_workers

__all__ = [
    "AnswerCache",
    "AuditEvent",
    "BatchingScheduler",
    "HostedSession",
    "MeasurementAnswer",
    "MeasurementService",
    "ServiceClient",
    "ServiceHTTPServer",
    "SessionRegistry",
    "default_query_builders",
    "run_workers",
    "serve",
]
