"""The measurement service facade: registry + scheduler + answer cache.

:class:`MeasurementService` is the transport-independent heart of
``repro serve``: it hosts named tenant sessions, admits measurement requests
through the thread-safe budget ledger, fuses concurrent same-session requests
into batched executor passes, and replays previously released answers for
free.  The HTTP layer (:mod:`repro.service.http`) is a thin JSON shim over
this object; tests and embedded use drive it directly.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any, Callable, Iterable, Mapping

from ..core.dataset import WeightedDataset
from ..core.queryable import Queryable
from .cache import AnswerCache
from .registry import AuditEvent, HostedSession, SessionRegistry
from .scheduler import BatchingScheduler, MeasurementAnswer

__all__ = ["MeasurementService"]


class MeasurementService:
    """A concurrent, multi-tenant wPINQ measurement service.

    Parameters
    ----------
    workers:
        Worker threads draining fused batches (cross-session parallelism).
    max_pending:
        Backpressure bound: per-session pending-request limit beyond which
        submissions raise :class:`~repro.exceptions.ServiceOverloadedError`.
    default_executor:
        Execution backend given to sessions created without an explicit one.
    """

    def __init__(
        self,
        workers: int | None = None,
        max_pending: int = 128,
        default_executor: str = "eager",
    ) -> None:
        self.registry = SessionRegistry()
        self.cache = AnswerCache()
        self.scheduler = BatchingScheduler(
            self.registry, cache=self.cache, workers=workers, max_pending=max_pending
        )
        self._default_executor = default_executor

    # ------------------------------------------------------------------
    # Tenant/session management
    # ------------------------------------------------------------------
    def create_session(
        self,
        name: str,
        records: WeightedDataset | Mapping[Any, float] | Iterable[Any],
        total_epsilon: float = float("inf"),
        seed: int | None = None,
        executor: str | None = None,
        source: str = "edges",
        queries: Mapping[str, Callable[[Queryable], Queryable]] | None = None,
    ) -> HostedSession:
        """Host a new protected dataset under ``name`` (see the registry)."""
        return self.registry.create(
            name,
            records,
            total_epsilon=total_epsilon,
            seed=seed,
            executor=executor or self._default_executor,
            source=source,
            queries=queries,
        )

    def close_session(self, name: str) -> None:
        """Drop a hosted session and evict its cached released answers."""
        self.registry.close(name)
        self.cache.drop_scope(name)

    def sessions(self) -> list[dict[str, Any]]:
        """JSON-friendly summaries of every hosted session."""
        return self.registry.describe()

    def session(self, name: str) -> HostedSession:
        """The hosted session registered under ``name``."""
        return self.registry.get(name)

    def budget_report(self, name: str) -> dict[str, dict[str, float]]:
        """Per-source budget summary of one hosted session."""
        return self.registry.get(name).budget_report()

    def audit(self, session: str | None = None) -> list[AuditEvent]:
        """The audit log (optionally one session's slice)."""
        return self.registry.audit(session)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def submit(self, session: str, query: str, epsilon: float) -> Future:
        """Enqueue a measurement; resolves to a
        :class:`~repro.service.scheduler.MeasurementAnswer`."""
        return self.scheduler.submit(session, query, epsilon)

    def measure(
        self, session: str, query: str, epsilon: float, timeout: float | None = None
    ) -> MeasurementAnswer:
        """Blocking measurement against a hosted session."""
        return self.submit(session, query, epsilon).result(timeout=timeout)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Scheduler and cache counters plus the hosted session names."""
        stats: dict[str, Any] = self.scheduler.stats()
        stats["sessions"] = self.registry.names()
        return stats

    def shutdown(self, wait: bool = True) -> None:
        """Stop the scheduler's worker pool."""
        self.scheduler.shutdown(wait=wait)
