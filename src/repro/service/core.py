"""The measurement service facade: registry + scheduler + answer cache.

:class:`MeasurementService` is the transport-independent heart of
``repro serve``: it hosts named tenant sessions, admits measurement requests
through the thread-safe budget ledger, fuses concurrent same-session requests
into batched executor passes, and replays previously released answers for
free.  The HTTP layer (:mod:`repro.service.http`) is a thin JSON shim over
this object; tests and embedded use drive it directly.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.deadline import Deadline

from ..core.dataset import WeightedDataset
from ..core.queryable import Queryable
from .cache import AnswerCache
from .registry import AuditEvent, HostedSession, SessionRegistry
from .scheduler import BatchingScheduler, MeasurementAnswer

__all__ = ["MeasurementService"]


class MeasurementService:
    """A concurrent, multi-tenant wPINQ measurement service.

    Parameters
    ----------
    workers:
        Worker threads draining fused batches (cross-session parallelism).
    max_pending:
        Backpressure bound: per-session pending-request limit beyond which
        submissions raise :class:`~repro.exceptions.ServiceOverloadedError`.
    default_executor:
        Execution backend given to sessions created without an explicit one.
    ledger_path:
        Optional path to a durable ledger file (sqlite, created if missing).
        When given, the service becomes restart-safe: budgets charge through
        a write-ahead-logged :class:`~repro.persistence.ledger.DurableLedger`,
        sessions / audit events / released answers persist, everything
        recorded before a crash is recovered on the next open, and several
        worker *processes* may share the file (``repro serve --workers N``).
    snapshot_every:
        Ledger-log compaction cadence (commits between snapshots).
    rate_limit / rate_burst:
        Per-tenant token-bucket admission: sustained requests/second and
        burst capacity per session (None disables rate limiting).
    max_total_pending:
        Global load-shedding bound on pending measurements across all
        sessions (None disables shedding).
    deadline_ms:
        Default end-to-end deadline applied to measurements that arrive
        without one (None disables the default).  Deadlines are enforced
        pre-charge only — see :mod:`repro.resilience.deadline`.
    breaker_threshold / breaker_reset:
        Consecutive-failure threshold and open-window seconds for the
        durable-ledger circuit breaker (only meaningful with a ledger).
    """

    def __init__(
        self,
        workers: int | None = None,
        max_pending: int = 128,
        default_executor: str = "eager",
        ledger_path: str | None = None,
        snapshot_every: int = 64,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        max_total_pending: int | None = None,
        deadline_ms: float | None = None,
        breaker_threshold: int | None = None,
        breaker_reset: float = 5.0,
    ) -> None:
        self.store = None
        if ledger_path is not None:
            from ..persistence.wal import LedgerStore

            self.store = LedgerStore(ledger_path, snapshot_every=snapshot_every)
        rate_limiter = None
        if rate_limit is not None:
            from ..persistence.ratelimit import RateLimiter

            rate_limiter = RateLimiter(rate_limit, rate_burst)
        shedder = None
        if max_total_pending is not None:
            from ..persistence.ratelimit import LoadShedder

            shedder = LoadShedder(max_total_pending)
        self._rate_limiter = rate_limiter
        self.cache = AnswerCache()
        self.registry = SessionRegistry(
            store=self.store,
            on_restore=self._warm_session,
            # A stale in-memory replica (its persisted definition was closed
            # or replaced by a sibling worker) must take its cached answers
            # with it, or the old dataset's releases would replay against
            # the new same-name session.
            on_evict=self.cache.drop_scope,
        )
        self.scheduler = BatchingScheduler(
            self.registry,
            cache=self.cache,
            workers=workers,
            max_pending=max_pending,
            store=self.store,
            rate_limiter=rate_limiter,
            shedder=shedder,
            breaker_threshold=breaker_threshold,
            breaker_reset=breaker_reset,
        )
        self._default_executor = default_executor
        self.deadline_ms = deadline_ms
        if self.store is not None:
            # Warm boot: re-materialise every persisted session (each one's
            # durable ledger recovers its committed spend) and, through
            # _warm_session, refill the answer cache from persisted releases.
            self.registry.load_persisted()

    def _warm_session(self, hosted: HostedSession) -> None:
        """Refill the answer cache from the durable released-answer store."""
        if self.store is None:
            return
        from ..core.aggregation import NoisyCountResult

        hosted_queries = set(hosted.query_names())
        for query, epsilon, values in self.store.releases_for(hosted.name):
            if query not in hosted_queries:
                continue
            plan = hosted.queryable(query).plan
            result = NoisyCountResult.from_released(
                values, epsilon, plan=plan, query_name=query
            )
            self.cache.put(hosted.name, plan, epsilon, result)

    # ------------------------------------------------------------------
    # Tenant/session management
    # ------------------------------------------------------------------
    def create_session(
        self,
        name: str,
        records: WeightedDataset | Mapping[Any, float] | Iterable[Any],
        total_epsilon: float = float("inf"),
        seed: int | None = None,
        executor: str | None = None,
        source: str = "edges",
        queries: Mapping[str, Callable[[Queryable], Queryable]] | None = None,
    ) -> HostedSession:
        """Host a new protected dataset under ``name`` (see the registry)."""
        return self.registry.create(
            name,
            records,
            total_epsilon=total_epsilon,
            seed=seed,
            executor=executor or self._default_executor,
            source=source,
            queries=queries,
        )

    def close_session(self, name: str) -> None:
        """Drop a hosted session and evict its cached released answers.

        With a durable ledger, the scope's budget records survive the close:
        re-creating the same name resumes its committed ε spend.
        """
        self.registry.close(name)
        self.cache.drop_scope(name)
        if self._rate_limiter is not None:
            self._rate_limiter.forget(name)

    def sessions(self) -> list[dict[str, Any]]:
        """JSON-friendly summaries of every hosted session."""
        return self.registry.describe()

    def session(self, name: str) -> HostedSession:
        """The hosted session registered under ``name``."""
        return self.registry.get(name)

    def budget_report(self, name: str) -> dict[str, dict[str, float]]:
        """Per-source budget summary of one hosted session."""
        return self.registry.get(name).budget_report()

    def audit(self, session: str | None = None) -> list[AuditEvent]:
        """The audit log (optionally one session's slice)."""
        return self.registry.audit(session)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def submit(
        self,
        session: str,
        query: str,
        epsilon: float,
        deadline: "Deadline | None" = None,
    ) -> Future:
        """Enqueue a measurement; resolves to a
        :class:`~repro.service.scheduler.MeasurementAnswer`.

        ``deadline`` defaults to the service-wide ``deadline_ms`` (when
        configured); pass an explicit :class:`~repro.resilience.deadline
        .Deadline` to override it per request.
        """
        if deadline is None and self.deadline_ms is not None:
            from ..resilience.deadline import Deadline

            deadline = Deadline.after(self.deadline_ms / 1000.0)
        return self.scheduler.submit(session, query, epsilon, deadline=deadline)

    def measure(
        self,
        session: str,
        query: str,
        epsilon: float,
        timeout: float | None = None,
        deadline: "Deadline | None" = None,
    ) -> MeasurementAnswer:
        """Blocking measurement against a hosted session."""
        return self.submit(session, query, epsilon, deadline=deadline).result(
            timeout=timeout
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Scheduler and cache counters plus the hosted session names."""
        stats: dict[str, Any] = self.scheduler.stats()
        stats["sessions"] = self.registry.names()
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats

    def shutdown(self, wait: bool = True) -> None:
        """Drain the scheduler's worker pool, then flush and close the store.

        With ``wait=True`` (the default, and what ``repro serve`` uses on
        SIGINT/SIGTERM) every queued batch drains before the durable ledger
        takes its final snapshot and closes — an orderly shutdown leaves no
        unresolved intents in the write-ahead log.
        """
        self.scheduler.shutdown(wait=wait)
        if self.store is not None:
            self.store.close()
