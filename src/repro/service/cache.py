"""Answer reuse: repeating a released measurement is budget-free.

Differential privacy composes over *information released*, not over requests
served: once a noisy answer has been published, handing the identical answer
out again reveals nothing new, so it costs no additional budget.  The service
exploits this standard trick with a cache keyed by ``(session, plan identity,
ε)`` — the triple that fully determines a measurement — which both saves
budget under repeated questions and makes the service idempotent under client
retries (a timed-out client that resends its request gets the bit-identical
answer without a second charge).

Plan *identity* (``id``) is the right key because hosted queries are built
exactly once per session (see :mod:`repro.service.registry`) and live as long
as the session does, so every client naming the same query hits the same plan
object; scoping keys by session name means a closed session's entries can be
evicted (and a recreated same-name session can never collide with them).

Two boundedness properties keep the cache an optimisation rather than a
liability:

* entries are evicted least-recently-used beyond ``max_entries``, so a tenant
  sweeping many distinct ε values cannot grow server memory without bound —
  an evicted answer is simply re-measured (a *fresh* release at fresh budget
  cost, which is always sound; only the free replay is lost);
* :meth:`drop_scope` removes a closed session's entries outright.

Only answers actually *released* may be reused: entries are inserted by the
scheduler after the ledger accepted the batch charge, never speculatively.
"""

from __future__ import annotations

from collections import OrderedDict

from ..sanitize import ordered_lock
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.aggregation import NoisyCountResult
    from ..core.plan import Plan

__all__ = ["AnswerCache"]


class AnswerCache:
    """Thread-safe LRU map of ``(session, plan identity, ε)`` to released answers."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be a positive integer")
        self._lock = ordered_lock("service.cache", 18)  # lock-order: 18
        # Entries hold the plan alongside the answer, so a cached plan's id
        # stays pinned exactly as long as its entries live.
        self._answers: OrderedDict[
            tuple[str, int, float], tuple["Plan", "NoisyCountResult"]
        ] = OrderedDict()
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _key(self, scope: str, plan: "Plan", epsilon: float) -> tuple[str, int, float]:
        return (scope, id(plan), float(epsilon))

    def get(
        self, scope: str, plan: "Plan", epsilon: float
    ) -> "NoisyCountResult | None":
        """The previously released answer for this measurement, if any."""
        with self._lock:
            key = self._key(scope, plan, epsilon)
            entry = self._answers.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._answers.move_to_end(key)
            self._hits += 1
            return entry[1]

    def put(
        self, scope: str, plan: "Plan", epsilon: float, answer: "NoisyCountResult"
    ) -> None:
        """Record a *released* answer for reuse.

        First release wins: if a concurrent writer already cached an answer
        for this key, the existing entry is kept so every client observes one
        consistent released value.  The least-recently-used entry is evicted
        beyond ``max_entries``.
        """
        with self._lock:
            key = self._key(scope, plan, epsilon)
            if key in self._answers:
                return
            self._answers[key] = (plan, answer)
            while len(self._answers) > self._max_entries:
                self._answers.popitem(last=False)
                self._evictions += 1

    def drop_scope(self, scope: str) -> int:
        """Evict every entry of one session (called when it closes)."""
        with self._lock:
            stale = [key for key in self._answers if key[0] == scope]
            for key in stale:
                del self._answers[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._answers)

    def stats(self) -> dict[str, int]:
        """Hit/miss/size/eviction counters (stats endpoint and tests)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._answers),
                "evictions": self._evictions,
                "max_entries": self._max_entries,
            }

    def clear(self) -> None:
        """Drop every cached answer (testing hook)."""
        with self._lock:
            self._answers.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
